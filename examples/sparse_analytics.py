"""Sparse analytics on Delta: SpMV and triangle counting end-to-end.

The scenario the paper's introduction motivates: irregular, task-parallel
data analytics where per-task work is skewed (power-law structure) and
tasks share large read-only operands. This example runs the two sparse
workloads from the evaluation suite, shows where each mechanism pays, and
demonstrates the feature flags by turning multicast off.

Run:  python examples/sparse_analytics.py
"""

from repro import Delta, FeatureFlags, default_delta_config
from repro.eval import compare
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.triangle import TriangleWorkload


def report(comparison, title: str) -> None:
    delta, static = comparison.delta, comparison.static
    print(f"--- {title} ---")
    print(f"  delta cycles   {delta.cycles:>12,.0f}")
    print(f"  static cycles  {static.cycles:>12,.0f}")
    print(f"  speedup        {comparison.speedup:>12.2f}x")
    print(f"  DRAM traffic   {delta.dram_bytes / 1024:>10.1f} KiB (delta) "
          f"vs {static.dram_bytes / 1024:,.1f} KiB (static)")
    print(f"  multicast      {delta.counters.get('mcast.fetches'):.0f} "
          f"fetches, {delta.counters.get('mcast.hits'):.0f} resident hits")


def main() -> None:
    config = default_delta_config(lanes=8)

    # SpMV: skewed row blocks + every task reads the dense vector x.
    spmv = SpmvWorkload(num_rows=256, num_cols=512, max_nnz=96)
    report(compare(spmv, config), "SpMV (power-law rows, shared x)")

    # Triangle counting: degree-skewed work + shared adjacency lists.
    triangle = TriangleWorkload(num_vertices=256)
    report(compare(triangle, config), "Triangle counting (shared adjacency)")

    # What read-sharing recovery is worth: rerun SpMV with multicast off.
    no_mcast = config.with_features(
        FeatureFlags(work_aware_lb=True, pipelining=True, multicast=False))
    result = Delta(no_mcast).run(spmv.build_program())
    spmv.check(result.state)
    print("--- SpMV with multicast disabled ---")
    print(f"  delta cycles   {result.cycles:>12,.0f}")
    print(f"  DRAM traffic   {result.dram_bytes / 1024:>10.1f} KiB "
          f"(duplicate fetches of x are back)")


if __name__ == "__main__":
    main()
