"""A tour of the Delta command ISA.

Shows the hardware interface underneath the programming model: a task
instance lowers to a short command sequence (configure, streams with
dependence annotations, task spawns), which encodes to 32-bit words and
round-trips through the assembler.

Run:  python examples/isa_tour.py
"""

from repro.isa import (
    assemble,
    decode_program,
    disassemble,
    encode_program,
    lower_task,
)
from repro.isa.lower import lower_spawn
from repro.workloads.spmv import SpmvWorkload


def main() -> None:
    # Take a real task from the SpMV workload: one row-block task with a
    # shared read of x and a private read of its CSR slice.
    program = SpmvWorkload(num_rows=32, num_cols=64).build_program()
    task = program.initial_tasks[0]

    commands = lower_task(task)
    print("Lowered command sequence for", task.name)
    print(disassemble(commands))
    print()

    # Spawn block: how a parent would enqueue this task with annotations.
    child = program.initial_tasks[1]
    print("Spawn block for", child.name)
    print(disassemble(lower_spawn(child)))
    print()

    # Binary round trip.
    blob = encode_program(commands)
    print(f"Encoded: {len(blob)} bytes "
          f"({len(commands)} words): {blob[:16].hex()}...")
    decoded = decode_program(blob)
    assert decoded == commands, "decode mismatch!"

    # Text round trip.
    text = disassemble(commands)
    assert assemble(text) == commands, "assembler mismatch!"
    print("Binary and text round trips OK.")


if __name__ == "__main__":
    main()
