"""Quickstart: define a task-parallel program, run it on Delta.

This walks the whole public API in ~80 lines:

1. describe a task type (compute DFG + functional kernel + cost model +
   dependence annotations),
2. build a program from task instances,
3. simulate it on the Delta accelerator and on the equivalent
   static-parallel baseline,
4. verify the functional result and compare the two machines.

Run:  python examples/quickstart.py
"""

from repro import (
    Delta,
    Program,
    ReadSpec,
    StaticParallel,
    TaskType,
    WorkHint,
    WriteSpec,
    default_baseline_config,
    default_delta_config,
)
from repro.arch.dfg import dot_product_dfg


def main() -> None:
    # The functional kernel: computes the real result (so the simulation
    # is checkable) while the cost-model callables below drive timing.
    def kernel(ctx, args):
        lo, hi = args["lo"], args["hi"]
        ctx.state["sums"][args["index"]] = sum(range(lo, hi))

    # Work per task is deliberately skewed: task i sums 100*(i+1) numbers.
    # The WorkHint annotation is what lets Delta's dispatcher balance it.
    range_sum = TaskType(
        name="range_sum",
        dfg=dot_product_dfg("range_sum"),
        kernel=kernel,
        trips=lambda args: args["hi"] - args["lo"],
        reads=lambda args: (ReadSpec(nbytes=(args["hi"] - args["lo"]) * 4),),
        writes=lambda args: (WriteSpec(nbytes=4),),
        work_hint=WorkHint(lambda args: args["hi"] - args["lo"]),
    )

    def build_program() -> Program:
        tasks = []
        cursor = 0
        for i in range(24):
            size = 100 * (i + 1)
            tasks.append(range_sum.instantiate(
                {"index": i, "lo": cursor, "hi": cursor + size}))
            cursor += size
        return Program("quickstart", {"sums": {}}, tasks)

    expected = {}
    cursor = 0
    for i in range(24):
        size = 100 * (i + 1)
        expected[i] = sum(range(cursor, cursor + size))
        cursor += size

    delta = Delta(default_delta_config(lanes=4))
    result = delta.run(build_program())
    assert result.state["sums"] == expected, "functional mismatch!"
    print("Delta:")
    print(f"  cycles            {result.cycles:>12,.0f}")
    print(f"  tasks executed    {result.tasks_executed:>12}")
    print(f"  lane busy (CV)    {result.imbalance_cv:>12.3f}")
    print(f"  DRAM traffic      {result.dram_bytes / 1024:>10.1f} KiB")

    baseline = StaticParallel(default_baseline_config(lanes=4))
    static = baseline.run(build_program())
    assert static.state["sums"] == expected, "functional mismatch!"
    print("Static-parallel baseline:")
    print(f"  cycles            {static.cycles:>12,.0f}")
    print(f"  lane busy (CV)    {static.imbalance_cv:>12.3f}")
    print(f"Delta speedup: {static.cycles / result.cycles:.2f}x "
          f"(work-aware balancing on skewed tasks)")


if __name__ == "__main__":
    main()
