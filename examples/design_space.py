"""Design-space exploration: lanes, bandwidth, and dispatch policies.

Uses the evaluation harness the way an architect would: sweep one machine
parameter at a time over a fixed workload and watch where the bottleneck
moves. Demonstrates `MachineConfig`'s functional-update helpers.

Run:  python examples/design_space.py
"""

import dataclasses

from repro import Delta, DramConfig, default_delta_config
from repro.eval import series_table
from repro.workloads.spmm import SpmmWorkload


def main() -> None:
    workload = SpmmWorkload()

    # 1. Lane scaling: where does adding compute stop helping?
    lane_counts = [2, 4, 8, 16]
    cycles = []
    for lanes in lane_counts:
        result = Delta(default_delta_config(lanes=lanes)).run(
            workload.build_program())
        workload.check(result.state)
        cycles.append(result.cycles)
    speedups = [cycles[0] / c for c in cycles]
    print(series_table("lanes", lane_counts,
                       {"cycles": cycles, "speedup-vs-2": speedups},
                       title="SpMM lane scaling"))
    print()

    # 2. DRAM bandwidth: the multicast win grows as bandwidth shrinks.
    base = default_delta_config(lanes=8)
    bandwidths = [32.0, 16.0, 8.0, 4.0]
    cycles = []
    for bpc in bandwidths:
        config = dataclasses.replace(
            base, dram=DramConfig(bytes_per_cycle=bpc))
        result = Delta(config).run(workload.build_program())
        workload.check(result.state)
        cycles.append(result.cycles)
    print(series_table("DRAM B/cyc", bandwidths, {"cycles": cycles},
                       title="SpMM vs memory bandwidth"))
    print()

    # 3. Dispatch policy comparison at the chosen design point.
    policies = ["work-aware", "round-robin", "random", "steal"]
    cycles = []
    for policy in policies:
        result = Delta(base.with_policy(policy)).run(
            workload.build_program())
        workload.check(result.state)
        cycles.append(result.cycles)
    width = max(len(p) for p in policies)
    print("SpMM dispatch policies")
    for policy, c in zip(policies, cycles):
        print(f"  {policy:<{width}}  {c:>10,.0f} cycles")


if __name__ == "__main__":
    main()
