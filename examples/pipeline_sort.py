"""Pipelined task trees: mergesort with and without stream recovery.

A merge tree is the canonical structure task-parallel runtimes break: each
merge depends on two child sorts/merges, and a barrier-based design
serializes the tree into levels with a DRAM round trip per level.
TaskStream annotates those dependences as streams (``stream_from``), so
Delta co-schedules producers with consumers and forwards data lane-to-lane.

This example measures exactly that: the same program with pipelining on
and off, plus the static baseline.

Run:  python examples/pipeline_sort.py
"""

from repro import (
    Delta,
    FeatureFlags,
    StaticParallel,
    default_baseline_config,
    default_delta_config,
)
from repro.workloads.mergesort import MergesortWorkload


def main() -> None:
    workload = MergesortWorkload(n=4096, leaf=256)
    lanes = 8

    # Full Delta: merge tree runs as a pipeline.
    full = Delta(default_delta_config(lanes=lanes)).run(
        workload.build_program())
    workload.check(full.state)

    # Pipelining ablated: stream deps degrade to completion deps plus a
    # memory round trip per tree edge.
    flags = FeatureFlags(work_aware_lb=True, pipelining=False,
                         multicast=True)
    no_pipe = Delta(default_delta_config(lanes=lanes, features=flags)).run(
        workload.build_program())
    workload.check(no_pipe.state)

    # Static-parallel design: one barrier per tree level.
    static = StaticParallel(default_baseline_config(lanes=lanes)).run(
        workload.build_program())
    workload.check(static.state)

    print(f"{'machine':<28} {'cycles':>12} {'DRAM KiB':>10} {'piped KiB':>10}")
    for label, result in (("delta (pipelined tree)", full),
                          ("delta (pipelining off)", no_pipe),
                          ("static (barrier/level)", static)):
        piped = result.counters.get("pipe.bytes") / 1024
        print(f"{label:<28} {result.cycles:>12,.0f} "
              f"{result.dram_bytes / 1024:>10.1f} {piped:>10.1f}")
    print(f"pipelining contribution: "
          f"{no_pipe.cycles / full.cycles:.2f}x; "
          f"overall vs static: {static.cycles / full.cycles:.2f}x")


if __name__ == "__main__":
    main()
