"""Tutorial: build a brand-new workload from scratch.

The scenario: *feature extraction over variable-length records*. A batch
of records (Zipf-distributed lengths — think parsed documents) must each
be scored against a shared dictionary of term weights, and the per-record
scores then reduce to a global top-line number. This exercises all three
annotations in ~120 lines:

- per-record work is skewed             -> WorkHint (load balancing)
- every record scores against the same
  dictionary                            -> shared ReadSpec (multicast)
- the reduction consumes score streams  -> stream_from (pipelining)

Run:  python examples/custom_workload.py
See:  docs/programming-model.md for the full walkthrough.
"""

from repro import (
    Delta,
    Program,
    ReadSpec,
    StaticParallel,
    TaskType,
    WorkHint,
    WriteSpec,
    default_baseline_config,
    default_delta_config,
)
from repro.arch.dfg import compare_count_dfg, dot_product_dfg
from repro.util.rng import DeterministicRng
from repro.workloads.base import Workload, require


class RecordScoring(Workload):
    """Score variable-length records against a shared dictionary."""

    name = "record-scoring"

    def __init__(self, num_records: int = 48, dict_terms: int = 2048,
                 max_len: int = 1024, seed: int = 0) -> None:
        rng = DeterministicRng("records", num_records, max_len, seed)
        self.lengths = [16 * s for s in
                        rng.zipf_sizes(num_records, 1.2, max_len // 16)]
        # A record is a list of term ids; the dictionary maps id -> weight.
        self.records = [
            [rng.randint(0, dict_terms - 1) for _ in range(length)]
            for length in self.lengths
        ]
        self.weights = [rng.randint(-3, 3) for _ in range(dict_terms)]
        self.dict_bytes = dict_terms * 4

    def build_program(self) -> Program:
        records, weights = self.records, self.weights
        dict_bytes = self.dict_bytes
        state = {"scores": {}, "total": None}

        def score_kernel(ctx, args):
            index = args["index"]
            ctx.state["scores"][index] = sum(
                weights[term] for term in records[index])

        score_type = TaskType(
            name="score",
            dfg=dot_product_dfg("score"),
            kernel=score_kernel,
            trips=lambda args: args["length"],
            reads=lambda args: (
                # The dictionary: read by every task -> multicast once.
                ReadSpec(nbytes=dict_bytes, region="dict", shared=True,
                         locality=0.5),
                # The record itself: private, sequential.
                ReadSpec(nbytes=args["length"] * 4),
            ),
            writes=lambda args: (WriteSpec(nbytes=4),),
            work_hint=WorkHint(lambda args: args["length"]),
        )

        def reduce_kernel(ctx, args):
            ctx.state["total"] = sum(ctx.state["scores"].values())

        reduce_type = TaskType(
            name="reduce",
            dfg=compare_count_dfg("reduce"),
            kernel=reduce_kernel,
            trips=lambda args: max(1, args["count"]),
        )

        def root_kernel(ctx, args):
            scorers = [
                ctx.spawn(score_type, {"index": i, "length": length})
                for i, length in enumerate(self.lengths)
            ]
            # The reduction streams the scores as they are produced.
            ctx.spawn(reduce_type, {"count": len(scorers)},
                      stream_from=scorers)

        root_type = TaskType(
            name="root", dfg=compare_count_dfg("root"),
            kernel=root_kernel, trips=lambda args: 1)
        return Program("record-scoring", state,
                       [root_type.instantiate()])

    def reference(self) -> int:
        return sum(self.weights[t] for record in self.records
                   for t in record)

    def check(self, state) -> None:
        require(state["total"] == self.reference(),
                f"total {state['total']} != {self.reference()}")


def main() -> None:
    workload = RecordScoring()
    delta = Delta(default_delta_config(lanes=8)).run(
        workload.build_program())
    workload.check(delta.state)
    static = StaticParallel(default_baseline_config(lanes=8)).run(
        workload.build_program())
    workload.check(static.state)

    print(f"record-scoring: {len(workload.records)} records, "
          f"lengths {min(workload.lengths)}..{max(workload.lengths)}")
    print(f"  delta   {delta.cycles:>10,.0f} cycles  "
          f"CV={delta.imbalance_cv:.3f}  "
          f"DRAM={delta.dram_bytes / 1024:.1f} KiB")
    print(f"  static  {static.cycles:>10,.0f} cycles  "
          f"CV={static.imbalance_cv:.3f}  "
          f"DRAM={static.dram_bytes / 1024:.1f} KiB")
    print(f"  speedup {static.cycles / delta.cycles:.2f}x "
          f"(all three mechanisms at once)")
    print(f"  total score (verified): {delta.state['total']}")


if __name__ == "__main__":
    main()
