"""Runtime invariant checking for simulation runs (the model sanitizer).

The simulator's claims rest on the model being *internally consistent*: a
modeling bug that silently corrupts counters is worse than a crash. The
:class:`Sanitizer` is the dynamic checker for that — it observes the same
events the :class:`~repro.sim.trace.Tracer` does (task lifecycle, lane
occupancy, stream chunks, shared-read coalescing, NoC sends, clock steps)
and enforces the invariant catalog below, the way a race detector checks
an execution against a happens-before model.

Invariant catalog (the ``invariant`` attribute of raised errors):

- ``task-conservation`` — every task is submitted once, dispatched once,
  completed once, and none are dropped; dispatch counters agree with the
  observed event stream.
- ``dependence-legality`` — no AFTER consumer starts before its producer
  completed; a STREAM consumer starts only after its producer started
  (pipelining on) or completed (pipelining off).
- ``stream-legality`` — a pipelined consumer never reads ahead of what its
  producer has put into the channel, and channels drain completely.
- ``lane-exclusivity`` — at most one task occupies a lane at a time, and
  every acquired lane is released by its occupant.
- ``queue-bound`` — a lane's dispatch queue never holds more tasks than
  the architected ``queue_depth``.
- ``cycle-monotonicity`` — simulated time never moves backwards and every
  observed timestamp is finite; tasks never complete before they start.
- ``work-accounting`` — per lane, busy cycles accrued by the fabric equal
  the sum of ``depth + II * trips`` over the tasks it executed, and agree
  with the lane's own utilization tracker.
- ``multicast-consistency`` — multicast degrees never exceed the recovered
  sharing-set sizes (when the oracle is attached); demanded shared bytes
  equal fetched-at-serve bytes plus saved (hit/coalesced) bytes; manager
  counters agree with the observed request stream.
- ``noc-accounting`` — NoC message/multicast counters agree with the
  observed sends; payloads are finite and non-negative.
- ``recovery-accounting`` — fault recovery (see :mod:`repro.sim.faults`)
  stays conservative: a retried task must be running and not yet retired,
  a re-dispatched task must not have started, a failed lane never runs or
  receives another task, stream replays only resend produced bytes,
  multicast refetches follow a real serve, and every ``recovery.*`` /
  ``faults.*`` counter agrees with the observed recovery event stream.
  Conservation rules *understand* retries and replays rather than
  exempting them — recovery may not double-count work or leak tasks.

The sanitizer is *purely observational*: it writes no counters, consumes
no randomness, and schedules no events, so a sanitized run's result
fingerprint is bit-identical to an unsanitized one. Disabled hooks are
no-ops — the same contract as the tracer. This module deliberately knows
nothing about the task layer: tasks are duck-typed (``task_id``, ``name``,
``after``, ``stream_from``) so ``repro.sim`` stays at the bottom of the
import layering.
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import Iterable, Mapping, Optional

__all__ = ["ModelInvariantError", "Sanitizer", "NullSanitizer",
           "env_sanitize_requested"]

_TRUTHY = ("1", "true", "yes", "on")


def env_sanitize_requested() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitized runs by default."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


class ModelInvariantError(RuntimeError):
    """A model invariant was violated during simulation.

    Attributes identify the offence precisely: ``invariant`` (a name from
    the catalog above), the offending ``task`` name, ``lane`` id and
    ``cycle``, plus ``window`` — the most recent observed events, oldest
    first, for post-mortem context.
    """

    def __init__(self, invariant: str, message: str, *,
                 task: Optional[str] = None,
                 lane: Optional[int] = None,
                 cycle: Optional[float] = None,
                 window: Iterable[str] = ()) -> None:
        self.invariant = invariant
        self.task = task
        self.lane = lane
        self.cycle = cycle
        self.window = list(window)
        context = []
        if task is not None:
            context.append(f"task={task}")
        if lane is not None:
            context.append(f"lane={lane}")
        if cycle is not None:
            context.append(f"cycle={cycle:,.0f}")
        text = f"[{invariant}] {message}"
        if context:
            text += f" ({', '.join(context)})"
        if self.window:
            text += "\nrecent events:\n  " + "\n  ".join(self.window)
        super().__init__(text)


class Sanitizer:
    """Observes run events and enforces the model-invariant catalog.

    Execution models call the hook methods as events happen (mirroring the
    tracer's call sites) and :meth:`finish` once at result assembly, which
    runs the whole-run balance checks. ``checks`` counts observations — a
    cheap way for tests to assert the sanitizer actually saw a run.
    """

    #: How many recent events the violation excerpt carries.
    WINDOW = 24

    def __init__(self) -> None:
        self.enabled = True
        self.checks = 0
        self._window: deque[str] = deque(maxlen=self.WINDOW)
        self._last_cycle = 0.0
        # Task lifecycle: task_id -> name / lane / cycle.
        self._submitted: dict[int, str] = {}
        self._dispatched: dict[int, int] = {}
        self._started: dict[int, float] = {}
        self._completed: dict[int, float] = {}
        # Lifecycle events that went through the hardware dispatcher (and
        # therefore must agree with the dispatch.* counters).
        self._counted = [0, 0, 0]  # submitted, dispatched, completed
        # Lane occupancy and busy accounting.
        self._occupant: dict[int, tuple[int, str]] = {}
        self._observed_busy: dict[int, float] = {}
        self._expected_busy: dict[int, float] = {}
        # Pipelined stream channels: (producer_id, consumer_id) -> bytes.
        self._produced: dict[tuple[int, int], float] = {}
        self._consumed: dict[tuple[int, int], float] = {}
        # Shared-read recovery.
        self._sharing_degrees: Optional[dict[str, int]] = None
        self._region_requests: dict[str, int] = {}
        self._shared_demand = 0.0
        self._shared_fetched = 0.0
        self._shared_saved = 0.0
        self._outcomes = {"fetch": 0, "coalesced": 0, "hit": 0}
        self._mcast_serves = 0
        # NoC sends.
        self._noc_unicasts = 0
        self._noc_multicasts = 0
        # Fault recovery (all zero on a fault-free run, so the
        # recovery-accounting balance checks reduce to 0 == 0).
        self._retries = 0
        self._requeues = 0
        self._dead_lanes: set[int] = set()
        self._lanes_failed = 0
        self._replayed: dict[tuple[int, int], float] = {}
        self._refetches = 0
        self._refetched_bytes = 0.0
        self._noc_retransmits = 0
        self._finished = False

    # -- internals ---------------------------------------------------------

    def _fail(self, invariant: str, message: str, *,
              task: Optional[str] = None, lane: Optional[int] = None,
              cycle: Optional[float] = None) -> None:
        raise ModelInvariantError(invariant, message, task=task, lane=lane,
                                  cycle=cycle, window=self._window)

    def _observe(self, cycle: float, kind: str, detail: str) -> None:
        """Record one event in the excerpt window and check the clock."""
        self.checks += 1
        if not math.isfinite(cycle) or cycle < 0:
            self._fail("cycle-monotonicity",
                       f"{kind} event carries invalid timestamp {cycle!r}",
                       cycle=None)
        if cycle < self._last_cycle:
            self._fail("cycle-monotonicity",
                       f"{kind} event at cycle {cycle:,.2f} after the clock "
                       f"already reached {self._last_cycle:,.2f}",
                       cycle=cycle)
        self._last_cycle = cycle
        self._window.append(f"t={cycle:<10,.0f} {kind:<10} {detail}")

    @staticmethod
    def _close(a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)

    # -- clock -------------------------------------------------------------

    def clock_advanced(self, prev: float, now: float) -> None:
        """Engine hook: called before the clock moves ``prev`` -> ``now``."""
        if not self.enabled:
            return
        self.checks += 1
        if not math.isfinite(now):
            self._fail("cycle-monotonicity",
                       f"clock advanced to non-finite time {now!r}",
                       cycle=prev)
        if now < prev:
            self._fail("cycle-monotonicity",
                       f"clock moved backwards: {prev:,.2f} -> {now:,.2f}",
                       cycle=now)

    # -- task lifecycle ----------------------------------------------------

    def task_submitted(self, task, cycle: float, counted: bool = True) -> None:
        """A task entered readiness tracking."""
        if not self.enabled:
            return
        self._observe(cycle, "submit", task.name)
        if task.task_id in self._submitted:
            self._fail("task-conservation",
                       f"task {task.name} submitted more than once",
                       task=task.name, cycle=cycle)
        self._submitted[task.task_id] = task.name
        if counted:
            self._counted[0] += 1

    def task_dispatched(self, task, lane: int, cycle: float,
                        queue_level: Optional[int] = None,
                        queue_depth: Optional[int] = None,
                        counted: bool = True) -> None:
        """A ready task was placed on a lane queue."""
        if not self.enabled:
            return
        self._observe(cycle, "dispatch", f"{task.name} -> lane{lane}")
        if task.task_id not in self._submitted:
            self._fail("task-conservation",
                       f"task {task.name} dispatched without being submitted",
                       task=task.name, lane=lane, cycle=cycle)
        if task.task_id in self._dispatched:
            self._fail("task-conservation",
                       f"task {task.name} dispatched more than once "
                       f"(first to lane {self._dispatched[task.task_id]})",
                       task=task.name, lane=lane, cycle=cycle)
        if lane in self._dead_lanes:
            self._fail("recovery-accounting",
                       f"task {task.name} dispatched to lane {lane}, which "
                       f"fail-stopped earlier",
                       task=task.name, lane=lane, cycle=cycle)
        self._dispatched[task.task_id] = lane
        if queue_level is not None and queue_depth is not None \
                and queue_level > queue_depth:
            self._fail("queue-bound",
                       f"lane {lane} queue holds {queue_level} tasks, "
                       f"architected depth is {queue_depth}",
                       task=task.name, lane=lane, cycle=cycle)
        if counted:
            self._counted[1] += 1

    def task_stolen(self, task, victim: int, thief: int,
                    cycle: float) -> None:
        """A queued task moved from one lane's queue to another's."""
        if not self.enabled:
            return
        self._observe(cycle, "steal",
                      f"{task.name} lane{victim} -> lane{thief}")
        if task.task_id not in self._dispatched:
            self._fail("task-conservation",
                       f"task {task.name} stolen before being dispatched",
                       task=task.name, lane=thief, cycle=cycle)
        if task.task_id in self._started:
            self._fail("task-conservation",
                       f"task {task.name} stolen while already running",
                       task=task.name, lane=thief, cycle=cycle)
        self._dispatched[task.task_id] = thief

    def task_started(self, task, lane: int, cycle: float,
                     pipelining: bool = True) -> None:
        """A lane began executing a task; its dependences must allow it."""
        if not self.enabled:
            return
        self._observe(cycle, "start", f"{task.name} on lane{lane}")
        if task.task_id not in self._submitted:
            self._fail("task-conservation",
                       f"task {task.name} started without being submitted",
                       task=task.name, lane=lane, cycle=cycle)
        if task.task_id in self._started:
            self._fail("task-conservation",
                       f"task {task.name} started more than once",
                       task=task.name, lane=lane, cycle=cycle)
        for dep in task.after:
            if dep.task_id not in self._completed:
                self._fail("dependence-legality",
                           f"task {task.name} starts before its AFTER "
                           f"producer {dep.name} completed",
                           task=task.name, lane=lane, cycle=cycle)
        for producer in task.stream_from:
            if pipelining:
                if producer.task_id not in self._started:
                    self._fail("dependence-legality",
                               f"task {task.name} starts before its STREAM "
                               f"producer {producer.name} started",
                               task=task.name, lane=lane, cycle=cycle)
            elif producer.task_id not in self._completed:
                self._fail("dependence-legality",
                           f"task {task.name} starts before its STREAM "
                           f"producer {producer.name} completed "
                           f"(pipelining disabled)",
                           task=task.name, lane=lane, cycle=cycle)
        self._started[task.task_id] = cycle

    def task_completed(self, task, lane: Optional[int], cycle: float,
                       counted: bool = True) -> None:
        """A task retired."""
        if not self.enabled:
            return
        self._observe(cycle, "complete", task.name)
        if task.task_id not in self._started:
            self._fail("task-conservation",
                       f"task {task.name} completed without starting",
                       task=task.name, lane=lane, cycle=cycle)
        if task.task_id in self._completed:
            self._fail("task-conservation",
                       f"task {task.name} completed more than once",
                       task=task.name, lane=lane, cycle=cycle)
        if cycle < self._started[task.task_id]:
            self._fail("cycle-monotonicity",
                       f"task {task.name} completes at {cycle:,.2f}, before "
                       f"its start at {self._started[task.task_id]:,.2f}",
                       task=task.name, lane=lane, cycle=cycle)
        self._completed[task.task_id] = cycle
        if counted:
            self._counted[2] += 1

    # -- lane occupancy and work accounting --------------------------------

    def lane_acquired(self, lane: int, task, cycle: float) -> None:
        """A task took exclusive occupancy of a lane."""
        if not self.enabled:
            return
        self._observe(cycle, "acquire", f"lane{lane} <- {task.name}")
        occupant = self._occupant.get(lane)
        if occupant is not None:
            self._fail("lane-exclusivity",
                       f"lane {lane} begins task {task.name} while "
                       f"{occupant[1]} still occupies it",
                       task=task.name, lane=lane, cycle=cycle)
        if lane in self._dead_lanes:
            self._fail("recovery-accounting",
                       f"lane {lane} begins task {task.name} after "
                       f"fail-stopping", task=task.name, lane=lane,
                       cycle=cycle)
        self._occupant[lane] = (task.task_id, task.name)

    def lane_released(self, lane: int, task, cycle: float) -> None:
        """A task released its lane."""
        if not self.enabled:
            return
        self._observe(cycle, "release", f"lane{lane} -> {task.name}")
        occupant = self._occupant.get(lane)
        if occupant is None or occupant[0] != task.task_id:
            holder = "idle" if occupant is None else occupant[1]
            self._fail("lane-exclusivity",
                       f"task {task.name} releases lane {lane} it does not "
                       f"occupy (lane is {holder})",
                       task=task.name, lane=lane, cycle=cycle)
        del self._occupant[lane]

    def lane_busy(self, lane: int, cycles: float, cycle: float) -> None:
        """The fabric on ``lane`` accrued ``cycles`` of busy time.

        Hot path (once per pipeline step): no window record, just the
        accumulation the whole-run balance check consumes.
        """
        if not self.enabled:
            return
        self.checks += 1
        if not math.isfinite(cycles) or cycles < 0:
            self._fail("work-accounting",
                       f"lane {lane} accrued invalid busy amount {cycles!r}",
                       lane=lane, cycle=cycle)
        self._observed_busy[lane] = \
            self._observed_busy.get(lane, 0.0) + cycles

    def compute_expected(self, lane: int, task, cycles: float) -> None:
        """Record a task's model-expected busy cycles on its lane."""
        if not self.enabled:
            return
        self.checks += 1
        if not math.isfinite(cycles) or cycles < 0:
            self._fail("work-accounting",
                       f"task {task.name} has invalid expected busy "
                       f"cycles {cycles!r}", task=task.name, lane=lane)
        self._expected_busy[lane] = \
            self._expected_busy.get(lane, 0.0) + cycles

    # -- pipelined streams -------------------------------------------------

    def stream_produced(self, producer_id: int, consumer_id: int,
                        nbytes: float, cycle: float) -> None:
        """A producer put ``nbytes`` into a lane-to-lane channel."""
        if not self.enabled:
            return
        self.checks += 1
        if not math.isfinite(nbytes) or nbytes < 0:
            self._fail("stream-legality",
                       f"channel #{producer_id}->#{consumer_id} produced "
                       f"invalid chunk of {nbytes!r} bytes", cycle=cycle)
        key = (producer_id, consumer_id)
        self._produced[key] = self._produced.get(key, 0.0) + nbytes

    def stream_consumed(self, producer_id: int, consumer_id: int,
                        nbytes: float, cycle: float) -> None:
        """A consumer pulled ``nbytes`` from a lane-to-lane channel."""
        if not self.enabled:
            return
        self.checks += 1
        key = (producer_id, consumer_id)
        consumed = self._consumed.get(key, 0.0) + nbytes
        produced = self._produced.get(key, 0.0)
        if consumed > produced and not self._close(consumed, produced):
            self._fail("stream-legality",
                       f"consumer task #{consumer_id} has read "
                       f"{consumed:,.0f} B from producer task "
                       f"#{producer_id}, which has produced only "
                       f"{produced:,.0f} B", cycle=cycle)
        self._consumed[key] = consumed

    # -- shared-read recovery ----------------------------------------------

    def set_sharing_degrees(self,
                            degrees: Optional[Mapping[str, int]]) -> None:
        """Attach the recovered sharing-set oracle (region -> readers)."""
        if not self.enabled or degrees is None:
            return
        self._sharing_degrees = dict(degrees)

    def shared_request(self, region: str, nbytes: float, lane: int,
                       outcome: str, cycle: float) -> None:
        """One task asked the multicast manager for a shared region."""
        if not self.enabled:
            return
        self._observe(cycle, "shared", f"{region} {outcome} on lane{lane}")
        if outcome not in self._outcomes:
            self._fail("multicast-consistency",
                       f"unknown shared-request outcome {outcome!r} for "
                       f"region {region!r}", lane=lane, cycle=cycle)
        self._outcomes[outcome] += 1
        self._shared_demand += nbytes
        if outcome != "fetch":
            self._shared_saved += nbytes
        seen = self._region_requests.get(region, 0) + 1
        self._region_requests[region] = seen
        if self._sharing_degrees is not None:
            expected = self._sharing_degrees.get(region)
            if expected is not None and seen > expected:
                self._fail("multicast-consistency",
                           f"region {region!r} requested {seen} times, but "
                           f"its recovered sharing set has only {expected} "
                           f"readers", lane=lane, cycle=cycle)

    def multicast_served(self, region: str, nbytes: float, degree: int,
                         cycle: float) -> None:
        """A coalescing batch fetched once and multicast to its lanes."""
        if not self.enabled:
            return
        self._observe(cycle, "mcast", f"{region} x{degree}")
        if degree < 1:
            self._fail("multicast-consistency",
                       f"multicast of region {region!r} served to "
                       f"{degree} lanes", cycle=cycle)
        self._mcast_serves += 1
        self._shared_fetched += nbytes
        if self._sharing_degrees is not None:
            expected = self._sharing_degrees.get(region)
            if expected is not None and degree > expected:
                self._fail("multicast-consistency",
                           f"multicast of region {region!r} reaches "
                           f"{degree} lanes, but its recovered sharing set "
                           f"has only {expected} readers", cycle=cycle)

    # -- interconnect ------------------------------------------------------

    def noc_message(self, kind: str, nbytes: float, cycle: float) -> None:
        """The NoC accepted one send (``unicast`` or ``multicast``)."""
        if not self.enabled:
            return
        self.checks += 1
        if not math.isfinite(nbytes) or nbytes < 0:
            self._fail("noc-accounting",
                       f"{kind} send with invalid payload {nbytes!r} bytes",
                       cycle=cycle)
        if kind == "multicast":
            self._noc_multicasts += 1
        else:
            self._noc_unicasts += 1

    # -- fault recovery ----------------------------------------------------

    def task_retried(self, task, lane: int, attempt: int,
                     cycle: float) -> None:
        """A transient fault killed an execution attempt; the task will be
        re-executed in place after its backoff."""
        if not self.enabled:
            return
        self._observe(cycle, "retry",
                      f"{task.name} attempt {attempt} on lane{lane}")
        if task.task_id not in self._started:
            self._fail("recovery-accounting",
                       f"task {task.name} retried before it started",
                       task=task.name, lane=lane, cycle=cycle)
        if task.task_id in self._completed:
            self._fail("recovery-accounting",
                       f"task {task.name} retried after it completed",
                       task=task.name, lane=lane, cycle=cycle)
        self._retries += 1

    def task_requeued(self, task, lane: Optional[int],
                      cycle: float) -> None:
        """A failed lane's backlog task went back for re-dispatch.

        Clears the dispatch record so the surviving lane's dispatch is the
        task's one live placement — conservation still holds exactly once.
        """
        if not self.enabled:
            return
        self._observe(cycle, "requeue", f"{task.name} off lane{lane}")
        if task.task_id not in self._submitted:
            self._fail("recovery-accounting",
                       f"task {task.name} requeued without being submitted",
                       task=task.name, lane=lane, cycle=cycle)
        if task.task_id in self._started:
            self._fail("recovery-accounting",
                       f"task {task.name} requeued while already running",
                       task=task.name, lane=lane, cycle=cycle)
        self._dispatched.pop(task.task_id, None)
        self._requeues += 1

    def lane_failed(self, lane: int, cycle: float) -> None:
        """A lane fail-stopped; it must never run or receive work again."""
        if not self.enabled:
            return
        self._observe(cycle, "lane-fail", f"lane{lane} fail-stop")
        if lane in self._dead_lanes:
            self._fail("recovery-accounting",
                       f"lane {lane} fail-stopped twice", lane=lane,
                       cycle=cycle)
        self._dead_lanes.add(lane)
        self._lanes_failed += 1

    def stream_replayed(self, producer_id: int, consumer_id: int,
                        nbytes: float, cycle: float) -> None:
        """A corrupt chunk was replayed from the last acknowledged chunk.

        Replays resend bytes already produced — they do not move the
        produced/consumed balance, and may only follow real production.
        """
        if not self.enabled:
            return
        self.checks += 1
        if not math.isfinite(nbytes) or nbytes < 0:
            self._fail("recovery-accounting",
                       f"channel #{producer_id}->#{consumer_id} replayed an "
                       f"invalid chunk of {nbytes!r} bytes", cycle=cycle)
        key = (producer_id, consumer_id)
        if self._produced.get(key, 0.0) <= 0.0:
            self._fail("recovery-accounting",
                       f"channel #{producer_id}->#{consumer_id} replayed a "
                       f"chunk before producing anything", cycle=cycle)
        self._replayed[key] = self._replayed.get(key, 0.0) + nbytes

    def multicast_refetch(self, region: str, nbytes: float, degree: int,
                          cycle: float) -> None:
        """Dropped multicast lines refetched for the lanes that missed.

        A refetch is not a serve: it must not move the coalescing-batch
        balance (``mcast.fetches`` stays equal to opened batches).
        """
        if not self.enabled:
            return
        self._observe(cycle, "refetch", f"{region} x{degree}")
        if degree < 1:
            self._fail("recovery-accounting",
                       f"multicast refetch of region {region!r} for "
                       f"{degree} lanes", cycle=cycle)
        if self._outcomes["fetch"] == 0:
            self._fail("recovery-accounting",
                       f"region {region!r} refetched before any coalescing "
                       f"batch was opened", cycle=cycle)
        self._refetches += 1
        self._refetched_bytes += nbytes

    def noc_retransmit(self, kind: str, count: int, cycle: float) -> None:
        """``count`` link-level drops of one message were retransmitted."""
        if not self.enabled:
            return
        self.checks += 1
        if count < 1:
            self._fail("recovery-accounting",
                       f"{kind} retransmission with non-positive drop "
                       f"count {count}", cycle=cycle)
        self._noc_retransmits += count

    # -- end-of-run balance checks ----------------------------------------

    def pending_report(self) -> str:
        """Conservation snapshot for stall diagnostics (never raises)."""
        unfinished = [name for task_id, name in sorted(
            self._submitted.items()) if task_id not in self._completed]
        shown = ", ".join(unfinished[:8])
        if len(unfinished) > 8:
            shown += f", ... ({len(unfinished) - 8} more)"
        return (f"sanitizer: {len(self._submitted)} submitted, "
                f"{len(self._dispatched)} dispatched, "
                f"{len(self._started)} started, "
                f"{len(self._completed)} completed"
                + (f"; unfinished: {shown}" if unfinished else ""))

    def finish(self, metrics, lane_busy: list) -> None:
        """Whole-run balance checks, called once at result assembly.

        ``metrics`` is the machine's counter store (read-only use);
        ``lane_busy`` the machine's per-lane tracker totals, in lane order.
        """
        if not self.enabled or self._finished:
            return
        self._finished = True
        self.checks += 1
        self._check_conservation(metrics)
        self._check_occupancy()
        self._check_work_accounting(lane_busy)
        self._check_streams()
        self._check_multicast(metrics)
        self._check_noc(metrics)
        self._check_recovery(metrics)

    def _check_conservation(self, metrics) -> None:
        for task_id, name in self._submitted.items():
            if task_id not in self._completed:
                state = ("started" if task_id in self._started
                         else "dispatched" if task_id in self._dispatched
                         else "submitted")
                self._fail("task-conservation",
                           f"task {name} was submitted but never completed "
                           f"(last state: {state})", task=name)
        if not any(self._counted):
            return  # no hardware dispatcher in the loop (static runtime)
        names = ("submitted", "dispatched", "completed")
        for name, observed in zip(names, self._counted):
            counted = metrics.get(f"dispatch.{name}")
            if not self._close(counted, observed):
                self._fail("task-conservation",
                           f"dispatch.{name} counter reads {counted:,.0f} "
                           f"but the sanitizer observed {observed} events")

    def _check_occupancy(self) -> None:
        if self._occupant:
            lane, (_tid, name) = sorted(self._occupant.items())[0]
            self._fail("lane-exclusivity",
                       f"lane {lane} still occupied by {name} at the end "
                       f"of the run", task=name, lane=lane)

    def _check_work_accounting(self, lane_busy: list) -> None:
        lanes = set(self._observed_busy) | set(self._expected_busy)
        for lane in sorted(lanes):
            observed = self._observed_busy.get(lane, 0.0)
            expected = self._expected_busy.get(lane, 0.0)
            if not self._close(observed, expected):
                self._fail("work-accounting",
                           f"lane {lane} accrued {observed:,.2f} busy "
                           f"cycles, but its tasks account for "
                           f"{expected:,.2f} (depth + II x trips)",
                           lane=lane)
            tracker = (lane_busy[lane]
                       if 0 <= lane < len(lane_busy) else None)
            if tracker is None or not self._close(tracker, observed):
                self._fail("work-accounting",
                           f"lane {lane} utilization tracker reads "
                           f"{tracker} busy cycles; the sanitizer observed "
                           f"{observed:,.2f}", lane=lane)

    def _check_streams(self) -> None:
        for key in sorted(set(self._produced) | set(self._consumed)):
            produced = self._produced.get(key, 0.0)
            consumed = self._consumed.get(key, 0.0)
            if not self._close(produced, consumed):
                self._fail("stream-legality",
                           f"channel task #{key[0]} -> task #{key[1]} "
                           f"produced {produced:,.0f} B but its consumer "
                           f"drained {consumed:,.0f} B")

    def _check_multicast(self, metrics) -> None:
        if not self._close(self._shared_demand,
                           self._shared_fetched + self._shared_saved):
            self._fail("multicast-consistency",
                       f"shared-read bytes do not balance: demanded "
                       f"{self._shared_demand:,.0f} B != fetched "
                       f"{self._shared_fetched:,.0f} B + saved "
                       f"{self._shared_saved:,.0f} B")
        if self._mcast_serves != self._outcomes["fetch"]:
            self._fail("multicast-consistency",
                       f"{self._outcomes['fetch']} coalescing batches were "
                       f"opened but {self._mcast_serves} multicast "
                       f"deliveries were served")
        for counter, outcome in (("fetches", "fetch"),
                                 ("coalesced", "coalesced"),
                                 ("hits", "hit")):
            counted = metrics.get(f"mcast.{counter}")
            if not self._close(counted, self._outcomes[outcome]):
                self._fail("multicast-consistency",
                           f"mcast.{counter} counter reads {counted:,.0f} "
                           f"but the sanitizer observed "
                           f"{self._outcomes[outcome]} requests")

    def _check_noc(self, metrics) -> None:
        for counter, observed in (("messages", self._noc_unicasts),
                                  ("multicasts", self._noc_multicasts)):
            counted = metrics.get(f"noc.{counter}")
            if not self._close(counted, observed):
                self._fail("noc-accounting",
                           f"noc.{counter} counter reads {counted:,.0f} "
                           f"but the sanitizer observed {observed} sends")

    def _check_recovery(self, metrics) -> None:
        """Every recovery counter agrees with the observed event stream.

        On a fault-free run every pair below is (0, 0), so this check
        costs nothing and can never fire spuriously.
        """
        pairs = (
            ("recovery.retries", float(self._retries)),
            ("recovery.redispatched", float(self._requeues)),
            ("recovery.noc_retransmits", float(self._noc_retransmits)),
            ("recovery.refetches", float(self._refetches)),
            ("recovery.refetch_bytes", self._refetched_bytes),
            ("recovery.replayed_bytes", sum(self._replayed.values())),
            ("faults.lane_failstop", float(self._lanes_failed)),
        )
        for counter, observed in pairs:
            counted = metrics.get(counter)
            if not self._close(counted, observed):
                self._fail("recovery-accounting",
                           f"{counter} counter reads {counted:,.0f} but "
                           f"the sanitizer observed {observed:,.0f}")


class NullSanitizer(Sanitizer):
    """A sanitizer that checks nothing (the default, zero overhead)."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False


#: Shared disabled instance components fall back to when none is wired.
NULL_SANITIZER = NullSanitizer()
