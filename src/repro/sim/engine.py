"""Core event loop: environment, events, processes, timeouts.

The design follows the classic process-interaction DES structure:

- An :class:`Event` is a one-shot occurrence. Processes waiting on it are
  resumed when it *succeeds* (optionally carrying a value) or *fails*
  (carrying an exception, re-raised inside the waiting process).
- A :class:`Process` wraps a generator. Each ``yield`` hands the kernel an
  event to wait on; when that event fires, the generator is resumed with
  the event's value (or the exception is thrown into it).
- The :class:`Environment` owns simulated time and the event heap.

This is deliberately a subset of SimPy's semantics — enough for cycle-level
hardware modeling, small enough to reason about and test exhaustively.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


#: Scheduling slots drained by every environment in this process — the
#: denominator of the events/sec metric in BENCH_*.json. Outside the
#: counter bag on purpose: the two kernels process different slot counts
#: (the fast engine elides shim events), so this must never reach a
#: fingerprint.
_process_events_total = 0


def total_events_processed() -> int:
    """Process-wide count of scheduling slots drained by ``run()`` calls."""
    return _process_events_total


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (yielding a non-event, etc.)."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Environment.run` when processes remain but no event
    is scheduled — simulated hardware has deadlocked (e.g. a full queue with
    no consumer)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    State machine: *pending* → *triggered* (scheduled on the heap) →
    *processed* (callbacks ran). ``succeed``/``fail`` may be called exactly
    once.
    """

    __slots__ = ("env", "_callbacks", "_value", "_ok", "_triggered",
                 "_processed", "name")

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        # Lazily allocated: most events carry exactly one waiter, many none.
        self._callbacks: Optional[list[Callable[[Event], None]]] = None
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once succeed/fail has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if still pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event already fired, the callback is scheduled immediately.
        """
        if self._processed:
            # Run via the heap to preserve causal ordering.
            self.env._schedule_call(fn, self)
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None, delay: float = 0) -> "Event":
        """Mark the event successful; waiters resume with ``value``."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0) -> "Event":
        """Mark the event failed; waiters see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._triggered:
            raise SimulationError(f"event {self} already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule_event(self, delay)

    def _process(self) -> None:
        self._processed = True
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("processed" if self._processed
                 else "triggered" if self._triggered else "pending")
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` cycles after creation.

    The display name is derived lazily in ``__repr__`` — timeouts are the
    single most-created object in a run, and formatting a name for each
    would dominate their cost.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule_event(self, delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("processed" if self._processed
                 else "triggered" if self._triggered else "pending")
        return f"<timeout({self.delay}) {state} at t={self.env.now}>"


class Process(Event):
    """A running generator coroutine; also an event (fires on completion).

    The generator yields events; the process resumes when each fires. The
    process's own completion value is the generator's ``return`` value.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env, name=name or getattr(
            generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process via an immediate scheduling slot so creation
        # order matches execution order. The environment owns how that slot
        # is represented (the fast kernel uses a bare call slot instead of
        # a bootstrap event — same queue position either way).
        env._schedule_process_start(self)

    def _start(self, _arg: Any = None) -> None:
        """First resume, from the bootstrap slot (nothing awaited yet)."""
        if self.is_alive:
            self._step(None, is_throw=False)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the awaited event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        interrupt_event = Event(self.env, name=f"interrupt:{self.name}")
        interrupt_event.add_callback(
            lambda _ev: self._resume_with_throw(Interrupt(cause)))
        interrupt_event.succeed()

    def _resume_with_throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        waiting = self._waiting_on
        if waiting is not None:
            # Detach: stale wakeups from this event must be ignored.
            self._waiting_on = None
        self._step(exc, is_throw=True)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return  # Stale wakeup of a finished process (e.g. post-interrupt).
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # Stale wakeup after an interrupt detached us.
        self._waiting_on = None
        if event.ok is False:
            self._step(event.value, is_throw=True)
        else:
            self._step(event.value, is_throw=False)

    def _step(self, value: Any, is_throw: bool) -> None:
        try:
            if is_throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.env.strict:
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (Timeout, Process, Store ops, ...)")
        if target.env is not self.env:
            raise SimulationError("yielded event belongs to another Environment")
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """Simulated clock plus the pending-event heap.

    Parameters
    ----------
    strict:
        When True (the default), an exception raised inside a process
        propagates out of :meth:`run` immediately — the right behaviour for
        a simulator where a modeling bug should abort the experiment.
    """

    #: Class tag the arch components consult to pick their fast paths;
    #: the reference kernel reports False, :class:`~repro.sim.fastengine.
    #: FastEnvironment` overrides it.
    fast = False

    def __init__(self, strict: bool = True) -> None:
        self.now: float = 0.0
        self.strict = strict
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Scheduling slots drained so far — the denominator of the
        #: events/sec throughput metric in BENCH_*.json.
        self.events_processed = 0
        #: Optional observer called as ``clock_monitor(prev, next)`` right
        #: before the clock advances to a later time — the sanitizer's
        #: cycle-monotonicity hook. None (the default) costs one comparison
        #: per event.
        self.clock_monitor: Optional[Callable[[float, float], None]] = None

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _schedule_call(self, fn: Callable[[Event], None],
                       event: Event) -> None:
        shim = Event(self, name="callback-shim")
        shim.add_callback(lambda _ev: fn(event))
        shim.succeed()

    def _schedule_process_start(self, process: "Process") -> None:
        """Queue the first resume of a freshly created process.

        One scheduling slot at the current time, so creation order matches
        execution order. The fast kernel overrides this with a bare call
        slot — same queue position, no bootstrap Event object.
        """
        bootstrap = Event(self, name=f"init:{process.name}")
        bootstrap.add_callback(process._start)
        bootstrap.succeed()

    # -- public API ------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` cycles."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when every given event has fired.

        The value is a list of the individual events' values, in input
        order. Failure of any child fails the aggregate (first failure wins).
        """
        events = list(events)
        done = self.event(name="all_of")
        if not events:
            done.succeed([])
            return done
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)

        def make_cb(index: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                if done.triggered:
                    return
                if ev.ok is False:
                    done.fail(ev.value)
                    return
                values[index] = ev.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def all_done(self, events: Iterable[Event]) -> Event:
        """Like :meth:`all_of` but the value is always ``None``.

        Most aggregation points in the machine model only gate on
        completion and drop the value list; this variant skips the
        per-child closures and value bookkeeping. Scheduling behaviour is
        identical to ``all_of`` — the aggregate fires from the last
        child's callback slot either way.
        """
        events = list(events)
        done = self.event(name="all_done")
        if not events:
            done.succeed()
            return done
        remaining = [len(events)]

        def cb(ev: Event) -> None:
            if done.triggered:
                return
            if ev.ok is False:
                done.fail(ev.value)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                done.succeed()

        for ev in events:
            ev.add_callback(cb)
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when the first of the given events fires."""
        events = list(events)
        if not events:
            raise SimulationError("any_of of no events")
        done = self.event(name="any_of")

        def cb(ev: Event) -> None:
            if not done.triggered:
                if ev.ok is False:
                    done.fail(ev.value)
                else:
                    done.succeed(ev.value)

        for ev in events:
            ev.add_callback(cb)
        return done

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap is empty or ``until`` cycles have elapsed.

        Returns the final simulated time. Raises :class:`DeadlockError` via
        resource/store bookkeeping only implicitly: an empty heap simply
        ends the run (callers check completion events; the Delta top level
        raises a descriptive error if its program did not finish).
        """
        global _process_events_total
        start = self.events_processed
        try:
            while self._heap:
                at, _seq, event = self._heap[0]
                if until is not None and at > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._heap)
                if self.clock_monitor is not None and at != self.now:
                    self.clock_monitor(self.now, at)
                self.now = at
                self.events_processed += 1
                event._process()
            return self.now
        finally:
            _process_events_total += self.events_processed - start

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
