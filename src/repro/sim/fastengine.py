"""Calendar-queue event kernel: the ``REPRO_ENGINE=fast`` drop-in.

:class:`FastEnvironment` keeps the exact scheduling semantics of
:class:`repro.sim.engine.Environment` while replacing its two main costs:

- The global ``(time, seq)`` heap becomes a *bucket queue*: a dict from
  simulated time to the list of entries scheduled at that time, plus a
  small heap of the distinct times. Within a bucket, list-append order
  is the sequence order — the reference kernel's monotonically increasing
  ``seq`` tiebreaker produces exactly the same total order, because both
  kernels enqueue from the same single-threaded call sites.
- Zero-delay shim events (callback-after-processed, process bootstrap)
  become bare ``(fn, arg)`` call slots in the same queue position, with
  no Event allocation or callback-list churn.

Equivalence with the reference kernel is enforced bit-for-bit by
``tests/test_engine_equivalence.py`` over the full workload matrix.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Optional

from repro.sim import engine
from repro.sim.engine import Environment, Event, Process

#: Environment variable selecting the event kernel. ``fast`` (the
#: default) is the calendar-queue kernel below; ``reference`` is the
#: original heap kernel, kept as the test oracle.
ENGINE_VAR = "REPRO_ENGINE"


def engine_name() -> str:
    """The selected engine: ``fast`` unless ``REPRO_ENGINE`` says else."""
    name = os.environ.get(ENGINE_VAR, "fast").strip().lower() or "fast"
    if name not in ("fast", "reference"):
        raise ValueError(
            f"{ENGINE_VAR}={name!r}: expected 'fast' or 'reference'")
    return name


def make_environment(strict: bool = True) -> Environment:
    """Build the environment the ``REPRO_ENGINE`` switch selects."""
    if engine_name() == "reference":
        return Environment(strict=strict)
    return FastEnvironment(strict=strict)


class FastEnvironment(Environment):
    """Bucket-queue environment, fingerprint-identical to the reference.

    Entries in a bucket are either :class:`Event` instances (processed via
    ``_process``) or ``(fn, arg)`` call slots (invoked directly). While a
    bucket is being drained, new same-time entries land in a fresh bucket
    that is re-pushed and drained immediately after — matching the
    reference behaviour where same-time schedules receive higher ``seq``
    values than everything already heaped.
    """

    fast = True

    def __init__(self, strict: bool = True) -> None:
        super().__init__(strict=strict)
        self._buckets: dict[float, list[Any]] = {}
        self._times: list[float] = []

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float) -> None:
        at = self.now + delay
        bucket = self._buckets.get(at)
        if bucket is None:
            self._buckets[at] = [event]
            heapq.heappush(self._times, at)
        else:
            bucket.append(event)

    def _schedule_call(self, fn: Callable[[Event], None],
                       event: Event) -> None:
        at = self.now
        bucket = self._buckets.get(at)
        if bucket is None:
            self._buckets[at] = [(fn, event)]
            heapq.heappush(self._times, at)
        else:
            bucket.append((fn, event))

    def _schedule_call_at(self, at: float, fn: Callable[[Any], None],
                          arg: Any = None) -> None:
        """Place a bare call slot at absolute time ``at``.

        The closed-form component fast paths (NoC delivery chains) use
        this to occupy exactly the queue positions their reference-path
        event chains would.
        """
        bucket = self._buckets.get(at)
        if bucket is None:
            self._buckets[at] = [(fn, arg)]
            heapq.heappush(self._times, at)
        else:
            bucket.append((fn, arg))

    def _schedule_process_start(self, process: Process) -> None:
        at = self.now
        bucket = self._buckets.get(at)
        if bucket is None:
            self._buckets[at] = [(process._start, None)]
            heapq.heappush(self._times, at)
        else:
            bucket.append((process._start, None))

    # -- run loop --------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        times = self._times
        buckets = self._buckets
        start = self.events_processed
        try:
            while times:
                at = times[0]
                if until is not None and at > until:
                    self.now = until
                    return self.now
                heapq.heappop(times)
                # Detach the bucket before draining: same-time entries
                # scheduled *while* draining start a fresh bucket at
                # ``at``, which the loop picks up next — after everything
                # already queued, exactly like higher-seq heap entries
                # would be.
                bucket = buckets.pop(at)
                if self.clock_monitor is not None and at != self.now:
                    self.clock_monitor(self.now, at)
                self.now = at
                self.events_processed += len(bucket)
                for entry in bucket:
                    if type(entry) is tuple:
                        entry[0](entry[1])
                    else:
                        entry._process()
            return self.now
        finally:
            engine._process_events_total += self.events_processed - start

    def peek(self) -> float:
        return self._times[0] if self._times else float("inf")
