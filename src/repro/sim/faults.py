"""Deterministic fault injection and the recovery contract (the fault plan).

TaskStream's pitch is that recovered program structure lets the hardware
make better *dynamic* decisions; the same structure is what makes recovery
cheap when resources fail.  This module is the fault side of that claim: a
seeded, declarative :class:`FaultPlan` describes which faults a run should
suffer, and a :class:`FaultInjector` turns the plan into deterministic
per-event decisions that the execution models consult at well-defined
points.  The recovery *policies* live in the runtimes (dispatcher
re-dispatch, stream replay, multicast refetch, DRAM spike absorption);
this module only decides *when* a fault strikes and *when* the retry
budget is exhausted.

Fault kinds:

- **lane fail-stop** — ``LaneFailure(lane, cycle)``: the lane quiesces its
  in-flight task and goes dark at the given cycle; its queued work is
  re-dispatched onto surviving lanes.
- **transient task faults** — with probability ``task_fault_rate`` a task's
  execution dies mid-flight and is re-executed (timing-wise) after a
  cycle-denominated backoff.
- **NoC packet drop/corruption** — with probability ``noc_drop_rate`` a
  message is dropped at the link level and retransmitted; the same rate
  corrupts pipelined stream chunks end-to-end (replayed from the last
  acknowledged chunk) and multicast deliveries (refetched for exactly the
  dropped lanes, driven by the sharing set).
- **DRAM delay spikes** — with probability ``dram_spike_rate`` a DRAM
  response is delayed by ``dram_spike_cycles`` extra cycles; a spike at or
  beyond ``dram_timeout_cycles`` trips the memory watchdog.

Determinism contract: every decision draws from per-subsystem
:class:`~repro.util.rng.DeterministicRng` streams forked from the plan
seed, in simulation order — the DES itself is deterministic, so the same
(plan, config, workload) triple reproduces the same degraded run
bit-for-bit.  Decisions are *never* keyed on ``task_id`` (process-global,
not stable across runs).  With no plan the runtimes hold a shared
:data:`NULL_INJECTOR` whose ``enabled`` flag is False: no randomness is
consumed, no counters are written, no events are scheduled, and result
fingerprints are bit-identical to a fault-free build.

Exhausted retries raise :class:`UnrecoverableFault` naming the fault kind,
task, lane, and cycle — mirroring
:class:`~repro.sim.sanitize.ModelInvariantError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.util.rng import DeterministicRng
from repro.util.validate import check_in_range, check_non_negative

__all__ = [
    "LaneFailure",
    "RetryPolicy",
    "FaultPlan",
    "UnrecoverableFault",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_INJECTOR",
    "env_fault_plan",
]


class UnrecoverableFault(RuntimeError):
    """A fault survived every recovery attempt the plan allows.

    Attributes identify the loss precisely: ``fault`` (the fault kind,
    e.g. ``transient-task-fault`` or ``lane-fail-stop``), the affected
    ``task`` name, ``lane`` id and ``cycle`` — the same diagnostic shape
    as :class:`~repro.sim.sanitize.ModelInvariantError`.
    """

    def __init__(self, fault: str, message: str, *,
                 task: Optional[str] = None,
                 lane: Optional[int] = None,
                 cycle: Optional[float] = None) -> None:
        self.fault = fault
        self.task = task
        self.lane = lane
        self.cycle = cycle
        context = []
        if task is not None:
            context.append(f"task={task}")
        if lane is not None:
            context.append(f"lane={lane}")
        if cycle is not None:
            context.append(f"cycle={cycle:,.0f}")
        text = f"[{fault}] {message}"
        if context:
            text += f" ({', '.join(context)})"
        super().__init__(text)


@dataclass(frozen=True)
class LaneFailure:
    """One scheduled lane fail-stop: ``lane`` goes dark at ``cycle``."""

    lane: int
    cycle: float

    def __post_init__(self) -> None:
        check_non_negative("lane", self.lane)
        check_non_negative("cycle", self.cycle)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution: up to ``max_attempts`` tries per unit of
    recovery, each backed off by ``backoff_cycles * attempt`` cycles."""

    max_attempts: int = 3
    backoff_cycles: float = 64.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        check_non_negative("backoff_cycles", self.backoff_cycles)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded description of the faults a run suffers.

    Frozen and tuple-valued so it hashes and ``repr``s stably — the eval
    cache keys entries by the config repr, and two identical plans must be
    the same cache point.
    """

    #: Scheduled fail-stops, applied to both runtimes.
    lane_failures: tuple[LaneFailure, ...] = ()
    #: Per-task-execution probability of a transient mid-flight fault.
    task_fault_rate: float = 0.0
    #: Per-message drop probability (links, stream chunks, multicasts).
    noc_drop_rate: float = 0.0
    #: Per-request probability of a DRAM response delay spike.
    dram_spike_rate: float = 0.0
    #: Extra cycles a spiked DRAM response is delayed by.
    dram_spike_cycles: float = 500.0
    #: Memory watchdog: a spike this long (or longer) is unrecoverable.
    dram_timeout_cycles: float = 1e6
    #: Bounded-retry policy shared by all recovery paths.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Seed for the injector's forked decision streams.
    seed: int = 0

    def __post_init__(self) -> None:
        check_in_range("task_fault_rate", self.task_fault_rate, 0.0, 1.0)
        check_in_range("noc_drop_rate", self.noc_drop_rate, 0.0, 1.0)
        check_in_range("dram_spike_rate", self.dram_spike_rate, 0.0, 1.0)
        check_non_negative("dram_spike_cycles", self.dram_spike_cycles)
        check_non_negative("dram_timeout_cycles", self.dram_timeout_cycles)
        object.__setattr__(self, "lane_failures",
                           tuple(self.lane_failures))

    def is_empty(self) -> bool:
        """True when the plan injects nothing — the fault-free contract:
        an empty plan must be bit-identical to ``faults=None``."""
        return (not self.lane_failures
                and self.task_fault_rate == 0.0
                and self.noc_drop_rate == 0.0
                and self.dram_spike_rate == 0.0)

    # -- JSON round-trip ----------------------------------------------------

    def to_json(self) -> dict:
        """Plain-dict form, ``json.dump``-able (see docs/faults.md)."""
        return asdict(self)

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        """Build a plan from the dict form; unknown keys are rejected."""
        if not isinstance(data, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})")
        kwargs = dict(data)
        if "lane_failures" in kwargs:
            kwargs["lane_failures"] = tuple(
                LaneFailure(**f) for f in kwargs["lane_failures"])
        if "retry" in kwargs:
            kwargs["retry"] = RetryPolicy(**kwargs["retry"])
        return cls(**kwargs)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--faults`` / ``REPRO_FAULTS``
        format)."""
        with open(path) as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid fault plan {path!r}: {exc}")
        return cls.from_json(data)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps() + "\n")

    def with_retry(self, retry: RetryPolicy) -> "FaultPlan":
        return replace(self, retry=retry)


def env_fault_plan() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULTS`` (a JSON file path), if any."""
    path = os.environ.get("REPRO_FAULTS", "").strip()
    if not path:
        return None
    return FaultPlan.load(path)


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-event decisions.

    One injector is composed per machine and shared by every component;
    each fault kind draws from its own forked RNG stream so, e.g., DRAM
    traffic volume never perturbs the task-fault sequence.  Components
    guard every call site with ``if injector.enabled:`` — the disabled
    path does no work at all.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.enabled = not plan.is_empty()
        root = DeterministicRng("faults", plan.seed)
        self._task_rng = root.fork("task")
        self._noc_rng = root.fork("noc")
        self._stream_rng = root.fork("stream")
        self._mcast_rng = root.fork("mcast")
        self._dram_rng = root.fork("dram")

    # -- transient task faults ----------------------------------------------

    def task_fault_delay(self, task_name: str, lane_id: int, attempt: int,
                         nominal_cycles: float,
                         now: float) -> Optional[float]:
        """Decide whether execution attempt ``attempt`` of a task dies.

        Returns ``None`` (the attempt survives) or the cycles wasted by
        the dead attempt: a uniformly drawn fraction of the task's nominal
        compute time (it died mid-flight) plus the policy backoff scaled
        by the attempt number.  Raises :class:`UnrecoverableFault` when
        the retry budget is exhausted.
        """
        p = self.plan.task_fault_rate
        if p <= 0.0 or self._task_rng.random() >= p:
            return None
        if attempt >= self.plan.retry.max_attempts:
            raise UnrecoverableFault(
                "transient-task-fault",
                f"task {task_name} faulted on attempt {attempt} of "
                f"{self.plan.retry.max_attempts}; retry budget exhausted",
                task=task_name, lane=lane_id, cycle=now)
        progress = self._task_rng.random()
        return (progress * nominal_cycles
                + self.plan.retry.backoff_cycles * attempt)

    # -- NoC packet loss ----------------------------------------------------

    def noc_drops(self, kind: str, now: float) -> int:
        """How many consecutive times a message is dropped before getting
        through.  Raises when the loss burst exceeds the retry budget."""
        p = self.plan.noc_drop_rate
        if p <= 0.0:
            return 0
        drops = 0
        while self._noc_rng.random() < p:
            drops += 1
            if drops >= self.plan.retry.max_attempts:
                raise UnrecoverableFault(
                    "noc-packet-loss",
                    f"{kind} message dropped {drops} consecutive times; "
                    f"retry budget exhausted", cycle=now)
        return drops

    def stream_corrupt(self) -> bool:
        """Whether a delivered stream chunk arrives corrupt (end-to-end)."""
        p = self.plan.noc_drop_rate
        return p > 0.0 and self._stream_rng.random() < p

    def mcast_dropped(self, lanes: list) -> list:
        """Which multicast targets missed the delivery (subset of lanes)."""
        p = self.plan.noc_drop_rate
        if p <= 0.0:
            return []
        return [lane for lane in lanes if self._mcast_rng.random() < p]

    # -- DRAM delay spikes --------------------------------------------------

    def dram_spike(self, now: float) -> float:
        """Extra delay for one DRAM response (0.0 when it is on time).

        Raises when the spike reaches the memory watchdog threshold.
        """
        p = self.plan.dram_spike_rate
        if p <= 0.0 or self._dram_rng.random() >= p:
            return 0.0
        spike = self.plan.dram_spike_cycles
        if spike >= self.plan.dram_timeout_cycles:
            raise UnrecoverableFault(
                "dram-timeout",
                f"DRAM response delayed {spike:,.0f} cycles, at or past the "
                f"{self.plan.dram_timeout_cycles:,.0f}-cycle watchdog",
                cycle=now)
        return spike

    # -- lane fail-stop -----------------------------------------------------

    def lane_failed_by(self, lane_id: int, now: float) -> bool:
        """Whether the schedule has killed ``lane_id`` by cycle ``now``
        (pure — used by the barrier-phased static baseline)."""
        return any(f.lane == lane_id and now >= f.cycle
                   for f in self.plan.lane_failures)


class NullFaultInjector(FaultInjector):
    """The fault-free injector: ``enabled`` is False and stays False.

    Shares the components' call-site shape so machines always carry an
    injector; every hook is guarded on ``enabled``, so this object is
    never asked for a decision.
    """

    def __init__(self) -> None:
        super().__init__(FaultPlan())


#: Shared disabled injector for components constructed without a plan.
NULL_INJECTOR = NullFaultInjector()
