"""Shared-resource primitives: FIFO resources, bounded queues, bandwidth.

These are the contention points of the simulated machine. All waiting is
strictly FIFO so results are deterministic given a deterministic event
ordering (which :mod:`repro.sim.engine` guarantees via sequence numbers).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.engine import Environment, Event, SimulationError


class Resource:
    """A FIFO resource with integer capacity (e.g. stream-engine ports).

    Usage inside a process::

        grant = yield resource.acquire()
        try:
            yield env.timeout(10)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1: {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._acquire_name = f"acquire:{name}"
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of acquire requests waiting."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = Event(self.env, self._acquire_name)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)  # slot transfers directly
        else:
            self._in_use -= 1


class Store:
    """A bounded FIFO queue with blocking put/get — the pipelined-stream
    backbone.

    A producer task pushing chunks into a full Store blocks (backpressure);
    a consumer popping from an empty Store blocks. Capacity is in abstract
    items (the stream layer uses one item per chunk).

    A Store can be *closed* by the producer; after the queued items drain,
    pending and future ``get`` calls receive :data:`Store.END`.
    """

    END = object()

    def __init__(self, env: Environment, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1: {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._put_name = f"put:{name}"
        self._get_name = f"get:{name}"
        self._items: deque[Any] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._getters: deque[Event] = deque()
        self._closed = False
        self.total_put = 0

    @property
    def level(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    @property
    def closed(self) -> bool:
        """True once the producer has closed the stream."""
        return self._closed

    def put(self, item: Any) -> Event:
        """Return an event that fires when ``item`` has been enqueued."""
        if self._closed:
            raise SimulationError(f"put() on closed store {self.name!r}")
        done = Event(self.env, self._put_name)
        if self._getters:
            # Hand the item straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            self.total_put += 1
            done.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            self.total_put += 1
            done.succeed()
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Return an event that fires with the next item (or END)."""
        got = Event(self.env, self._get_name)
        if self._items:
            got.succeed(self._items.popleft())
            self._admit_waiting_putter()
        elif self._closed and not self._putters:
            got.succeed(Store.END)
        else:
            self._getters.append(got)
        return got

    def peek(self) -> Any:
        """The oldest buffered item without removing it (None if empty).

        Used by schedulers that inspect queue heads (e.g. prefetching the
        next task's inputs) without consuming the entry.
        """
        return self._items[0] if self._items else None

    def pop_newest(self) -> Any:
        """Remove and return the *newest* buffered item.

        The work-stealing path takes from the tail (the classic deque
        discipline: thieves steal the coldest work). Raises
        :class:`SimulationError` when nothing is buffered. Any waiting
        putter is admitted into the freed slot.
        """
        if not self._items:
            raise SimulationError(f"pop_newest() on empty store {self.name!r}")
        item = self._items.pop()
        self._admit_waiting_putter()
        return item

    def close(self) -> None:
        """Close the stream; drained getters receive END."""
        if self._closed:
            return
        self._closed = True
        # Only wake getters if nothing remains to deliver.
        if not self._items and not self._putters:
            while self._getters:
                self._getters.popleft().succeed(Store.END)

    def _admit_waiting_putter(self) -> None:
        if self._putters:
            done, item = self._putters.popleft()
            self._items.append(item)
            self.total_put += 1
            done.succeed()
        elif self._closed and not self._items:
            while self._getters:
                self._getters.popleft().succeed(Store.END)


class BandwidthServer:
    """A FIFO serialization server modeling a fixed-rate channel.

    Models links and DRAM channels: a transfer of ``nbytes`` occupies the
    channel for ``nbytes / bytes_per_cycle`` cycles, transfers are served
    in arrival order, and each completed transfer additionally experiences
    a fixed pipe ``latency``. This is the standard "rate + latency" channel
    abstraction; queueing delay under contention is emergent.

    The implementation is O(1) per transfer: we track when the channel next
    becomes free instead of simulating per-cycle occupancy.
    """

    def __init__(self, env: Environment, bytes_per_cycle: float,
                 latency: float = 0.0, name: str = "") -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError(
                f"bytes_per_cycle must be positive: {bytes_per_cycle}")
        if latency < 0:
            raise SimulationError(f"latency must be non-negative: {latency}")
        self.env = env
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.name = name
        self._next_free = 0.0
        self.total_bytes = 0
        self.total_transfers = 0
        self._busy_cycles = 0.0

    def transfer(self, nbytes: float) -> Event:
        """Return an event firing when ``nbytes`` have been delivered."""
        return self.env.timeout(self.reserve(nbytes) - self.env.now)

    def reserve(self, nbytes: float) -> float:
        """Book a transfer and return its absolute delivery time.

        Identical channel bookkeeping to :meth:`transfer` without creating
        an event — the closed-form NoC/DRAM fast paths use this and place
        their own completion slot at the returned time.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        start = self._next_free
        now = self.env.now
        if now > start:
            start = now
        service = nbytes / self.bytes_per_cycle
        finish = start + service
        self._next_free = finish
        self._busy_cycles += service
        self.total_bytes += nbytes
        self.total_transfers += 1
        return finish + self.latency

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time busy over ``elapsed`` (default: env.now)."""
        horizon = self.env.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_cycles / horizon)

    @property
    def backlog_cycles(self) -> float:
        """Cycles until the channel would go idle if no more work arrives."""
        return max(0.0, self._next_free - self.env.now)
