"""Hardware statistic counters collected during a simulation run.

Every simulated component increments named counters on a shared
:class:`Counters` object; the evaluation harness reads them after the run.
Counter names are dotted paths (``dram.bytes``, ``lane3.busy_cycles``) so
reports can aggregate by prefix.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.sim.engine import Environment


class Counters:
    """A bag of named numeric counters plus derived-metric helpers."""

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._values[name] = self._values.get(name, 0.0) + amount

    def set_max(self, name: str, value: float) -> None:
        """Keep the maximum observed value under ``name``."""
        if value > self._values.get(name, float("-inf")):
            self._values[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        """Read a counter (0 by default)."""
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def names(self) -> list[str]:
        """Sorted counter names."""
        return sorted(self._values)

    def items(self) -> Iterator[tuple[str, float]]:
        """Sorted (name, value) pairs."""
        for name in self.names():
            yield name, self._values[name]

    def sum_prefix(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self._values.items() if k.startswith(prefix))

    def by_prefix(self, prefix: str) -> dict[str, float]:
        """All counters under a prefix, keyed by the remainder of the name."""
        plen = len(prefix)
        return {k[plen:]: v for k, v in self._values.items()
                if k.startswith(prefix)}

    def merge(self, other: "Counters") -> None:
        """Add all of ``other``'s counters into this bag."""
        for name, value in other._values.items():
            self.add(name, value)

    def as_dict(self) -> dict[str, float]:
        """Copy of the raw counter mapping."""
        return dict(self._values)

    def snapshot(self) -> tuple[tuple[str, float], ...]:
        """Canonical sorted ``(name, value)`` tuple of every counter.

        This is the fingerprint form: two runs are statistically identical
        exactly when their snapshots (and headline stats) compare equal.
        """
        return tuple(sorted(self._values.items()))

    def render(self, prefix: str = "") -> str:
        """Readable multi-line dump, optionally filtered by prefix."""
        rows = [(k, v) for k, v in self.items() if k.startswith(prefix)]
        if not rows:
            return "(no counters)"
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v:,.1f}" for k, v in rows)


class UtilizationTracker:
    """Tracks busy time of a component across possibly-overlapping intervals.

    Components call :meth:`busy` with durations; because our components
    serialize their own busy periods (FIFO servers), simple accumulation is
    exact. The tracker also remembers the last activity time, which the
    load-imbalance metric uses as per-lane finish time.
    """

    def __init__(self, env: Environment, counters: Counters,
                 name: str) -> None:
        self.env = env
        self.counters = counters
        self.name = name
        self._busy_key = f"{name}.busy_cycles"
        self._busy = 0.0
        self._last_active: Optional[float] = None

    def busy(self, duration: float) -> None:
        """Record ``duration`` cycles of busy time ending now."""
        if duration < 0:
            raise ValueError(f"negative busy duration: {duration}")
        self._busy += duration
        self._last_active = self.env.now
        self.counters.add(self._busy_key, duration)

    @property
    def busy_cycles(self) -> float:
        """Total accumulated busy cycles."""
        return self._busy

    @property
    def last_active(self) -> Optional[float]:
        """Simulated time of the most recent recorded activity."""
        return self._last_active

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction relative to ``elapsed`` (default env.now)."""
        horizon = self.env.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy / horizon)
