"""Execution tracing: timeline records and Chrome-trace export.

A :class:`Tracer` collects typed spans (task executions, configurations,
phases) and instants (multicasts, steals) during a simulation run. The
collected timeline exports to the Chrome ``about:tracing`` / Perfetto JSON
format, giving a zoomable lane-by-lane view of a run — the tool one
actually uses to see pipelined tasks overlapping.

Tracing is off by default; a disabled tracer's record methods are no-ops
so the simulator pays nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timeline record. ``end`` is None for instant events."""

    kind: str
    name: str
    lane: str
    start: float
    end: Optional[float] = None
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length (0 for instants)."""
        return 0.0 if self.end is None else self.end - self.start


class Tracer:
    """Collects trace events during one simulation run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def span(self, kind: str, name: str, lane: str, start: float,
             end: float, **meta: Any) -> None:
        """Record a closed interval on a lane's timeline."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span ends before it starts: {name}")
        self.events.append(TraceEvent(kind, name, lane, start, end,
                                      dict(meta)))

    def instant(self, kind: str, name: str, lane: str, at: float,
                **meta: Any) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(kind, name, lane, at, None,
                                      dict(meta)))

    # -- queries -------------------------------------------------------------

    def by_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in record order."""
        return [e for e in self.events if e.kind == kind]

    def lanes(self) -> list[str]:
        """All lane names observed, sorted."""
        return sorted({e.lane for e in self.events})

    def busy_time(self, lane: str, kind: str = "task") -> float:
        """Total span time of a kind on one lane."""
        return sum(e.duration for e in self.events
                   if e.lane == lane and e.kind == kind)

    def summarize(self) -> dict[str, int]:
        """Event counts per kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome tracing JSON object (load in chrome://tracing/Perfetto).

        Lanes become thread ids; cycle timestamps are emitted as
        microseconds (1 cycle = 1 us) so the UI's time axis is readable.
        """
        records = []
        tids = {lane: i for i, lane in enumerate(self.lanes())}
        for event in self.events:
            base = {
                "name": event.name,
                "cat": event.kind,
                "pid": 0,
                "tid": tids[event.lane],
                "ts": event.start,
                "args": event.meta,
            }
            if event.end is None:
                base["ph"] = "i"
                base["s"] = "t"
            else:
                base["ph"] = "X"
                base["dur"] = event.duration
            records.append(base)
        thread_names = [
            {"name": "thread_name", "ph": "M", "pid": 0,
             "tid": tid, "args": {"name": lane}}
            for lane, tid in tids.items()
        ]
        return {"traceEvents": thread_names + records,
                "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Write the Chrome trace JSON to a file."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


class NullTracer(Tracer):
    """A tracer that records nothing (the default)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)
