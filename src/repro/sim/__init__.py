"""Discrete-event simulation kernel.

A small, dependency-free process-based DES in the style of SimPy: simulated
hardware components are generator coroutines that ``yield`` timeouts,
events, resource requests, and queue operations. The kernel provides:

- :class:`Environment` — the clock and event loop.
- :class:`Event` / :class:`Process` — one-shot completion events and
  coroutine processes.
- :class:`Timeout` — delay by N cycles.
- :class:`Resource` — FIFO resource with integer capacity.
- :class:`Store` — bounded FIFO queue with blocking put/get (backpressure).
- :class:`BandwidthServer` — FIFO serialization server for links/DRAM
  channels (service time proportional to bytes transferred).
- :class:`Counters` — named statistic counters with utilization tracking.

Time is measured in integer-ish *cycles* (floats are permitted so rates
like 2.5 bytes/cycle work; the kernel orders events by time then FIFO).
"""

from repro.sim.engine import (
    Environment,
    Event,
    Process,
    Timeout,
    Interrupt,
    SimulationError,
    DeadlockError,
    total_events_processed,
)
from repro.sim.fastengine import (
    FastEnvironment,
    engine_name,
    make_environment,
)
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    LaneFailure,
    NullFaultInjector,
    RetryPolicy,
    UnrecoverableFault,
    env_fault_plan,
)
from repro.sim.resources import Resource, Store, BandwidthServer
from repro.sim.sanitize import (
    ModelInvariantError,
    NullSanitizer,
    Sanitizer,
    env_sanitize_requested,
)
from repro.sim.stats import Counters, UtilizationTracker
from repro.sim.trace import Tracer, NullTracer, TraceEvent

__all__ = [
    "Environment",
    "FastEnvironment",
    "engine_name",
    "make_environment",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "DeadlockError",
    "total_events_processed",
    "Resource",
    "Store",
    "BandwidthServer",
    "Counters",
    "UtilizationTracker",
    "Tracer",
    "NullTracer",
    "TraceEvent",
    "Sanitizer",
    "NullSanitizer",
    "ModelInvariantError",
    "env_sanitize_requested",
    "FaultPlan",
    "LaneFailure",
    "RetryPolicy",
    "FaultInjector",
    "NullFaultInjector",
    "UnrecoverableFault",
    "env_fault_plan",
]
