"""Code-version digests and cache locations shared by every on-disk cache.

Two caches key entries by "what code produced this": the evaluation result
cache (:mod:`repro.eval.cache`) and the structure cache
(:mod:`repro.graph.cache`). Both live above this leaf module, so the digest
of the ``repro`` source tree and the resolution of the cache root directory
are defined here once, below everything. Cache schemas reach these through
the store's key model (:mod:`repro.store.keys`), which re-exports them —
this module is the physical home (the leaf the store builds on), that one
is the front door.

The digest covers *every* ``repro`` source file — simulator, workloads,
the structure layer, the harness — so any edit invalidates every cached
entry rather than silently serving stale numbers. This is the conservative
choice: a cache must never survive a change that could alter results.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path
from typing import Optional

from repro.util.fingerprint import stable_hash


def source_files(package_root: Optional[Path] = None) -> list[Path]:
    """Every ``repro`` source file covered by the code-version digest.

    Defaults to the installed ``repro`` package root; tests pass a synthetic
    tree to prove specific subpackages (e.g. ``repro.machine`` or
    ``repro.graph``) participate in cache invalidation.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parents[1]
    return sorted(package_root.rglob("*.py"))


def digest_tree(package_root: Optional[Path] = None) -> str:
    """Digest of every source file under ``package_root`` (path + bytes)."""
    if package_root is None:
        package_root = Path(__file__).resolve().parents[1]
    digest_parts = []
    for source in source_files(package_root):
        digest_parts.append(source.relative_to(package_root).as_posix())
        digest_parts.append(source.read_bytes())
    return stable_hash(*digest_parts)


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file, stable within one checkout.

    Any edit to the simulator — including the :mod:`repro.machine`
    composition layer and the :mod:`repro.graph` structure layer — the
    workloads, or the harness changes this value and thereby invalidates
    every on-disk cache entry.
    """
    return digest_tree()


def default_cache_root() -> Path:
    """Resolve the on-disk cache directory.

    ``.repro-cache/`` at the repository root (next to ``pyproject.toml``),
    or ``~/.cache/repro-eval`` for installed copies; the
    ``REPRO_CACHE_DIR`` environment variable overrides both.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "pyproject.toml").exists():
        return repo_root / ".repro-cache"
    return Path.home() / ".cache" / "repro-eval"
