"""Summary-statistics helpers used by the evaluation harness.

Pure functions over sequences of numbers; no simulator state. Kept separate
from :mod:`repro.sim.stats` (which holds per-run hardware counters).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of a non-empty sequence of positive numbers.

    Speedup figures report geomeans, following the paper's convention for
    summarizing per-workload speedups.
    """
    if not values:
        raise ValueError("geomean of empty sequence")
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population CV (stddev / mean); 0 for perfectly balanced values.

    Used as the load-imbalance metric: CV of per-lane busy cycles.
    """
    m = mean(values)
    if m == 0:
        return 0.0
    var = sum((v - m) ** 2 for v in values) / len(values)
    return math.sqrt(var) / m


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100 * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Clamp: float interpolation may land an ulp outside [min, max].
    return min(max(value, ordered[0]), ordered[-1])


class Histogram:
    """A tiny fixed-bucket histogram for distribution summaries in reports."""

    def __init__(self, bucket_width: float) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.bucket_width = bucket_width
        self._counts: dict[int, int] = {}
        self._n = 0

    def add(self, value: float) -> None:
        """Record one observation."""
        bucket = int(value // self.bucket_width)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self._n += 1

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for v in values:
            self.add(v)

    @property
    def total(self) -> int:
        """Number of recorded observations."""
        return self._n

    def buckets(self) -> list[tuple[float, float, int]]:
        """Sorted ``(lo, hi, count)`` triples for non-empty buckets."""
        out = []
        for bucket in sorted(self._counts):
            lo = bucket * self.bucket_width
            out.append((lo, lo + self.bucket_width, self._counts[bucket]))
        return out

    def render(self, width: int = 40) -> str:
        """ASCII rendering, one line per bucket."""
        rows = self.buckets()
        if not rows:
            return "(empty histogram)"
        peak = max(count for _, _, count in rows)
        lines = []
        for lo, hi, count in rows:
            bar = "#" * max(1, round(count / peak * width))
            lines.append(f"[{lo:>10.1f}, {hi:>10.1f}) {count:>8} {bar}")
        return "\n".join(lines)
