"""Deterministic random number generation for reproducible experiments.

Every stochastic component in the simulator (workload generators, the
annealing mapper, randomized dispatch policies) draws from a
:class:`DeterministicRng` seeded from the experiment configuration, so a
given configuration always produces the same simulated machine behaviour.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def _stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary hashable parts, stable across runs.

    Python's builtin ``hash`` is salted per-process for strings, so we use
    SHA-256 over the repr of the parts instead.
    """
    digest = hashlib.sha256("|".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng:
    """A seeded RNG with convenience helpers used across the project.

    Wraps :class:`random.Random` rather than subclassing it so the public
    surface stays small and intentional.
    """

    def __init__(self, *seed_parts: object) -> None:
        self._seed = _stable_seed(*seed_parts)
        self._rng = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The derived 64-bit seed (useful for logging)."""
        return self._seed

    def fork(self, *extra_parts: object) -> "DeterministicRng":
        """Create an independent child RNG keyed by additional parts.

        Forking lets subsystems draw independently: consuming numbers in one
        subsystem does not perturb another subsystem's sequence.
        """
        return DeterministicRng(self._seed, *extra_parts)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi)``."""
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` (inclusive, like random.randint)."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._rng.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._rng.expovariate(rate)

    def zipf_sizes(self, count: int, alpha: float, max_size: int) -> list[int]:
        """Generate ``count`` integer sizes following a truncated Zipf law.

        Used by workload generators to create the skewed work distributions
        (e.g. power-law row lengths) that motivate work-aware load balancing.
        ``alpha`` controls skew: larger alpha concentrates work in few items.
        """
        if count <= 0:
            return []
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        # Inverse-CDF sampling over ranks 1..max_size.
        weights = [1.0 / (rank**alpha) for rank in range(1, max_size + 1)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        sizes = []
        for _ in range(count):
            u = self._rng.random()
            # Binary search the CDF.
            lo, hi = 0, len(cdf) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cdf[mid] < u:
                    lo = mid + 1
                else:
                    hi = mid
            sizes.append(lo + 1)
        return sizes

    def power_law_degrees(self, n: int, alpha: float, min_deg: int,
                          max_deg: int) -> list[int]:
        """Degree sequence for a synthetic power-law graph."""
        span = max(max_deg - min_deg, 0) + 1
        raw = self.zipf_sizes(n, alpha, span)
        return [min_deg + r - 1 for r in raw]

    def pick_weighted(self, items: Iterable[T], weights: Iterable[float]) -> T:
        """Choose one item with probability proportional to its weight."""
        items = list(items)
        weights = list(weights)
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length, non-empty")
        return self._rng.choices(items, weights=weights, k=1)[0]
