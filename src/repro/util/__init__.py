"""Shared utilities: deterministic RNG, validation helpers, small math."""

from repro.util.rng import DeterministicRng
from repro.util.fingerprint import (
    comparison_fingerprint,
    result_fingerprint,
    result_stats,
    stable_hash,
)
from repro.util.validate import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_power_of_two,
)
from repro.util.stats import (
    geomean,
    mean,
    coefficient_of_variation,
    percentile,
    Histogram,
)

__all__ = [
    "DeterministicRng",
    "stable_hash",
    "result_stats",
    "result_fingerprint",
    "comparison_fingerprint",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_power_of_two",
    "geomean",
    "mean",
    "coefficient_of_variation",
    "percentile",
    "Histogram",
]
