"""Stable hashing and run-result fingerprints — the determinism contract.

The evaluation harness promises that a given (workload, machine config,
code version) point always produces bit-identical statistics: every
stochastic component draws from :mod:`repro.util.rng`, which seeds from the
configuration rather than from process state. This module turns that
promise into something checkable and cacheable:

- :func:`stable_hash` — a SHA-256 digest over canonical reprs, identical
  across processes and interpreter restarts (unlike builtin ``hash``).
- :func:`result_stats` / :func:`result_fingerprint` — the canonical tuple
  of everything an experiment reads from a :class:`RunResult`, and its
  digest. Two runs are "bit-identical" exactly when these match.
- :func:`comparison_fingerprint` — the same for a Delta-vs-static pair.

The on-disk result cache stores fingerprints next to payloads so a
corrupted or stale entry is detected on load, and the determinism tests
assert fingerprint equality instead of hand-picking fields.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.result import RunResult
    from repro.eval.runner import Comparison
    from repro.workloads.base import Workload

_SCALAR_TYPES = (bool, int, float, str, bytes, type(None))


def stable_hash(*parts: object) -> str:
    """SHA-256 hex digest over the reprs of ``parts``.

    ``repr`` of floats is exact (shortest round-trip form), so two floats
    hash equal iff they are bit-identical; builtin ``hash`` is avoided
    because string hashing is salted per process.
    """
    payload = "\x1f".join(repr(p) for p in parts)
    return hashlib.sha256(payload.encode()).hexdigest()


def workload_cache_key(workload: "Workload") -> str:
    """Stable identity of a workload instance.

    Captures the class, the display name, every scalar constructor-style
    attribute (sizes, seeds, rows-per-task, ...), and the T2 description
    row. Generated inputs themselves are *not* hashed: they are a
    deterministic function of these parameters (the determinism contract).
    Shared by the evaluation result cache and the structure cache, which
    both key entries by (code version, workload identity, ...).
    """
    cls = type(workload)
    scalars = sorted(
        (k, v) for k, v in vars(workload).items()
        if isinstance(v, _SCALAR_TYPES))
    return stable_hash(f"{cls.__module__}.{cls.__qualname__}",
                       workload.name, scalars,
                       sorted(workload.describe().items()))


def result_stats(result: "RunResult") -> tuple:
    """Canonical tuple of every statistic the harness reads from a run.

    Covers cycles, task count, the per-lane busy vector, and the full
    counter bag (DRAM/NoC bytes, multicast and pipeline counters, ...).
    Excludes ``state`` (verified separately against the reference
    implementation) and ``trace`` (absent in evaluation runs).
    """
    return (
        result.machine,
        result.program_name,
        float(result.cycles),
        int(result.tasks_executed),
        tuple(float(b) for b in result.lane_busy),
        result.counters.snapshot(),
    )


def result_fingerprint(result: "RunResult") -> str:
    """Digest of :func:`result_stats` — equal iff stats are bit-identical."""
    return stable_hash(result_stats(result))


def comparison_fingerprint(comparison: "Comparison") -> str:
    """Digest of both sides of a Delta-vs-static comparison."""
    return stable_hash(comparison.workload,
                       result_stats(comparison.delta),
                       result_stats(comparison.static))
