"""Small validation helpers used by configuration dataclasses.

Configuration errors should fail loudly at construction time with a message
naming the offending field, not deep inside the simulator.
"""

from __future__ import annotations

from typing import Any


class ConfigError(ValueError):
    """Raised when a configuration value is invalid."""


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Require ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ConfigError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_type(name: str, value: Any, expected: type) -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        raise ConfigError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )


def check_power_of_two(name: str, value: int) -> None:
    """Require ``value`` to be a positive power of two (bank counts etc.)."""
    if value <= 0 or value & (value - 1) != 0:
        raise ConfigError(f"{name} must be a power of two, got {value!r}")
