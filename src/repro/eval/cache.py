"""On-disk result cache for the evaluation harness.

A cache entry is one pickled :class:`~repro.eval.runner.Comparison` keyed
by a stable hash of everything that determines its value:

- the workload's identity (class, name, scalar parameters, T2 description);
- both :class:`~repro.arch.config.MachineConfig` instances, including the
  seed (frozen dataclasses with exact-float reprs);
- whether functional verification ran;
- the *code version* — a digest of every ``repro`` source file — so any
  change to the simulator invalidates every entry rather than silently
  serving stale numbers;
- the cache format version.

This keying is sound because of the determinism contract (see
:mod:`repro.util.fingerprint`): a point's result is a pure function of the
key's inputs. Each entry stores its comparison fingerprint alongside the
payload and is re-verified on load, so a corrupted or tampered entry is
dropped and recomputed instead of poisoning a sweep.

The default cache root is ``.repro-cache/`` at the repository root (next
to ``pyproject.toml``), or ``~/.cache/repro-eval`` for installed copies;
``REPRO_CACHE_DIR`` overrides both.
"""

from __future__ import annotations

import functools
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.util.fingerprint import comparison_fingerprint, stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.config import MachineConfig
    from repro.eval.runner import Comparison
    from repro.workloads.base import Workload

#: Bump when the entry layout changes; old entries are simply never hit.
CACHE_FORMAT = 1

_SCALAR_TYPES = (bool, int, float, str, bytes, type(None))


def source_files(package_root: Optional[Path] = None) -> list[Path]:
    """Every ``repro`` source file covered by the code-version digest.

    Defaults to the installed ``repro`` package root; tests pass a synthetic
    tree to prove specific subpackages (e.g. ``repro.machine``) participate
    in cache invalidation.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parents[1]
    return sorted(package_root.rglob("*.py"))


def digest_tree(package_root: Optional[Path] = None) -> str:
    """Digest of every source file under ``package_root`` (path + bytes)."""
    if package_root is None:
        package_root = Path(__file__).resolve().parents[1]
    digest_parts = []
    for source in source_files(package_root):
        digest_parts.append(source.relative_to(package_root).as_posix())
        digest_parts.append(source.read_bytes())
    return stable_hash(*digest_parts)


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file, stable within one checkout.

    Any edit to the simulator — including the :mod:`repro.machine`
    composition layer — the workloads, or the harness changes this value
    and thereby invalidates the whole cache — the conservative choice: a
    cache must never survive a change that could alter results.
    """
    return digest_tree()


def workload_cache_key(workload: "Workload") -> str:
    """Stable identity of a workload instance.

    Captures the class, the display name, every scalar constructor-style
    attribute (sizes, seeds, rows-per-task, ...), and the T2 description
    row. Generated inputs themselves are *not* hashed: they are a
    deterministic function of these parameters (the determinism contract).
    """
    cls = type(workload)
    scalars = sorted(
        (k, v) for k, v in vars(workload).items()
        if isinstance(v, _SCALAR_TYPES))
    return stable_hash(f"{cls.__module__}.{cls.__qualname__}",
                       workload.name, scalars,
                       sorted(workload.describe().items()))


def default_cache_root() -> Path:
    """Resolve the cache directory (see module docstring)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "pyproject.toml").exists():
        return repo_root / ".repro-cache"
    return Path.home() / ".cache" / "repro-eval"


class EvalCache:
    """Content-addressed store of evaluation comparisons.

    Tracks ``hits`` / ``misses`` / ``stores`` so callers (CLI, tests) can
    report cache effectiveness; a corrupted entry counts as a miss.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keying ----------------------------------------------------------

    def key_for(self, workload: "Workload",
                delta_config: "MachineConfig",
                static_config: "MachineConfig",
                verify: bool = True) -> str:
        """Cache key for one (workload, machine pair, verify) point."""
        return stable_hash(CACHE_FORMAT, code_version(),
                           workload_cache_key(workload),
                           delta_config, static_config, verify)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- storage ---------------------------------------------------------

    def get(self, key: str) -> Optional["Comparison"]:
        """Load an entry, or None on miss/corruption (entry then dropped)."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            comparison = entry["comparison"]
            if entry["fingerprint"] != comparison_fingerprint(comparison):
                raise ValueError("fingerprint mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated pickle, foreign object, failed fingerprint: drop the
            # entry and let the caller recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return comparison

    def put(self, key: str, comparison: "Comparison") -> None:
        """Store an entry atomically (rename over a temp file)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = {"fingerprint": comparison_fingerprint(comparison),
                   "comparison": comparison}
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def stats(self) -> str:
        """One-line hit/miss summary for CLI output."""
        return (f"cache {self.root}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored, "
                f"{len(self)} entries")
