"""The evaluation result cache: a typed schema over :mod:`repro.store`.

A cache entry is one pickled :class:`~repro.eval.runner.Comparison` keyed
by a stable hash of everything that determines its value:

- the workload's identity (class, name, scalar parameters, T2 description);
- both :class:`~repro.arch.config.MachineConfig` instances, including the
  seed (frozen dataclasses with exact-float reprs);
- whether functional verification ran;
- the *code version* — a digest of every ``repro`` source file — so any
  change to the simulator invalidates every entry rather than silently
  serving stale numbers;
- the cache format version.

This keying is sound because of the determinism contract (see
:mod:`repro.util.fingerprint`): a point's result is a pure function of the
key's inputs. Each entry stores its comparison fingerprint alongside the
payload and is re-verified on load, so a corrupted or tampered entry is
discarded and recomputed instead of poisoning a sweep.

Storage — sharding, atomic publish, per-shard locking, the size-cap
eviction policy, and the ``cache.*`` metrics — is the shared
:class:`~repro.store.sharded.ShardedStore`'s job; this module only
defines what an entry *means*: the ``"eval"`` namespace, the pickle
layout, and fingerprint verification. Entries live under
``<cache root>/eval/<shard>/<key>.pkl``.

The default cache root is ``.repro-cache/`` at the repository root (next
to ``pyproject.toml``), or ``~/.cache/repro-eval`` for installed copies;
``REPRO_CACHE_DIR`` overrides both. The code-version digest, cache-root
resolution, and workload identity key form the store's key model
(:mod:`repro.store.keys`, primitives in :mod:`repro.util.codebase` /
:mod:`repro.util.fingerprint`); this module re-exports them under their
historical names. Direct imports of those names from here are deprecated
in favour of ``repro.store.keys`` (the shims stay until a major format
bump).
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.store.keys import (  # noqa: F401  (re-exported compat names)
    code_version,
    default_cache_root,
    digest_tree,
    entry_key,
    source_files,
    stable_hash,
    workload_cache_key,
)
from repro.store.sharded import ShardedStore
from repro.util.fingerprint import comparison_fingerprint  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.config import MachineConfig
    from repro.eval.runner import Comparison
    from repro.workloads.base import Workload

#: Bump when the entry layout changes; old entries are simply never hit.
CACHE_FORMAT = 2

#: The store namespace comparison entries live in.
NAMESPACE = "eval"


def comparison_key(workload: "Workload",
                   delta_config: "MachineConfig",
                   static_config: "MachineConfig",
                   verify: bool = True) -> str:
    """Cache key for one (workload, machine pair, verify) point.

    Module-level so the parallel executor can coalesce duplicate
    in-flight points by key even when no cache is attached. Composed from
    this module's (re-exported) key-model names, so tests can monkeypatch
    ``code_version`` here to prove invalidation.
    """
    return stable_hash(CACHE_FORMAT, code_version(),
                       workload_cache_key(workload),
                       delta_config, static_config, verify)


class EvalCache:
    """Content-addressed store of evaluation comparisons.

    Tracks ``hits`` / ``misses`` / ``stores`` locally so callers (CLI,
    tests) can report this cache's effectiveness — a corrupted entry
    counts as a miss — and mirrors every operation onto the shared
    store's ``cache.*`` metrics sink.
    """

    def __init__(self, root: Optional[Path] = None, *,
                 store: Optional[ShardedStore] = None) -> None:
        self.store = store if store is not None else ShardedStore(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def root(self) -> Path:
        return self.store.root

    # -- keying ----------------------------------------------------------

    def key_for(self, workload: "Workload",
                delta_config: "MachineConfig",
                static_config: "MachineConfig",
                verify: bool = True) -> str:
        """Cache key for one (workload, machine pair, verify) point."""
        return comparison_key(workload, delta_config, static_config, verify)

    def _path(self, key: str) -> Path:
        return self.store.path_for(NAMESPACE, key)

    # -- storage ---------------------------------------------------------

    def get(self, key: str) -> Optional["Comparison"]:
        """Load an entry, or None on miss/corruption (entry then dropped)."""
        payload = self.store.read(NAMESPACE, key)
        if payload is None:
            self._miss()
            return None
        try:
            entry = pickle.loads(payload)
            comparison = entry["comparison"]
            if entry["fingerprint"] != comparison_fingerprint(comparison):
                raise ValueError("fingerprint mismatch")
        except Exception as exc:
            # Truncated pickle, foreign object, failed fingerprint: discard
            # the entry and let the caller recompute.
            self.store.discard_corrupt(NAMESPACE, key, repr(exc))
            self._miss()
            return None
        self.hits += 1
        self.store.metrics.add("hits")
        return comparison

    def _miss(self) -> None:
        self.misses += 1
        self.store.metrics.add("misses")

    def put(self, key: str, comparison: "Comparison") -> None:
        """Store an entry (atomic publish + size-budget enforcement)."""
        payload = pickle.dumps(
            {"fingerprint": comparison_fingerprint(comparison),
             "comparison": comparison},
            protocol=pickle.HIGHEST_PROTOCOL)
        self.store.write(NAMESPACE, key, payload)
        self.stores += 1

    def clear(self) -> int:
        """Delete every comparison entry; returns how many were removed."""
        return self.store.clear(NAMESPACE)

    def __len__(self) -> int:
        return self.store.entry_count(NAMESPACE)

    def stats(self) -> str:
        """One-line hit/miss summary for CLI output."""
        return (f"cache {self.root}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored, "
                f"{len(self)} entries")
