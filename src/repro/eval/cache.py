"""On-disk result cache for the evaluation harness.

A cache entry is one pickled :class:`~repro.eval.runner.Comparison` keyed
by a stable hash of everything that determines its value:

- the workload's identity (class, name, scalar parameters, T2 description);
- both :class:`~repro.arch.config.MachineConfig` instances, including the
  seed (frozen dataclasses with exact-float reprs);
- whether functional verification ran;
- the *code version* — a digest of every ``repro`` source file — so any
  change to the simulator invalidates every entry rather than silently
  serving stale numbers;
- the cache format version.

This keying is sound because of the determinism contract (see
:mod:`repro.util.fingerprint`): a point's result is a pure function of the
key's inputs. Each entry stores its comparison fingerprint alongside the
payload and is re-verified on load, so a corrupted or tampered entry is
dropped and recomputed instead of poisoning a sweep.

The default cache root is ``.repro-cache/`` at the repository root (next
to ``pyproject.toml``), or ``~/.cache/repro-eval`` for installed copies;
``REPRO_CACHE_DIR`` overrides both. The code-version digest, cache-root
resolution, and workload identity key are shared with the structure cache
(:mod:`repro.graph.cache`) and live in :mod:`repro.util.codebase` /
:mod:`repro.util.fingerprint`; this module re-exports them under their
historical names.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.util.codebase import (  # noqa: F401  (re-exported compat names)
    code_version,
    default_cache_root,
    digest_tree,
    source_files,
)
from repro.util.fingerprint import (  # noqa: F401  (re-exported compat name)
    comparison_fingerprint,
    stable_hash,
    workload_cache_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.config import MachineConfig
    from repro.eval.runner import Comparison
    from repro.workloads.base import Workload

#: Bump when the entry layout changes; old entries are simply never hit.
CACHE_FORMAT = 1


class EvalCache:
    """Content-addressed store of evaluation comparisons.

    Tracks ``hits`` / ``misses`` / ``stores`` so callers (CLI, tests) can
    report cache effectiveness; a corrupted entry counts as a miss.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keying ----------------------------------------------------------

    def key_for(self, workload: "Workload",
                delta_config: "MachineConfig",
                static_config: "MachineConfig",
                verify: bool = True) -> str:
        """Cache key for one (workload, machine pair, verify) point."""
        return stable_hash(CACHE_FORMAT, code_version(),
                           workload_cache_key(workload),
                           delta_config, static_config, verify)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- storage ---------------------------------------------------------

    def get(self, key: str) -> Optional["Comparison"]:
        """Load an entry, or None on miss/corruption (entry then dropped)."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            comparison = entry["comparison"]
            if entry["fingerprint"] != comparison_fingerprint(comparison):
                raise ValueError("fingerprint mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated pickle, foreign object, failed fingerprint: drop the
            # entry and let the caller recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return comparison

    def put(self, key: str, comparison: "Comparison") -> None:
        """Store an entry atomically (rename over a temp file)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = {"fingerprint": comparison_fingerprint(comparison),
                   "comparison": comparison}
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def stats(self) -> str:
        """One-line hit/miss summary for CLI output."""
        return (f"cache {self.root}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored, "
                f"{len(self)} entries")
