"""EXPERIMENTS.md generator: run every experiment, record paper-vs-measured.

``python -m repro.eval.report`` regenerates EXPERIMENTS.md at the repo
root (or a path given as argv[1]). Each experiment section contains the
paper's claim (as reconstructed in DESIGN.md — the source text was
abstract-only), the measured result, and the rendered table/figure.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.eval.experiments import (
    ABLATION_STEPS,
    a1_design_sensitivity,
    f1_headline_speedup,
    f2_ablation,
    f3_lane_scaling,
    f4_load_balance,
    f5_traffic,
    f6_granularity,
    f7_policies,
    f8_energy,
    f9_extensions,
    f10_software_runtime,
    r1_resilience,
    t1_machine_config,
    t2_workload_table,
    t3_area,
)
from repro.eval.runner import suite_geomean
from repro.util.stats import geomean

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Regenerate with: `python -m repro.eval.report` (or run the per-experiment
benchmarks: `pytest benchmarks/ --benchmark-only`).

**Fidelity note.** The source text available for this reproduction was the
paper's abstract (see DESIGN.md), so "paper" rows quote the abstract's
concrete claims where they exist and otherwise state the *expected shape*
implied by the mechanism. The simulator is cycle-approximate; compare
shapes and ratios, not absolute cycle counts.
"""


def _section(experiment_id: str, title: str, claim: str, measured: str,
             body: str) -> str:
    return (f"\n## {experiment_id}: {title}\n\n"
            f"- **Paper / expected:** {claim}\n"
            f"- **Measured:** {measured}\n\n"
            f"```\n{body}\n```\n")


def _harness_timing(jobs: Optional[int]) -> str:
    """Measure serial vs parallel vs warm-cache wall-clock on the suite.

    Run with the real evaluation suite so the recorded numbers are the
    ones a sweep actually pays. Parallel numbers depend on the host's
    core count, which is recorded alongside.
    """
    from repro.eval.cache import EvalCache
    from repro.eval.parallel import run_suite_parallel
    from repro.eval.runner import run_suite, simulation_count

    par_jobs = jobs if jobs and jobs > 1 else 4
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    run_suite(lanes=8, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_suite_parallel(lanes=8, jobs=par_jobs)
    parallel_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        cache = EvalCache(Path(tmp))
        run_suite_parallel(lanes=8, jobs=1, cache=cache)
        sims_before = simulation_count()
        t0 = time.perf_counter()
        run_suite_parallel(lanes=8, jobs=1, cache=cache)
        warm_s = time.perf_counter() - t0
        warm_sims = simulation_count() - sims_before

    return (f"\n## Harness: parallel & cached evaluation\n\n"
            f"Full 10-workload suite at 8 lanes "
            f"(`python -m repro eval`), this host: {cores} CPU core(s).\n\n"
            f"| mode | wall-clock | simulations |\n"
            f"|---|---|---|\n"
            f"| serial (`--jobs 1`) | {serial_s:.2f} s | 10 |\n"
            f"| parallel (`--jobs {par_jobs}`) | {parallel_s:.2f} s "
            f"| 10 (in workers) |\n"
            f"| warm cache re-run | {warm_s:.2f} s | {warm_sims} |\n\n"
            f"Parallel and serial results are field-identical "
            f"(enforced by `tests/test_parallel_eval.py`); parallel "
            f"speedup scales with the host's cores, and a warm cache "
            f"skips simulation entirely. See `docs/evaluation.md`.\n")


def _structure_timing() -> str:
    """Measure cold vs warm recovered-structure summaries for the suite.

    The structure cache (:mod:`repro.graph.cache`) stores each workload's
    :class:`StructureSummary` keyed by (code version, workload identity),
    so suite-level reporting — the critical-path bound column in F1/`repro
    eval`, the T2 structure columns — skips re-expanding every program's
    kernels once the cache is warm.
    """
    from repro.graph.cache import StructureCache, structure_summary
    from repro.workloads import all_workloads

    workloads = all_workloads()
    with tempfile.TemporaryDirectory() as tmp:
        cache = StructureCache(Path(tmp))
        t0 = time.perf_counter()
        for w in workloads:
            structure_summary(w, cache=cache)
        cold_s = time.perf_counter() - t0
        cold_stores = cache.stores

        t0 = time.perf_counter()
        for w in workloads:
            structure_summary(w, cache=cache)
        warm_s = time.perf_counter() - t0
        warm_hits = cache.hits

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return (f"\n## Harness: structure cache\n\n"
            f"Recovered-structure summaries (TaskGraph IR expansion + "
            f"critical-path/sharing analyses) for the "
            f"{len(workloads)}-workload suite, cold vs warm "
            f"(`repro.graph.cache.StructureCache`):\n\n"
            f"| mode | wall-clock | programs expanded |\n"
            f"|---|---|---|\n"
            f"| cold (expand + analyse + store) | {cold_s:.3f} s "
            f"| {cold_stores} |\n"
            f"| warm (served from cache) | {warm_s:.3f} s | 0 "
            f"({warm_hits} hits) |\n\n"
            f"Warm summaries are {speedup:.0f}x faster — suite reporting "
            f"(the F1 `cp bound` column, T2's structure columns, `repro "
            f"eval`) pays kernel re-expansion only on the first run after "
            f"a code or workload change. Entries are keyed by the code-"
            f"version digest, so any `repro/` edit (including "
            f"`repro/graph/` itself) invalidates them.\n")


def _policy_tournament(jobs: Optional[int]) -> str:
    """Race every registered policy; fault-free and under the canned plan.

    Unlike F7 (which probes four policies on the skew-sensitive
    workloads), the tournament runs the *full* 18-workload registry so
    the micro/extended workloads' scheduling diversity counts, and adds
    the faulty condition — see ``docs/scheduling.md``.
    """
    from repro.eval.policy_matrix import run_policy_matrix, tournament_winner
    from repro.eval.tables import policy_matrix_table

    outcomes = run_policy_matrix(lanes=8, jobs=jobs)
    winner = tournament_winner(outcomes)
    body = (policy_matrix_table(outcomes, lanes=8)
            + f"\nwinner: {winner.policy} ({winner.speedup:.2f}x fault-free"
              f" geomean, {winner.faulty_speedup:.2f}x under the fault plan)")
    ranked = sorted(outcomes, key=lambda o: o.speedup, reverse=True)
    return _section(
        "S1", "scheduling-policy tournament",
        "With accurate work hints, the paper's work-aware heuristic (LPT "
        "+ least-loaded placement) should already capture most of what "
        "richer orderings buy; emulating a static schedule through the "
        "dynamic dispatcher should measure the value of late binding.",
        f"{winner.policy} wins ({winner.speedup:.2f}x geomean vs static "
        f"at 8 lanes; runner-up {ranked[1].policy} at "
        f"{ranked[1].speedup:.2f}x); block-partition's gap "
        f"({next(o.speedup for o in ranked if o.policy == 'block-partition'):.2f}x) "
        f"is the measured value of late binding. Negative `degrade` "
        f"means the advantage *grows* under the fault plan: dynamic "
        f"re-placement absorbs a dead lane better than a static "
        f"partition. Reproduce with `python -m repro eval "
        f"--policy-matrix`.",
        body)


def generate(path: Path, jobs: Optional[int] = None) -> str:
    """Run all experiments and write the markdown report."""
    started = time.time()
    sections = []

    r = t1_machine_config()
    sections.append(_section(
        "T1", "machine configuration",
        "Delta and the static-parallel baseline share an identical "
        "datapath (lanes, scratchpads, NoC, DRAM); they differ only in "
        "task hardware and scheduling.",
        "configuration table below; both simulators are instantiated from "
        "this one dataclass.",
        r.text))

    r = t2_workload_table()
    sections.append(_section(
        "T2", "workload characteristics",
        "Task-parallel workloads with skewed work, shared reads, and "
        "fine-grained inter-task dependences.",
        "ten workloads spanning all three structure classes (work CV up "
        "to ~1.4; see 'structure exercised').",
        r.text))

    r = f1_headline_speedup(jobs=jobs)
    geo = suite_geomean(r.data)
    sections.append(_section(
        "F1", "headline speedup",
        "\"our execution model can improve performance by 2.2x\" over an "
        "equivalent static-parallel design (abstract).",
        f"geomean {geo:.2f}x at 8 lanes (range "
        f"{min(c.speedup for c in r.data):.2f}-"
        f"{max(c.speedup for c in r.data):.2f}x); reaches the paper's "
        f"2.2x figure at 16 lanes (see F3). Delta wins on every workload; "
        f"the `cp bound` column reports each workload's critical-path "
        f"speedup limit min(L, T1/T-inf) from the recovered task graph.",
        r.text))

    r = f2_ablation()
    ladder = [geomean(r.data["per_step"][label])
              for label, _f in ABLATION_STEPS]
    sections.append(_section(
        "F2", "mechanism ablation",
        "All three recovered structures contribute: work-aware load "
        "balancing, pipelined inter-task dependences, multicast read "
        "sharing (abstract lists exactly these three).",
        "geomean ladder " + " -> ".join(f"{v:.2f}x" for v in ladder)
        + "; LB pays on skew (stencil-amr), pipelining on dependence "
          "structure (bfs/mergesort/wavefront), multicast on shared reads "
          "(spmv/spmm/triangle).",
        r.text))

    r = f3_lane_scaling(jobs=jobs)
    sections.append(_section(
        "F3", "lane scaling",
        "The benefit of dynamic structure recovery grows with parallelism "
        "(static imbalance and barrier losses compound with lane count).",
        f"Delta-vs-static geomean grows {r.data['speedup'][0]:.2f}x -> "
        f"{r.data['speedup'][-1]:.2f}x from {r.data['lanes'][0]} to "
        f"{r.data['lanes'][-1]} lanes; static self-scaling saturates at "
        f"{r.data['static_scaling'][-1]:.2f}x while Delta reaches "
        f"{r.data['delta_scaling'][-1]:.2f}x.",
        r.text))

    r = f4_load_balance(jobs=jobs)
    worst = max(r.data, key=lambda c: c.static.imbalance_cv)
    sections.append(_section(
        "F4", "load imbalance",
        "Work-aware balancing (WorkHint annotations) removes the "
        "imbalance static partitioning bakes in.",
        f"busy-cycle CV drops on every skewed workload; worst static case "
        f"{worst.workload} improves {worst.static.imbalance_cv:.3f} -> "
        f"{worst.delta.imbalance_cv:.3f}.",
        r.text))

    r = f5_traffic(jobs=jobs)
    best = max(r.data, key=lambda c: c.traffic_ratio)
    sections.append(_section(
        "F5", "memory traffic",
        "Recovering read sharing (multicast) and pipelined dependences "
        "(lane-to-lane forwarding) removes redundant DRAM traffic.",
        f"up to {best.traffic_ratio:.1f}x DRAM-byte reduction "
        f"({best.workload}); no workload where Delta adds traffic.",
        r.text))

    r = f6_granularity()
    cycles = r.data["delta_cycles"]
    best_idx = min(range(len(cycles)), key=lambda i: cycles[i])
    sections.append(_section(
        "F6", "task-granularity sensitivity",
        "Cheap hardware dispatch moves the profitable task size downward; "
        "expected U-curve in absolute time, largest advantage at fine "
        "grain.",
        f"U-curve confirmed (optimum at "
        f"{r.data['rows_per_task'][best_idx]} rows/task); speedup over "
        f"static rises from {r.data['speedup'][-1]:.2f}x at the coarsest "
        f"grain to {r.data['speedup'][0]:.2f}x at the finest.",
        r.text))

    r = f7_policies()
    sections.append(_section(
        "F7", "dispatch-policy sensitivity",
        "Work-aware balancing should dominate count-based (round-robin), "
        "random, and software-stealing policies on skewed workloads.",
        "work-aware >= every other policy on every skewed workload "
        "(within noise); random is uniformly worst.",
        r.text))

    sections.append(_policy_tournament(jobs))

    r = f8_energy(jobs=jobs)
    ratios = r.data["ratios"]
    sections.append(_section(
        "F8", "energy (extension experiment)",
        "The same structure recovery that saves cycles saves energy, "
        "because removed DRAM/NoC traffic dominates the energy budget "
        "(claim class; not a figure in the abstract).",
        f"geomean {geomean(ratios):.2f}x total-energy reduction; savings "
        f"track the traffic reductions of F5.",
        r.text))

    r = f9_extensions()
    sections.append(_section(
        "F9", "extension features (future-work direction)",
        "Config-affinity dispatch and low-priority stream prefetch, both "
        "off by default, should pay in their target regimes without "
        "hurting elsewhere.",
        f"affinity {r.data['affinity_gain']:.2f}x in the config-thrash "
        f"regime (reconfigurations {r.data['misses_before']:.0f} -> "
        f"{r.data['misses_after']:.0f}); prefetch "
        f"{r.data['prefetch_gain']:.2f}x on latency-bound small tasks.",
        r.text))

    r = f10_software_runtime()
    sections.append(_section(
        "F10", "software task runtime (motivation comparison)",
        "A software task runtime balances dynamically but pays software "
        "per-task costs and has erased the structure TaskStream keeps — "
        "the dilemma the paper's intro poses.",
        f"Delta beats the software runtime {geomean(r.data['vs_software']):.2f}x "
        f"geomean (advantage grows at finer grain: "
        f"{r.data['grain_ratios'][0]:.2f}x at {r.data['grains'][0]} "
        f"rows/task); the software runtime is roughly at parity with the "
        f"static design overall "
        f"({geomean(r.data['software_vs_static']):.2f}x).",
        r.text))

    r = a1_design_sensitivity()
    sections.append(_section(
        "A1", "design-choice sensitivity",
        "The modeling constants DESIGN.md fixes (multicast window, stream "
        "chunk size, queue depth) should sit at or near their knees.",
        "window: default sits at the fetch-coalescing knee; chunk size: "
        "interior optimum near the 256 B default; queue depth: flat under "
        "late binding.",
        r.text))

    r = r1_resilience(jobs=jobs)
    sections.append(_section(
        "R1", "resilience under injected faults",
        "Recovered structure makes recovery cheap: with lane/NoC/DRAM "
        "fault models active on both machines, Delta should degrade "
        "gracefully and keep a solid advantage, and an *empty* fault plan "
        "must cost zero cycles (the hooks are purely additive).",
        f"speedup {r.data['speedups'][0]:.2f}x fault-free -> "
        f"{r.data['speedups'][-1]:.2f}x at a "
        f"{r.data['rates'][-1]:.0%} transient-fault rate — Delta stays "
        f"well ahead at every rate. Its relative advantage narrows "
        f"slightly (retry latency lands on Delta's packed critical path; "
        f"the static schedule's barrier slack hides off-critical "
        f"repairs). Zero-fault recovery overhead: "
        f"{r.data['zero_fault_overhead']:+.0f} cycles (bit-identical, "
        f"enforced per-workload by tests/test_faults.py).",
        r.text))

    r = t3_area()
    sections.append(_section(
        "T3", "area overhead",
        "Task hardware (queues, annotation tables, dispatcher, multicast "
        "state) costs a small single-digit percentage of the accelerator.",
        f"{r.data.overhead_fraction:.2%} of baseline lane area "
        f"(analytical model, 28nm-class unit costs).",
        r.text))

    sections.append(_harness_timing(jobs))
    sections.append(_structure_timing())

    elapsed = time.time() - started
    footer = (f"\n---\nGenerated in {elapsed:.0f}s of wall-clock "
              f"simulation (pure Python).\n")
    content = _HEADER + "".join(sections) + footer
    path.write_text(content)
    return content


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="regenerate EXPERIMENTS.md from live simulations")
    parser.add_argument("path", nargs="?",
                        default=Path(__file__).resolve().parents[3]
                        / "EXPERIMENTS.md")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for suite-based experiments")
    args = parser.parse_args()
    target = Path(args.path)
    generate(target, jobs=args.jobs)
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
