"""Evaluation harness: experiment runners for every table and figure.

Each experiment in DESIGN.md section 6 has a function here returning a
structured result plus a plain-text rendering, so the benchmark targets
under ``benchmarks/`` are thin wrappers and the numbers in EXPERIMENTS.md
can be regenerated with one call.
"""

from repro.eval.runner import Comparison, compare, run_suite, simulation_count
from repro.eval.cache import EvalCache
from repro.eval.parallel import run_suite_parallel
from repro.eval.tables import format_table
from repro.eval.figures import bar_chart, series_table

__all__ = [
    "Comparison",
    "compare",
    "run_suite",
    "run_suite_parallel",
    "simulation_count",
    "EvalCache",
    "format_table",
    "bar_chart",
    "series_table",
]
