"""The policy tournament: every registered policy × the suite × faults.

The scheduler lab (:mod:`repro.sched`) makes dispatch policies pluggable;
this module races them. Each registered policy runs the evaluation suite
twice — fault-free, then under one canned :class:`~repro.sim.faults
.FaultPlan` — always with the opt-in ``sched.*`` counter group armed, so
every row carries both ends of the trade-off: raw speedup over the static
baseline, and how gracefully that speedup degrades when a lane fail-stops
mid-run and tasks fault transiently.

The fault-free pass goes through the parallel, cached harness
(:func:`~repro.eval.parallel.run_suite_parallel`). The faulty pass runs
point-by-point in-process instead: a policy that *stalls* or exhausts
recovery under faults is a result (its row records the failing workloads),
not an abort of the tournament.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.cache import EvalCache

from repro.arch.config import default_delta_config
from repro.eval.parallel import run_suite_parallel
from repro.eval.runner import compare, suite_geomean
from repro.machine.session import ExecutionStalled
from repro.sched import policy_names, policy_uses_structure
from repro.sim.faults import FaultPlan, LaneFailure, UnrecoverableFault
from repro.sim.sanitize import ModelInvariantError
from repro.util.stats import geomean
from repro.workloads import get_workload
from repro.workloads.base import Workload
from repro.workloads.registry import workload_names


def canned_fault_plan() -> FaultPlan:
    """The tournament's standard adversity, same for every policy.

    One lane fail-stops at cycle 2000 — early enough to strand queued
    work on every suite workload — plus a 2% transient task-fault rate.
    Fixed seed: all policies face the identical fault schedule, so the
    degradation column compares recovery behaviour, not luck.
    """
    return FaultPlan(lane_failures=(LaneFailure(lane=1, cycle=2000.0),),
                     task_fault_rate=0.02, seed=7)


@dataclass(frozen=True)
class PolicyOutcome:
    """One tournament row: a policy's suite-level scores.

    Speedups are geomean Delta-vs-static over the workload set; counter
    columns aggregate the fault-free pass (``pool_peak`` is the maximum
    across workloads, the rest are sums). ``failures`` lists workloads the
    policy could not finish under the fault plan — those points are
    excluded from ``faulty_speedup`` rather than poisoning it.
    """

    policy: str
    uses_structure: bool
    speedup: float
    faulty_speedup: float
    pool_peak: float
    steal_attempts: float
    steal_hits: float
    inversions: float
    failures: tuple[str, ...] = ()

    @property
    def degradation(self) -> float:
        """Fraction of the fault-free speedup lost under the fault plan
        (0.08 = 8% slower relative to its own clean run)."""
        if not (self.speedup > 0.0) or not (self.faulty_speedup > 0.0):
            return float("nan")
        return 1.0 - self.faulty_speedup / self.speedup


def run_policy_matrix(lanes: int = 8,
                      workloads: Optional[Sequence[Workload]] = None,
                      policies: Optional[Sequence[str]] = None,
                      jobs: Optional[int] = None,
                      timeout: Optional[float] = None,
                      cache: Optional["EvalCache"] = None,
                      sanitize: bool = False,
                      plan: Optional[FaultPlan] = None,
                      verify: bool = True) -> list[PolicyOutcome]:
    """Race every policy (registry order) and return one row each.

    ``policies`` defaults to the full registry; ``plan`` to
    :func:`canned_fault_plan`. ``workloads`` defaults to the *entire*
    workload registry — micro/ext stressors included, unlike the F1
    suite — because the tournament wants scheduling diversity (skew,
    chains, trees, shared inputs), not cross-run comparability.
    ``cache`` only serves the fault-free pass (``sched_stats`` is part
    of the config, so tournament entries never collide with ordinary
    eval results); the faulty pass always simulates. ``sanitize`` arms
    the model sanitizer on both passes — under faults a sanitizer
    violation counts as that workload failing, not an abort.
    """
    workloads = (list(workloads) if workloads is not None
                 else [get_workload(n) for n in workload_names()])
    names = tuple(policies) if policies is not None else policy_names()
    plan = plan if plan is not None else canned_fault_plan()

    outcomes = []
    for name in names:
        config = (default_delta_config(lanes=lanes)
                  .with_policy(name).with_sched_stats(True))
        if sanitize:
            config = config.with_sanitize(True)
        clean = run_suite_parallel(lanes=lanes, workloads=workloads,
                                   jobs=jobs, verify=verify,
                                   timeout=timeout, cache=cache,
                                   delta_config=config)

        faulty_config = config.with_faults(plan)
        faulty_speedups: list[float] = []
        failures: list[str] = []
        for workload in workloads:
            try:
                point = compare(workload, faulty_config, verify=verify)
            except (ExecutionStalled, UnrecoverableFault,
                    ModelInvariantError) as exc:
                failures.append(f"{workload.name}:{type(exc).__name__}")
                continue
            faulty_speedups.append(point.speedup)

        outcomes.append(PolicyOutcome(
            policy=name,
            uses_structure=policy_uses_structure(name),
            speedup=suite_geomean(clean),
            faulty_speedup=(geomean(faulty_speedups)
                            if faulty_speedups else float("nan")),
            pool_peak=max((c.delta.counters.get("sched.pool_peak")
                           for c in clean), default=0.0),
            steal_attempts=sum(c.delta.counters.get("sched.steal_attempts")
                               for c in clean),
            steal_hits=sum(c.delta.counters.get("sched.steal_hits")
                           for c in clean),
            inversions=sum(
                c.delta.counters.get("sched.priority_inversions")
                for c in clean),
            failures=tuple(failures)))
    return outcomes


def tournament_winner(outcomes: Sequence[PolicyOutcome]) -> PolicyOutcome:
    """The row with the best fault-free geomean speedup."""
    if not outcomes:
        raise ValueError("empty tournament: no policy outcomes")
    return max(outcomes, key=lambda o: o.speedup)
