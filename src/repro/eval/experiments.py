"""One function per experiment in DESIGN.md's per-experiment index.

Every function returns an :class:`ExperimentResult` holding structured
data (for tests and EXPERIMENTS.md) and a rendered text report (printed by
the benchmark targets). Sizes default to the evaluation sizes used
throughout; pass smaller workload sets to iterate quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.cache import StructureCache

from repro.arch.area import estimate_area
from repro.arch.config import (
    FeatureFlags,
    MachineConfig,
    default_baseline_config,
    default_delta_config,
)
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.eval.figures import bar_chart, series_table
from repro.eval.runner import (
    attach_structure,
    compare,
    run_suite,
    suite_geomean,
)
from repro.eval.tables import format_table
from repro.util.stats import geomean
from repro.workloads import all_workloads, get_workload
from repro.workloads.base import Workload


@dataclass
class ExperimentResult:
    """Structured data plus a rendered report for one experiment."""

    experiment_id: str
    title: str
    data: Any
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


# --------------------------------------------------------------------- T1

def t1_machine_config(config: Optional[MachineConfig] = None,
                      ) -> ExperimentResult:
    """Architecture-parameter table (Delta and the equivalent baseline)."""
    config = config or default_delta_config()
    fabric = config.lane.fabric
    rows = [
        ("lanes", config.lanes),
        ("fabric", f"{fabric.rows}x{fabric.cols} CGRA"),
        ("fabric MUL-capable cells", f"{fabric.mul_ratio:.0%}"),
        ("fabric MEM-capable cells", f"{fabric.mem_ratio:.0%}"),
        ("scratchpad / lane", f"{config.lane.spad_bytes // 1024} KiB, "
                              f"{config.lane.spad_banks} banks"),
        ("scratchpad bank bw", f"{config.lane.spad_bank_bytes_per_cycle:g} "
                               f"B/cyc"),
        ("stream chunk", f"{config.lane.stream_chunk_bytes} B"),
        ("reconfiguration", f"{config.lane.config_cycles} cyc, "
                            f"{config.lane.config_cache_entries}-entry "
                            f"cache"),
        ("NoC link bw", f"{config.noc.link_bytes_per_cycle:g} B/cyc, "
                        f"hop {config.noc.hop_latency} cyc"),
        ("NoC multicast", "yes (Delta) / unused (baseline)"),
        ("DRAM bw", f"{config.dram.bytes_per_cycle:g} B/cyc, "
                    f"latency {config.dram.latency} cyc"),
        ("task dispatch", f"{config.dispatch.dispatch_cycles} cyc/task, "
                          f"{config.dispatch.queue_depth}-deep queues"),
        ("dispatch policy", f"{config.dispatch.policy} (Delta) / "
                            f"static partition (baseline)"),
    ]
    text = format_table(["parameter", "value"], rows,
                        title="T1: machine configuration")
    return ExperimentResult("T1", "machine configuration", rows, text)


# --------------------------------------------------------------------- T2

def t2_workload_table(workloads: Optional[Sequence[Workload]] = None,
                      structure_cache: Optional["StructureCache"] = None,
                      ) -> ExperimentResult:
    """Workload-characteristics table.

    The last three columns come from the recovered task graph
    (:mod:`repro.graph`): barrier-phase count, inherent parallelism
    (T1/T∞), and the shared-region sharing sets (count and total reader
    degree). ``structure_cache`` serves warm summaries from disk.
    """
    from repro.eval.runner import workload_structures

    workloads = list(workloads) if workloads is not None else all_workloads()
    structures = workload_structures(workloads, cache=structure_cache)
    rows = []
    for w in workloads:
        d = w.describe()
        mean_work = d.get("mean_work", 0)
        cv = d.get("cv_work", 0)
        row = [d["name"], d.get("tasks", "?"),
               f"{float(mean_work):,.0f}" if mean_work else "-",
               f"{float(cv):.2f}" if cv else "-",
               d.get("mechanisms", "")]
        s = structures.get(w.name)
        if s is None:
            row += ["-", "-", "-"]
        else:
            degrees = sum(sh.degree for sh in s.sharing)
            row += [s.phases, f"{s.parallelism:.1f}",
                    f"{s.shared_regions} ({degrees} readers)"
                    if s.shared_regions else "-"]
        rows.append(row)
    text = format_table(
        ["workload", "tasks", "mean work", "work CV", "structure exercised",
         "phases", "T1/Tinf", "sharing sets"],
        rows, title="T2: workload characteristics")
    return ExperimentResult("T2", "workload characteristics", rows, text)


# --------------------------------------------------------------------- F1

def f1_headline_speedup(lanes: int = 8,
                        workloads: Optional[Sequence[Workload]] = None,
                        jobs: Optional[int] = None,
                        structure_cache: Optional["StructureCache"] = None,
                        ) -> ExperimentResult:
    """Per-workload Delta vs static speedup plus geomean (headline claim).

    The detail table's final ``cp bound`` column is the critical-path
    speedup limit min(L, T1/T∞) from the recovered task graph — measured
    speedups must sit below it (appended last so golden-file parsers keyed
    on the leading columns keep working).
    """
    comparisons = run_suite(lanes=lanes, workloads=workloads, jobs=jobs)
    attach_structure(comparisons, workloads=workloads,
                     cache=structure_cache)
    labels = [c.workload for c in comparisons] + ["GEOMEAN"]
    values = [c.speedup for c in comparisons]
    values.append(suite_geomean(comparisons))
    chart = bar_chart(labels, values,
                      title=f"F1: Delta speedup over static-parallel "
                            f"({lanes} lanes)")
    detail = format_table(
        ["workload", "delta cyc", "static cyc", "speedup",
         "delta CV", "static CV", "cp bound"],
        [c.row_with_bound() for c in comparisons])
    return ExperimentResult("F1", "headline speedup", comparisons,
                            chart + "\n\n" + detail)


# --------------------------------------------------------------------- F2

ABLATION_STEPS: list[tuple[str, FeatureFlags]] = [
    ("base (no task hw)", FeatureFlags(False, False, False)),
    ("+lb", FeatureFlags(True, False, False)),
    ("+lb+pipe", FeatureFlags(True, True, False)),
    ("+lb+pipe+mcast", FeatureFlags(True, True, True)),
]


def f2_ablation(lanes: int = 8,
                workloads: Optional[Sequence[Workload]] = None,
                ) -> ExperimentResult:
    """Incremental speedup as each TaskStream mechanism is enabled."""
    workloads = list(workloads) if workloads is not None else all_workloads()
    static_cfg = default_baseline_config(lanes=lanes)
    per_step: dict[str, list[float]] = {}
    rows = []
    for w in workloads:
        static_cycles = StaticParallel(static_cfg).run(
            w.build_program()).cycles
        row = [w.name]
        for label, flags in ABLATION_STEPS:
            delta_cfg = default_delta_config(lanes=lanes, features=flags)
            cycles = Delta(delta_cfg).run(w.build_program()).cycles
            speedup = static_cycles / cycles
            per_step.setdefault(label, []).append(speedup)
            row.append(f"{speedup:.2f}x")
        rows.append(row)
    geo_row = ["GEOMEAN"] + [f"{geomean(per_step[label]):.2f}x"
                             for label, _f in ABLATION_STEPS]
    rows.append(geo_row)
    text = format_table(["workload"] + [l for l, _f in ABLATION_STEPS],
                        rows,
                        title="F2: mechanism ablation "
                              "(speedup over static baseline)")
    return ExperimentResult("F2", "mechanism ablation",
                            {"rows": rows, "per_step": per_step}, text)


# --------------------------------------------------------------------- F3

def f3_lane_scaling(lane_counts: Sequence[int] = (2, 4, 8, 16, 32),
                    workloads: Optional[Sequence[Workload]] = None,
                    jobs: Optional[int] = None,
                    ) -> ExperimentResult:
    """Speedup vs lane count: the gap grows as static imbalance compounds."""
    workloads = list(workloads) if workloads is not None else all_workloads()
    speedups = []
    delta_scaling = []
    static_scaling = []
    base_delta = None
    base_static = None
    for lanes in lane_counts:
        comparisons = run_suite(lanes=lanes, workloads=workloads, jobs=jobs)
        delta_cycles = [c.delta.cycles for c in comparisons]
        static_cycles = [c.static.cycles for c in comparisons]
        if base_delta is None:
            base_delta, base_static = delta_cycles, static_cycles
        speedups.append(suite_geomean(comparisons))
        delta_scaling.append(geomean(
            [b / c for b, c in zip(base_delta, delta_cycles)]))
        static_scaling.append(geomean(
            [b / c for b, c in zip(base_static, static_cycles)]))
    text = series_table(
        "lanes", list(lane_counts),
        {"delta-vs-static": speedups,
         f"delta-self-rel-{lane_counts[0]}": delta_scaling,
         f"static-self-rel-{lane_counts[0]}": static_scaling},
        title="F3: scaling with lane count (geomean over suite)")
    data = {"lanes": list(lane_counts), "speedup": speedups,
            "delta_scaling": delta_scaling,
            "static_scaling": static_scaling}
    return ExperimentResult("F3", "lane scaling", data, text)


# --------------------------------------------------------------------- F4

def f4_load_balance(lanes: int = 8,
                    workloads: Optional[Sequence[Workload]] = None,
                    jobs: Optional[int] = None,
                    ) -> ExperimentResult:
    """Per-lane busy-cycle CV: TaskStream vs static partitioning."""
    comparisons = run_suite(lanes=lanes, workloads=workloads, jobs=jobs)
    rows = [[c.workload, f"{c.delta.imbalance_cv:.3f}",
             f"{c.static.imbalance_cv:.3f}",
             f"{c.delta.mean_lane_utilization:.2f}",
             f"{c.static.mean_lane_utilization:.2f}"]
            for c in comparisons]
    text = format_table(
        ["workload", "delta CV", "static CV", "delta util", "static util"],
        rows, title="F4: load imbalance (CV of per-lane busy cycles)")
    return ExperimentResult("F4", "load imbalance", comparisons, text)


# --------------------------------------------------------------------- F5

def f5_traffic(lanes: int = 8,
               workloads: Optional[Sequence[Workload]] = None,
               jobs: Optional[int] = None,
               ) -> ExperimentResult:
    """DRAM/NoC traffic with and without structure recovery."""
    comparisons = run_suite(lanes=lanes, workloads=workloads, jobs=jobs)
    rows = []
    for c in comparisons:
        rows.append([
            c.workload,
            f"{c.delta.dram_bytes / 1024:,.1f}",
            f"{c.static.dram_bytes / 1024:,.1f}",
            f"{c.traffic_ratio:.2f}x",
            f"{c.delta.metrics.mcast.fetches:,.0f}",
            f"{c.delta.metrics.mcast.hits:,.0f}",
            f"{c.delta.metrics.pipe.bytes / 1024:,.1f}",
        ])
    text = format_table(
        ["workload", "delta KiB", "static KiB", "reduction",
         "mcast fetches", "mcast hits", "piped KiB"],
        rows, title="F5: DRAM traffic and structure-recovery counters")
    return ExperimentResult("F5", "memory traffic", comparisons, text)


# --------------------------------------------------------------------- F6

def f6_granularity(lanes: int = 8,
                   rows_per_task: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
                   ) -> ExperimentResult:
    """Task-granularity sensitivity on SpMV.

    Small tasks balance better but pay per-task dispatch/config/stream
    overheads; large tasks amortize overheads but rebuild imbalance. The
    sweet spot in the middle is the paper's argument for cheap hardware
    dispatch (the crossover moves left as dispatch gets cheaper).
    """
    from repro.workloads.spmv import SpmvWorkload

    delta_speedups = []
    delta_cycles = []
    static_cycles = []
    for rpt in rows_per_task:
        w = SpmvWorkload(rows_per_task=rpt)
        c = compare(w, default_delta_config(lanes=lanes))
        delta_speedups.append(c.speedup)
        delta_cycles.append(c.delta.cycles)
        static_cycles.append(c.static.cycles)
    text = series_table(
        "rows/task", list(rows_per_task),
        {"delta-cycles": delta_cycles, "static-cycles": static_cycles,
         "speedup": delta_speedups},
        title="F6: task-granularity sensitivity (SpMV)")
    data = {"rows_per_task": list(rows_per_task),
            "delta_cycles": delta_cycles, "static_cycles": static_cycles,
            "speedup": delta_speedups}
    return ExperimentResult("F6", "task granularity", data, text)


# --------------------------------------------------------------------- F7

POLICY_NAMES = ("work-aware", "round-robin", "random", "steal")


def f7_policies(lanes: int = 8,
                workload_names: Sequence[str] = ("spmv", "triangle",
                                                 "stencil-amr",
                                                 "micro-skewed"),
                ) -> ExperimentResult:
    """Dispatcher-policy sensitivity on the skew-heavy workloads."""
    rows = []
    per_policy: dict[str, list[float]] = {p: [] for p in POLICY_NAMES}
    for name in workload_names:
        base = None
        row = [name]
        for policy in POLICY_NAMES:
            w = get_workload(name)
            cfg = default_delta_config(lanes=lanes).with_policy(policy)
            result = Delta(cfg).run(w.build_program())
            w.check(result.state)
            if base is None:
                base = result.cycles
            relative = base / result.cycles
            per_policy[policy].append(relative)
            row.append(f"{result.cycles:,.0f} ({relative:.2f}x)")
        rows.append(row)
    text = format_table(
        ["workload"] + [f"{p}" for p in POLICY_NAMES], rows,
        title="F7: dispatch policies — cycles (speed rel. to work-aware)")
    return ExperimentResult("F7", "dispatch policies",
                            {"rows": rows, "per_policy": per_policy}, text)


# --------------------------------------------------------------------- T3

def t3_area(config: Optional[MachineConfig] = None) -> ExperimentResult:
    """Area-overhead table for the TaskStream hardware additions."""
    config = config or default_delta_config()
    breakdown = estimate_area(config)
    rows = [(label, f"{mm2:.4f}") for label, mm2 in breakdown.rows()]
    rows.append(("TaskStream overhead",
                 f"{breakdown.overhead_fraction:.2%}"))
    text = format_table(["structure", "area (mm^2)"], rows,
                        title="T3: area breakdown and TaskStream overhead")
    return ExperimentResult("T3", "area overhead", breakdown, text)


# --------------------------------------------------------------------- F8

def f8_energy(lanes: int = 8,
              workloads: Optional[Sequence[Workload]] = None,
              jobs: Optional[int] = None,
              ) -> ExperimentResult:
    """Energy comparison: structure recovery removes data movement.

    Not a figure in the abstract, but the claim class every accelerator
    paper carries: the same mechanisms that save cycles (multicast,
    stream forwarding) save DRAM/NoC energy, which dominates.
    """
    from repro.arch.energy import estimate_energy

    comparisons = run_suite(lanes=lanes, workloads=workloads, jobs=jobs)
    rows = []
    ratios = []
    for c in comparisons:
        delta_e = estimate_energy(c.delta)
        static_e = estimate_energy(c.static)
        ratio = static_e.total / delta_e.total
        ratios.append(ratio)
        rows.append([
            c.workload,
            f"{delta_e.total:,.0f}",
            f"{static_e.total:,.0f}",
            f"{ratio:.2f}x",
            f"{delta_e.data_movement / delta_e.total:.0%}",
            f"{static_e.data_movement / static_e.total:.0%}",
        ])
    rows.append(["GEOMEAN", "-", "-", f"{geomean(ratios):.2f}x", "-", "-"])
    text = format_table(
        ["workload", "delta nJ", "static nJ", "savings",
         "delta mov%", "static mov%"],
        rows, title="F8: energy (analytical model over run counters)")
    return ExperimentResult("F8", "energy",
                            {"rows": rows, "ratios": ratios,
                             "comparisons": comparisons}, text)


# --------------------------------------------------------------------- F9

def f9_extensions(lanes: int = 8) -> ExperimentResult:
    """Extension features evaluated in their target regimes.

    Config affinity targets machines with expensive reconfiguration and a
    small config cache running many small tasks of mixed types; prefetch
    targets latency-bound task sequences with spare DRAM bandwidth. Both
    are off by default; this experiment turns each on in its regime.
    """
    import dataclasses

    from repro.workloads.synthetic import ConfigThrash, UniformTasks

    rows = []

    # Affinity regime: 1-entry config cache, 512-cycle reconfiguration.
    thrash = ConfigThrash(num_tasks=96, num_types=4, trips=64)
    cfg = default_delta_config(lanes=lanes)
    cfg = dataclasses.replace(
        cfg, lane=dataclasses.replace(cfg.lane, config_cycles=512,
                                      config_cache_entries=1))
    base = Delta(cfg).run(thrash.build_program())
    thrash.check(base.state)
    aff_cfg = cfg.with_features(FeatureFlags(config_affinity=True))
    aff = Delta(aff_cfg).run(thrash.build_program())
    thrash.check(aff.state)

    def misses(result):
        return sum(lane.config_misses
                   for lane in result.metrics.lanes(lanes))

    rows.append(["config-affinity", "config-thrash",
                 f"{base.cycles:,.0f}", f"{aff.cycles:,.0f}",
                 f"{base.cycles / aff.cycles:.2f}x",
                 f"misses {misses(base):.0f} -> {misses(aff):.0f}"])

    # Prefetch regime: many small latency-bound tasks, DRAM mostly idle.
    stream = UniformTasks(num_tasks=64, trips=96)
    pf_base = Delta(default_delta_config(lanes=lanes)).run(
        stream.build_program())
    stream.check(pf_base.state)
    pf_cfg = default_delta_config(
        lanes=lanes, features=FeatureFlags(prefetch=True))
    pf = Delta(pf_cfg).run(stream.build_program())
    stream.check(pf.state)
    rows.append(["prefetch", "uniform (latency-bound)",
                 f"{pf_base.cycles:,.0f}", f"{pf.cycles:,.0f}",
                 f"{pf_base.cycles / pf.cycles:.2f}x",
                 f"prefetches used {pf.metrics.prefetch.used:.0f}"])

    text = format_table(
        ["extension", "regime workload", "off cycles", "on cycles",
         "gain", "detail"],
        rows, title="F9: extension features in their target regimes")
    data = {"affinity_gain": base.cycles / aff.cycles,
            "prefetch_gain": pf_base.cycles / pf.cycles,
            "misses_before": misses(base), "misses_after": misses(aff),
            "prefetch_used": pf.metrics.prefetch.used}
    return ExperimentResult("F9", "extensions", data, text)


# --------------------------------------------------------------------- F10

def f10_software_runtime(lanes: int = 8,
                         workloads: Optional[Sequence[Workload]] = None,
                         ) -> ExperimentResult:
    """Delta vs a software task runtime on the same datapath.

    The motivation comparison: a work-stealing software runtime also
    balances dynamically, but pays software dispatch/steal costs per task
    and has none of the recovered structure (no pipelining, no multicast).
    Expected shape: the software runtime beats the *static* design on
    skew-dominated workloads yet still loses to Delta everywhere, and its
    deficit widens as tasks get finer.
    """
    from repro.core.software import SoftwareRuntime
    from repro.workloads.spmv import SpmvWorkload

    workloads = list(workloads) if workloads is not None else all_workloads()
    delta_cfg = default_delta_config(lanes=lanes)
    static_cfg = default_baseline_config(lanes=lanes)
    rows = []
    vs_software = []
    software_vs_static = []
    for w in workloads:
        delta = Delta(delta_cfg).run(w.build_program())
        w.check(delta.state)
        software = SoftwareRuntime(delta_cfg).run(w.build_program())
        w.check(software.state)
        static = StaticParallel(static_cfg).run(w.build_program())
        ratio = software.cycles / delta.cycles
        vs_software.append(ratio)
        software_vs_static.append(static.cycles / software.cycles)
        rows.append([w.name, f"{delta.cycles:,.0f}",
                     f"{software.cycles:,.0f}", f"{static.cycles:,.0f}",
                     f"{ratio:.2f}x",
                     f"{static.cycles / software.cycles:.2f}x"])
    rows.append(["GEOMEAN", "-", "-", "-",
                 f"{geomean(vs_software):.2f}x",
                 f"{geomean(software_vs_static):.2f}x"])
    table = format_table(
        ["workload", "delta cyc", "software cyc", "static cyc",
         "delta/software", "software/static"],
        rows, title="F10: Delta vs software task runtime (same datapath)")

    # Fine-grain sweep: software per-task overhead dominates small tasks.
    grains = [2, 8, 32]
    grain_ratios = []
    for rpt in grains:
        w = SpmvWorkload(rows_per_task=rpt)
        delta = Delta(delta_cfg).run(w.build_program())
        software = SoftwareRuntime(delta_cfg).run(w.build_program())
        grain_ratios.append(software.cycles / delta.cycles)
    sweep = series_table("rows/task", grains,
                         {"delta-advantage": grain_ratios},
                         title="F10b: advantage vs task grain (SpMV)")
    data = {"rows": rows, "vs_software": vs_software,
            "software_vs_static": software_vs_static,
            "grains": grains, "grain_ratios": grain_ratios}
    return ExperimentResult("F10", "software-runtime comparison", data,
                            table + "\n\n" + sweep)


# --------------------------------------------------------------------- R1

RESILIENCE_RATES = (0.0, 0.02, 0.05, 0.1)


def r1_resilience(lanes: int = 8,
                  workloads: Optional[Sequence[Workload]] = None,
                  rates: Sequence[float] = RESILIENCE_RATES,
                  jobs: Optional[int] = None,
                  ) -> ExperimentResult:
    """Graceful degradation under injected faults (speedup vs fault rate).

    Sweeps a transient-task-fault rate (with a proportional NoC drop
    rate) over the suite, running *both* machines under the same
    :class:`~repro.sim.faults.FaultPlan`. Delta recovers through the
    dispatcher (retries backfill onto lanes, replays ride the existing
    streams) and stays well ahead at every rate; its *relative* advantage
    narrows slightly because retry latency lands on Delta's packed
    critical path while the static schedule's barrier slack hides
    off-critical repairs. Also checks the zero-overhead claim: an empty
    plan must reproduce the fault-free cycle count bit-for-bit.
    """
    from repro.sim.faults import FaultPlan, RetryPolicy

    workloads = list(workloads) if workloads is not None else all_workloads()
    retry = RetryPolicy(max_attempts=5, backoff_cycles=64.0)
    speedups = []
    delta_thr = []
    static_thr = []
    base_delta: Optional[list[float]] = None
    base_static: Optional[list[float]] = None
    for rate in rates:
        plan = None if rate == 0.0 else FaultPlan(
            task_fault_rate=rate, noc_drop_rate=rate / 10,
            retry=retry, seed=1)
        comparisons = run_suite(lanes=lanes, workloads=workloads,
                                jobs=jobs, faults=plan)
        delta_cycles = [c.delta.cycles for c in comparisons]
        static_cycles = [c.static.cycles for c in comparisons]
        if base_delta is None:
            base_delta, base_static = delta_cycles, static_cycles
        speedups.append(suite_geomean(comparisons))
        delta_thr.append(geomean(
            [b / c for b, c in zip(base_delta, delta_cycles)]))
        static_thr.append(geomean(
            [b / c for b, c in zip(base_static, static_cycles)]))

    # Zero-fault recovery overhead: an *empty* plan arms nothing, so one
    # workload's cycle count must equal the fault-free run exactly.
    probe = workloads[0]
    plain = compare(probe, default_delta_config(lanes=lanes))
    armed = compare(probe, default_delta_config(lanes=lanes)
                    .with_faults(FaultPlan()))
    overhead = armed.delta.cycles - plain.delta.cycles
    from repro.eval.tables import resilience_table

    text = resilience_table(rates, speedups, delta_thr, static_thr,
                            lanes=lanes)
    text += (f"\n\nzero-fault recovery overhead ({probe.name}): "
             f"{overhead:+,.0f} cycles "
             f"({'exact' if overhead == 0 else 'NONZERO'})")
    data = {"rates": list(rates), "speedups": speedups,
            "delta_throughput": delta_thr, "static_throughput": static_thr,
            "zero_fault_overhead": overhead}
    return ExperimentResult("R1", "resilience under faults", data, text)


# --------------------------------------------------------------------- A1

def a1_design_sensitivity(lanes: int = 8) -> ExperimentResult:
    """Sensitivity of DESIGN.md's main modeling choices.

    Three sweeps over the knobs the design fixes by fiat:

    - the multicast *coalescing window* (too small → duplicate fetches;
      beyond the dispatch horizon → no further benefit, only added
      latency on the first use);
    - the *stream chunk size* (smaller chunks pipeline better but pay
      per-chunk overheads; larger chunks serialize stages);
    - the dispatcher *queue depth* (1 starves lanes; deep queues lose
      nothing under late binding because LOW_WATER caps effective depth).
    """
    import dataclasses

    from repro.workloads.spmv import SpmvWorkload
    from repro.workloads.synthetic import SharedReadTasks, SkewedTasks

    sections = []

    # 1. Multicast window.
    windows = [0, 8, 16, 32, 64, 128]
    window_cycles = []
    window_fetches = []
    for window in windows:
        cfg = dataclasses.replace(default_delta_config(lanes=lanes),
                                  mcast_window=window)
        w = SharedReadTasks(num_tasks=32, region_bytes=8192)
        result = Delta(cfg).run(w.build_program())
        w.check(result.state)
        window_cycles.append(result.cycles)
        window_fetches.append(result.metrics.mcast.fetches)
    sections.append(series_table(
        "window", windows,
        {"cycles": window_cycles, "fetches": window_fetches},
        title="A1a: multicast coalescing window (micro-shared)"))

    # 2. Stream chunk size.
    chunks = [64, 128, 256, 512, 1024]
    chunk_cycles = []
    for chunk in chunks:
        cfg = default_delta_config(lanes=lanes)
        cfg = dataclasses.replace(
            cfg, lane=dataclasses.replace(cfg.lane,
                                          stream_chunk_bytes=chunk))
        w = SpmvWorkload()
        result = Delta(cfg).run(w.build_program())
        w.check(result.state)
        chunk_cycles.append(result.cycles)
    sections.append(series_table(
        "chunk B", chunks, {"cycles": chunk_cycles},
        title="A1b: stream chunk size (spmv)"))

    # 3. Dispatcher queue depth.
    depths = [1, 2, 4, 8, 16]
    depth_cycles = []
    for depth in depths:
        cfg = default_delta_config(lanes=lanes)
        cfg = dataclasses.replace(
            cfg, dispatch=dataclasses.replace(cfg.dispatch,
                                              queue_depth=depth))
        w = SkewedTasks()
        result = Delta(cfg).run(w.build_program())
        w.check(result.state)
        depth_cycles.append(result.cycles)
    sections.append(series_table(
        "queue depth", depths, {"cycles": depth_cycles},
        title="A1c: dispatch queue depth (micro-skewed)"))

    data = {
        "windows": windows, "window_cycles": window_cycles,
        "window_fetches": window_fetches,
        "chunks": chunks, "chunk_cycles": chunk_cycles,
        "depths": depths, "depth_cycles": depth_cycles,
    }
    return ExperimentResult("A1", "design-choice sensitivity", data,
                            "\n\n".join(sections))


ALL_EXPERIMENTS = {
    "T1": t1_machine_config,
    "T2": t2_workload_table,
    "F1": f1_headline_speedup,
    "F2": f2_ablation,
    "F3": f3_lane_scaling,
    "F4": f4_load_balance,
    "F5": f5_traffic,
    "F6": f6_granularity,
    "F7": f7_policies,
    "F8": f8_energy,
    "F9": f9_extensions,
    "F10": f10_software_runtime,
    "A1": a1_design_sensitivity,
    "R1": r1_resilience,
    "T3": t3_area,
}
