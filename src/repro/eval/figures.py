"""Plain-text "figures": bar charts and series tables.

The paper's figures are bar charts (per-workload speedups, ablations) and
line plots (scaling). We render both as text so every figure regenerates
in a terminal and diffs cleanly in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 46,
              unit: str = "x") -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(empty chart)"
    peak = max(values)
    if peak <= 0:
        raise ValueError("bar_chart requires a positive maximum")
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width))
        lines.append(f"{label:<{label_w}}  {value:>6.2f}{unit} {bar}")
    return "\n".join(lines)


def series_table(x_label: str, x_values: Sequence,
                 series: dict[str, Sequence[float]],
                 title: str = "") -> str:
    """A line-plot substitute: one column per series, one row per x."""
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    headers = [x_label] + list(series)
    widths = [max(len(h), 8) for h in headers]
    lines = [title] if title else []
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for i, x in enumerate(x_values):
        row = [str(x)] + [f"{series[name][i]:.2f}" for name in series]
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
