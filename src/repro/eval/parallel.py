"""Parallel, cached fan-out of the evaluation loop.

Every (workload, machine pair) point in a sweep is independent — the
embarrassingly parallel structure task-graph runtimes exploit — so the
suite fans ``compare()`` calls out over ``multiprocessing`` workers:

1. resolve each point against the on-disk :class:`~repro.eval.cache
   .EvalCache` (when one is given) — warm sweeps run zero simulations;
2. coalesce identical in-flight points: duplicates of a key already in
   this batch are never submitted — the leader's result fans out to them
   (the synchronous twin of :class:`repro.store.coalesce.Coalescer`,
   counted as ``cache.coalesced``);
3. submit the remaining misses to a process pool (``--jobs`` workers,
   default ``os.cpu_count()``), each worker re-running the exact serial
   ``compare()`` path;
4. any per-point failure — pickling, a per-point timeout, a crashed
   worker, pool creation itself — falls back to recomputing that point
   serially in the parent, so the parallel path can only ever be a
   speedup, never a behaviour change.

Results are field-identical to the serial path by the determinism
contract: all randomness is seeded from the configuration
(:mod:`repro.util.rng`), never from process state, so a worker process
computes bit-for-bit the same :class:`Comparison` the parent would.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Optional, Sequence

from repro.arch.config import (
    MachineConfig,
    default_baseline_config,
    default_delta_config,
)
from repro.eval.cache import EvalCache, comparison_key
from repro.store.metrics import NULL_METRICS
from repro.workloads import all_workloads
from repro.workloads.base import Workload

#: One evaluation point: (workload, delta config, static config, verify).
PointSpec = tuple  # (Workload, MachineConfig, MachineConfig, bool)

#: Per-point progress callback: ``(index, result_or_None, outcome)``.
PointCallback = Callable[[int, object, str], None]


class PointTimeoutError(RuntimeError):
    """A point blew its per-point budget twice — in the pool *and* in the
    bounded serial recompute — so it is genuinely hung, not just slow."""


class _Cancelled(Exception):
    """Internal: the caller's cancel event fired while a point was pending.

    Never escapes :func:`run_points` — cancelled points are reported with
    outcome ``"cancelled"`` (result ``None``), not as an exception."""


#: How often a cancellable wait re-checks the cancel event, in seconds.
_CANCEL_POLL_S = 0.05

#: How many times one point may lose its worker (breaking the pool) and
#: still be resubmitted to a rebuilt pool before the serial fallback.
_WORKER_DEATH_RETRIES = 1


def _await_result(future, timeout: Optional[float],
                  cancel: Optional[threading.Event],
                  heartbeat: Optional[Callable[[], None]] = None):
    """Wait on a pool future under an optional budget and cancel event.

    Returns the future's result; raises :class:`FutureTimeoutError` when
    the budget runs out first, :class:`_Cancelled` when the event fires
    first. Without a cancel event or heartbeat this is exactly
    ``future.result``; with either, the wait polls in short slices so
    cooperative cancellation takes effect within :data:`_CANCEL_POLL_S`
    rather than after the (possibly unbounded) point finishes, and
    ``heartbeat()`` fires every slice — how a served job's lease stays
    warm while its points compute.
    """
    if cancel is None and heartbeat is None:
        return future.result(timeout=timeout)
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        if heartbeat is not None:
            heartbeat()
        if cancel is not None and cancel.is_set():
            raise _Cancelled()
        slice_s = _CANCEL_POLL_S
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FutureTimeoutError()
            slice_s = min(slice_s, remaining)
        try:
            return future.result(timeout=slice_s)
        except FutureTimeoutError:
            continue  # re-check cancel / deadline, then keep waiting


def default_jobs() -> int:
    """Worker count when the caller does not choose: every core."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a jobs request: None/0 honours ``REPRO_JOBS`` then 1.

    The environment hook lets whole-suite callers (benchmarks, report
    generation) opt into parallelism without threading a parameter through
    every experiment signature.
    """
    if jobs is not None and jobs > 0:
        return jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            parsed = int(env)
        except ValueError:
            parsed = 0
        if parsed > 0:
            return parsed
    return 1


def _worker_init() -> None:
    """Reset inherited signal plumbing in a freshly started pool worker.

    Fork-context workers inherit the parent's signal handlers *and* its
    ``signal.set_wakeup_fd`` target. Under an asyncio host (``repro
    serve``) that target is the event loop's self-pipe, so a SIGTERM
    delivered to a worker — which is exactly what broken-pool cleanup
    sends to the survivors after a sibling dies — would (a) be swallowed
    by the inherited no-op handler, leaving an orphan, and (b) be
    *forwarded into the parent's loop* through the shared pipe, making
    the server believe it was asked to shut down. Restoring defaults
    keeps worker signals inside the worker.
    """
    signal.set_wakeup_fd(-1)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, signal.SIG_DFL)


def _compare_point(spec: PointSpec):
    """Worker entry: run one point through the ordinary serial path."""
    from repro.eval.runner import compare

    workload, delta_config, static_config, verify = spec
    return compare(workload, delta_config, static_config, verify=verify)


def _recover_point(spec: PointSpec, timeout: Optional[float],
                   cancel: Optional[threading.Event] = None):
    """Recompute one point serially, under the same per-point budget.

    Without a budget this is a plain in-process recompute. With one, the
    recompute runs in a single-worker pool bounded by the same ``timeout``
    the parallel pass used — a point that hangs must not hang the whole
    suite on the fallback path. A second timeout raises
    :class:`PointTimeoutError`; any non-timeout failure of the pool
    machinery falls through to the unbounded in-process path so genuine
    simulation errors surface exactly as the serial path raises them.

    ``cancel`` makes the bounded wait cooperative: a cancel event that
    fires while the recompute is still pending raises :class:`_Cancelled`
    (the point reports outcome ``"cancelled"``) instead of letting a
    timeout — or the pool teardown racing the dying worker — escape as an
    error the caller never asked for.
    """
    if cancel is not None and cancel.is_set():
        raise _Cancelled()
    if timeout is None:
        return _compare_point(spec)
    pool = None
    try:
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        pool = ProcessPoolExecutor(max_workers=1, mp_context=context,
                                   initializer=_worker_init)
        future = pool.submit(_compare_point, spec)
        return _await_result(future, timeout, cancel)
    except _Cancelled:
        raise
    except FutureTimeoutError:
        workload = spec[0]
        raise PointTimeoutError(
            f"evaluation point {workload.name!r} exceeded its {timeout:g}s "
            f"budget in the worker pool and again in the serial recompute"
        ) from None
    except Exception:
        if cancel is not None and cancel.is_set():
            # The teardown of a cancelled pool can surface as a broken
            # future; cancellation wins over any such secondary error.
            raise _Cancelled() from None
        return _compare_point(spec)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def run_points(points: Sequence[PointSpec],
               jobs: int,
               timeout: Optional[float] = None,
               outcomes: Optional[list] = None,
               cancel: Optional[threading.Event] = None,
               on_point: Optional[PointCallback] = None,
               heartbeat: Optional[Callable[[], None]] = None,
               max_pool_rebuilds: int = 1,
               metrics=NULL_METRICS) -> list:
    """Evaluate points, fanning out over ``jobs`` worker processes.

    ``timeout`` bounds each point's wall-clock seconds in the pool; a
    point that exceeds it (or fails to pickle) is recomputed serially in
    the parent — still under the same budget when the failure was a
    timeout (see :func:`_recover_point`). Genuine simulation errors — a
    workload failing functional verification, an invalid configuration —
    therefore surface exactly as the serial path would raise them.

    **Worker death is survivable.** A ``kill -9`` of a pool child breaks
    the whole ``ProcessPoolExecutor`` (every unfinished future poisons
    with ``BrokenProcessPool``); instead of falling back to serial for
    the rest of the batch, the pool is rebuilt (up to
    ``max_pool_rebuilds`` times) and only the poisoned points are
    resubmitted. A point that completes in a rebuilt pool reports outcome
    ``"retried"``; a point that keeps killing its worker (more than
    :data:`_WORKER_DEATH_RETRIES` deaths, or deaths past the rebuild
    budget) is recomputed serially with outcome ``"lost-worker"`` — one
    murdered child degrades to one retried point, never a failed sweep.
    ``metrics`` (an object with ``add``) counts ``worker_deaths``,
    ``pool_rebuilds``, ``retried_points`` and ``lost_worker_points``.

    ``cancel`` is a cooperative stop: once the event fires, every point
    not yet computed — including one mid-recompute after a timeout —
    resolves to result ``None`` with outcome ``"cancelled"``; nothing is
    raised. ``heartbeat()`` fires once per poll slice while any point is
    awaited — the lease-renewal seam for ``repro serve``.
    ``on_point(index, result, outcome)`` fires as each point resolves
    (the streaming seam ``repro serve`` feeds from); a callback exception
    propagates and aborts the batch.

    ``outcomes``, when given, is filled in place with one entry per
    point: ``"ok"``, ``"retried"``, ``"lost-worker"``, ``"recovered"``
    (serial fallback after a non-timeout failure),
    ``"recovered-after-timeout"``, or ``"cancelled"``.
    """
    points = list(points)
    results: list = [None] * len(points)
    if outcomes is not None:
        outcomes[:] = ["ok"] * len(points)

    def settle(index: int, result, outcome: str) -> None:
        results[index] = result
        if outcomes is not None:
            outcomes[index] = outcome
        if on_point is not None:
            on_point(index, result, outcome)

    if jobs <= 1 or len(points) <= 1:
        for index, spec in enumerate(points):
            if heartbeat is not None:
                heartbeat()
            if cancel is not None and cancel.is_set():
                settle(index, None, "cancelled")
            else:
                settle(index, _compare_point(spec), "ok")
        return results

    redo: list[int] = []          # serial fallback: non-pool failures
    lost: list[int] = []          # serial fallback: repeat worker-killers
    timed_out: set[int] = set()
    cancelled: set[int] = set()
    #: index -> how many times this point's worker died under it.
    deaths: dict[int, int] = {}
    pending = list(range(len(points)))
    rebuilds = 0
    try:
        while pending:
            # fork (where available) shares the already-imported
            # simulator; spawn works too because workers only need the
            # repro package.
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=context,
                initializer=_worker_init)
            broken_inflight: list[int] = []
            pool_broken = False
            try:
                futures = {index: pool.submit(_compare_point, points[index])
                           for index in pending}
                for index in pending:
                    future = futures[index]
                    if cancel is not None and cancel.is_set():
                        future.cancel()
                        cancelled.add(index)
                        continue
                    if pool_broken:
                        # Poisoned by the same break; classified below.
                        broken_inflight.append(index)
                        continue
                    try:
                        settle(index,
                               _await_result(future, timeout, cancel,
                                             heartbeat),
                               "retried" if deaths.get(index) else "ok")
                        if deaths.get(index):
                            metrics.add("retried_points")
                    except _Cancelled:
                        future.cancel()
                        cancelled.add(index)
                    except FutureTimeoutError:
                        future.cancel()
                        timed_out.add(index)
                        redo.append(index)
                    except Exception:
                        # BrokenProcessPool poisons every later future;
                        # any other per-point error is retried serially
                        # so the serial path is the one that reports it.
                        from concurrent.futures.process import \
                            BrokenProcessPool

                        if isinstance(future.exception(),
                                      BrokenProcessPool):
                            pool_broken = True
                            metrics.add("worker_deaths")
                            broken_inflight.append(index)
                        else:
                            redo.append(index)
            finally:
                # wait=False: a worker stuck past its timeout must not
                # block the fallback path; its point is recomputed in
                # the parent.
                pool.shutdown(wait=False, cancel_futures=True)
            pending = []
            if broken_inflight:
                for index in broken_inflight:
                    deaths[index] = deaths.get(index, 0) + 1
                if rebuilds < max_pool_rebuilds:
                    rebuilds += 1
                    metrics.add("pool_rebuilds")
                    for index in broken_inflight:
                        if deaths[index] > _WORKER_DEATH_RETRIES:
                            lost.append(index)
                        else:
                            pending.append(index)
                else:
                    # Rebuild budget spent: whatever was in flight goes
                    # to the bounded serial path instead of a new pool.
                    lost.extend(broken_inflight)
    except Exception:
        # Pool creation / submission failed (e.g. unpicklable workload):
        # everything unresolved falls back to serial.
        redo = [i for i, r in enumerate(results) if r is None
                and i not in cancelled and i not in lost]

    for index in sorted(cancelled):
        settle(index, None, "cancelled")
    for index in sorted(lost):
        if heartbeat is not None:
            heartbeat()
        try:
            result = _recover_point(points[index], None, cancel)
        except _Cancelled:
            settle(index, None, "cancelled")
            continue
        metrics.add("lost_worker_points")
        settle(index, result, "lost-worker")
    for index in redo:
        if heartbeat is not None:
            heartbeat()
        bounded = index in timed_out
        try:
            result = _recover_point(points[index],
                                    timeout if bounded else None, cancel)
        except _Cancelled:
            settle(index, None, "cancelled")
            continue
        settle(index, result,
               "recovered-after-timeout" if bounded else "recovered")
    return results


def run_suite_parallel(lanes: int = 8,
                       workloads: Optional[Sequence[Workload]] = None,
                       jobs: Optional[int] = None,
                       verify: bool = True,
                       timeout: Optional[float] = None,
                       cache: Optional[EvalCache] = None,
                       delta_config: Optional[MachineConfig] = None,
                       sanitize: bool = False,
                       faults=None,
                       outcomes: Optional[list] = None,
                       cancel: Optional[threading.Event] = None,
                       on_result: Optional[PointCallback] = None,
                       heartbeat: Optional[Callable[[], None]] = None,
                       metrics=NULL_METRICS) -> list:
    """Parallel, cached equivalent of :func:`repro.eval.runner.run_suite`.

    Returns one :class:`Comparison` per workload, in input order,
    field-identical to the serial path. With a warm ``cache`` every point
    is served from disk and no simulation runs at all. Identical in-flight
    points (same workload identity, configs, and verify flag) are
    coalesced: the key's first occurrence computes, duplicates share its
    result — bit-identical by the determinism contract, and exactly one
    computation per distinct key reaches the pool. ``sanitize`` (or a
    ``delta_config`` with ``sanitize`` set) runs both machines of every
    point under the model sanitizer; ``faults`` injects a
    :class:`~repro.sim.faults.FaultPlan` into both machines of every point.
    ``outcomes``, when given, is filled with one per-workload entry:
    ``"cached"``, ``"coalesced"`` (shared a duplicate's computation),
    ``"cancelled"`` (see below), or the :func:`run_points` outcome
    (``"ok"`` / ``"retried"`` / ``"lost-worker"`` / ``"recovered"`` /
    ``"recovered-after-timeout"``). ``heartbeat`` and ``metrics`` are
    passed through to :func:`run_points` (lease renewal and pool-health
    counters for ``repro serve``).

    ``cancel`` stops the sweep cooperatively: every point not yet resolved
    when the event fires returns ``None`` with outcome ``"cancelled"``
    (never raised, never cached). ``on_result(index, comparison, outcome)``
    fires as each point resolves — immediately for cache hits, as the
    leader lands for in-batch duplicates — which is how ``repro serve``
    streams incremental per-point results.
    """
    workloads = list(workloads) if workloads is not None else all_workloads()
    delta_config = delta_config or default_delta_config(lanes=lanes)
    if sanitize and not delta_config.sanitize:
        delta_config = delta_config.with_sanitize(True)
    if faults is not None and delta_config.faults is None:
        delta_config = delta_config.with_faults(faults)
    static_config = default_baseline_config(lanes=delta_config.lanes,
                                            seed=delta_config.seed)
    if delta_config.sanitize:
        static_config = static_config.with_sanitize(True)
    if delta_config.faults is not None:
        static_config = static_config.with_faults(delta_config.faults)

    results: list = [None] * len(workloads)
    if outcomes is not None:
        outcomes[:] = ["cached"] * len(workloads)

    def settle(index: int, comparison, outcome: str) -> None:
        results[index] = comparison
        if outcomes is not None:
            outcomes[index] = outcome
        if on_result is not None:
            on_result(index, comparison, outcome)

    pending: list[tuple[int, str, PointSpec]] = []
    # The keyed in-flight map: key -> indices that share the leader's
    # result instead of being submitted themselves.
    followers: dict[str, list[int]] = {}
    for index, workload in enumerate(workloads):
        spec: PointSpec = (workload, delta_config, static_config, verify)
        key = comparison_key(workload, delta_config, static_config, verify)
        if key in followers:
            # The key is already in flight in this batch; a cache lookup
            # cannot hit (its leader just missed), so join the leader.
            followers[key].append(index)
            if cache is not None:
                cache.store.metrics.add("coalesced")
            continue
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                settle(index, hit, "cached")
                continue
        followers[key] = []
        pending.append((index, key, spec))

    def on_point(pending_index: int, comparison, outcome: str) -> None:
        # Map the batch index back to the suite index, fan the leader's
        # result out to its in-batch duplicates, and publish to the cache
        # — all as the point lands, so callers stream incrementally.
        index, key, _spec = pending[pending_index]
        settle(index, comparison, outcome)
        for duplicate in followers[key]:
            settle(duplicate, comparison,
                   "cancelled" if outcome == "cancelled" else "coalesced")
        if cache is not None and comparison is not None:
            cache.put(key, comparison)

    run_points([spec for _i, _k, spec in pending],
               jobs=resolve_jobs(jobs), timeout=timeout,
               cancel=cancel, on_point=on_point,
               heartbeat=heartbeat, metrics=metrics)
    return results
