"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table.

    Numbers are right-aligned, text left-aligned; every cell is stringified
    with ``str``. Used by every benchmark target so the printed output is
    directly comparable across runs.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(value: str, width: int, original) -> str:
        if isinstance(original, (int, float)):
            return value.rjust(width)
        # Right-align numeric-looking strings ("12.5x", "1,024").
        stripped = value.replace(",", "").replace("x", "").replace(
            "%", "").replace(".", "").replace("-", "")
        if stripped.isdigit():
            return value.rjust(width)
        return value.ljust(width)

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, cells):
        lines.append("  ".join(align(cell, width, orig)
                               for cell, width, orig
                               in zip(row, widths, raw)))
    return "\n".join(lines)
