"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.policy_matrix import PolicyOutcome
    from repro.graph.analyses import StructureSummary


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table.

    Numbers are right-aligned, text left-aligned; every cell is stringified
    with ``str``. Used by every benchmark target so the printed output is
    directly comparable across runs.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(value: str, width: int, original) -> str:
        if isinstance(original, (int, float)):
            return value.rjust(width)
        # Right-align numeric-looking strings ("12.5x", "1,024").
        stripped = value.replace(",", "").replace("x", "").replace(
            "%", "").replace(".", "").replace("-", "")
        if stripped.isdigit():
            return value.rjust(width)
        return value.ljust(width)

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, cells):
        lines.append("  ".join(align(cell, width, orig)
                               for cell, width, orig
                               in zip(row, widths, raw)))
    return "\n".join(lines)


def structure_table(summaries: Sequence["StructureSummary"],
                    lanes: int = 8) -> str:
    """Recovered-structure table: one row per program summary.

    Reads the :class:`~repro.graph.analyses.StructureSummary` analyses by
    name — tasks and typed edges, barrier phases, total and critical-path
    work, inherent parallelism with its lane-bounded speedup limit, and
    the sharing sets (region count and summed reader degree).
    """
    rows = []
    for s in summaries:
        degrees = sum(sh.degree for sh in s.sharing)
        rows.append([
            s.program, s.tasks, s.edges, s.phases,
            f"{s.total_work:,.0f}", f"{s.cp_work:,.0f}",
            f"{s.parallelism:.1f}",
            f"{s.speedup_bound(lanes):.2f}x",
            f"{s.shared_regions}/{degrees}" if s.shared_regions else "-",
        ])
    return format_table(
        ["program", "tasks", "edges", "phases", "work", "cp work",
         "T1/Tinf", f"bound@{lanes}", "sharing (sets/readers)"],
        rows, title=f"recovered program structure ({lanes} lanes)")


def policy_matrix_table(outcomes: Sequence["PolicyOutcome"],
                        lanes: int = 8) -> str:
    """Tournament standings: one row per policy, winner first.

    Rows are ranked by fault-free geomean speedup (the ``*`` marks the
    winner). ``faulty`` is the same geomean under the canned fault plan
    and ``degrade`` how much of the policy's own clean speedup that
    costs; ``steals`` renders as hits/attempts. Workloads a policy could
    not finish under faults land in the last column and are excluded
    from its faulty geomean.
    """
    ranked = sorted(outcomes, key=lambda o: o.speedup, reverse=True)
    rows = []
    for index, o in enumerate(ranked):
        marker = "*" if index == 0 else " "
        degrade = ("-" if o.degradation != o.degradation
                   else f"{o.degradation:+.1%}")
        steals = ("-" if not o.steal_attempts
                  else f"{o.steal_hits:,.0f}/{o.steal_attempts:,.0f}")
        rows.append([
            f"{marker}{o.policy}",
            "yes" if o.uses_structure else "-",
            f"{o.speedup:.2f}x",
            "-" if o.faulty_speedup != o.faulty_speedup
            else f"{o.faulty_speedup:.2f}x",
            degrade,
            f"{o.pool_peak:,.0f}",
            steals,
            f"{o.inversions:,.0f}" if o.inversions else "-",
            ", ".join(o.failures) if o.failures else "-",
        ])
    return format_table(
        ["policy", "hints", "speedup", "faulty", "degrade", "pool pk",
         "steals", "inversions", "failed under faults"],
        rows, title=f"policy tournament ({lanes} lanes, "
                    f"geomean vs static baseline)")


def resilience_table(rates: Sequence[float],
                     speedups: Sequence[float],
                     delta_throughput: Sequence[float],
                     static_throughput: Sequence[float],
                     lanes: int = 8) -> str:
    """Fault-rate sweep table: one row per injected fault rate.

    ``speedups`` are the geomean Delta-vs-static speedups at each rate;
    the throughput columns are each machine's geomean cycles relative to
    its own fault-free run (1.00 = no slowdown). The last column is how
    much of its fault-free advantage Delta keeps at that rate.
    """
    rows = []
    for rate, speedup, d_thr, s_thr in zip(rates, speedups,
                                           delta_throughput,
                                           static_throughput):
        rows.append([
            f"{rate:.0%}",
            f"{speedup:.2f}x",
            f"{d_thr:.3f}",
            f"{s_thr:.3f}",
            f"{speedup / speedups[0]:.2f}x" if speedups[0] else "-",
        ])
    return format_table(
        ["fault rate", "speedup", "delta thr", "static thr",
         "rel. advantage"],
        rows, title=f"resilience under injected faults ({lanes} lanes)")
