"""Run one workload on both machines and compare.

This is the core evaluation loop: build a fresh program for each machine
(kernels mutate state), simulate, verify functional results against the
workload's reference implementation, and return both run results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.config import (
    MachineConfig,
    default_baseline_config,
    default_delta_config,
)
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.core.result import RunResult
from repro.util.stats import geomean
from repro.workloads import all_workloads
from repro.workloads.base import Workload


@dataclass
class Comparison:
    """Delta vs static results for one workload."""

    workload: str
    delta: RunResult
    static: RunResult

    @property
    def speedup(self) -> float:
        """Delta's speedup over the static-parallel design."""
        return self.static.cycles / self.delta.cycles

    @property
    def traffic_ratio(self) -> float:
        """Static DRAM bytes / Delta DRAM bytes (>1 = Delta saves)."""
        if self.delta.dram_bytes == 0:
            return float("inf")
        return self.static.dram_bytes / self.delta.dram_bytes

    def row(self) -> list:
        """Table row used by several reports."""
        return [self.workload, f"{self.delta.cycles:,.0f}",
                f"{self.static.cycles:,.0f}", f"{self.speedup:.2f}x",
                f"{self.delta.imbalance_cv:.3f}",
                f"{self.static.imbalance_cv:.3f}"]


def compare(workload: Workload,
            delta_config: Optional[MachineConfig] = None,
            static_config: Optional[MachineConfig] = None,
            verify: bool = True) -> Comparison:
    """Simulate one workload on Delta and on the static baseline."""
    delta_config = delta_config or default_delta_config()
    static_config = static_config or default_baseline_config(
        lanes=delta_config.lanes, seed=delta_config.seed)

    delta_result = Delta(delta_config).run(workload.build_program())
    static_result = StaticParallel(static_config).run(
        workload.build_program())
    if verify:
        workload.check(delta_result.state)
        workload.check(static_result.state)
    return Comparison(workload.name, delta_result, static_result)


def run_suite(lanes: int = 8,
              workloads: Optional[Sequence[Workload]] = None,
              verify: bool = True) -> list[Comparison]:
    """Compare every evaluation workload at the given lane count."""
    workloads = list(workloads) if workloads is not None else all_workloads()
    delta_config = default_delta_config(lanes=lanes)
    return [compare(w, delta_config, verify=verify) for w in workloads]


def suite_geomean(comparisons: Sequence[Comparison]) -> float:
    """Geomean speedup across a comparison set."""
    return geomean([c.speedup for c in comparisons])
