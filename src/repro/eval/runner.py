"""Run one workload on both machines and compare.

This is the core evaluation loop: build a fresh program for each machine
(kernels mutate state), simulate, verify functional results against the
workload's reference implementation, and return both run results.

Sweeps go through :func:`run_suite`, which can fan points out over worker
processes and serve repeats from the on-disk result cache (see
:mod:`repro.eval.parallel` and :mod:`repro.eval.cache`); the serial path
here remains the reference semantics that the parallel path must match
field-for-field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.cache import EvalCache

from repro.arch.config import (
    MachineConfig,
    default_baseline_config,
    default_delta_config,
)
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.core.result import RunResult
from repro.util.stats import geomean
from repro.workloads import all_workloads
from repro.workloads.base import Workload


@dataclass
class Comparison:
    """Delta vs static results for one workload."""

    workload: str
    delta: RunResult
    static: RunResult

    @property
    def speedup(self) -> float:
        """Delta's speedup over the static-parallel design."""
        if self.delta.cycles == 0:
            return float("inf")
        return self.static.cycles / self.delta.cycles

    @property
    def traffic_ratio(self) -> float:
        """Static DRAM bytes / Delta DRAM bytes (>1 = Delta saves)."""
        if self.delta.dram_bytes == 0:
            return float("inf")
        return self.static.dram_bytes / self.delta.dram_bytes

    def row(self) -> list:
        """Table row used by several reports."""
        return [self.workload, f"{self.delta.cycles:,.0f}",
                f"{self.static.cycles:,.0f}", f"{self.speedup:.2f}x",
                f"{self.delta.imbalance_cv:.3f}",
                f"{self.static.imbalance_cv:.3f}"]


#: Count of simulations run in this process — each compare() simulates the
#: workload on both machines. Tests use this to assert that cache hits
#: skip simulation entirely.
_simulations = 0


def simulation_count() -> int:
    """How many compare() simulations this process has executed."""
    return _simulations


def compare(workload: Workload,
            delta_config: Optional[MachineConfig] = None,
            static_config: Optional[MachineConfig] = None,
            verify: bool = True) -> Comparison:
    """Simulate one workload on Delta and on the static baseline."""
    global _simulations
    delta_config = delta_config or default_delta_config()
    static_config = static_config or default_baseline_config(
        lanes=delta_config.lanes, seed=delta_config.seed)

    _simulations += 1
    delta_result = Delta(delta_config).run(workload.build_program())
    static_result = StaticParallel(static_config).run(
        workload.build_program())
    if verify:
        workload.check(delta_result.state)
        workload.check(static_result.state)
    return Comparison(workload.name, delta_result, static_result)


def run_suite(lanes: int = 8,
              workloads: Optional[Sequence[Workload]] = None,
              verify: bool = True,
              jobs: Optional[int] = None,
              timeout: Optional[float] = None,
              cache: Optional["EvalCache"] = None) -> list[Comparison]:
    """Compare every evaluation workload at the given lane count.

    ``jobs`` > 1 fans points out over worker processes (``jobs=None``
    honours the ``REPRO_JOBS`` environment variable, defaulting to the
    serial path); ``cache`` serves repeated points from disk. Both paths
    return field-identical results — see :mod:`repro.eval.parallel`.
    """
    from repro.eval.parallel import resolve_jobs, run_suite_parallel

    workloads = list(workloads) if workloads is not None else all_workloads()
    if resolve_jobs(jobs) != 1 or cache is not None:
        return run_suite_parallel(lanes=lanes, workloads=workloads,
                                  jobs=jobs, verify=verify, timeout=timeout,
                                  cache=cache)
    delta_config = default_delta_config(lanes=lanes)
    return [compare(w, delta_config, verify=verify) for w in workloads]


def suite_geomean(comparisons: Sequence[Comparison]) -> float:
    """Geomean speedup across a comparison set."""
    return geomean([c.speedup for c in comparisons])
