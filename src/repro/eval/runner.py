"""Run one workload on both machines and compare.

This is the core evaluation loop: build a fresh program for each machine
(kernels mutate state), simulate, verify functional results against the
workload's reference implementation, and return both run results.

Sweeps go through :func:`run_suite`, which can fan points out over worker
processes and serve repeats from the on-disk result cache (see
:mod:`repro.eval.parallel` and :mod:`repro.eval.cache`); the serial path
here remains the reference semantics that the parallel path must match
field-for-field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.cache import EvalCache
    from repro.graph.analyses import StructureSummary
    from repro.graph.cache import StructureCache
    from repro.sim.faults import FaultPlan

from repro.arch.config import (
    MachineConfig,
    default_baseline_config,
    default_delta_config,
)
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.core.result import RunResult
from repro.sched import policy_uses_structure
from repro.util.stats import geomean
from repro.workloads import all_workloads
from repro.workloads.base import Workload


@dataclass
class Comparison:
    """Delta vs static results for one workload.

    ``structure`` is optionally filled by :func:`attach_structure` with the
    workload's recovered-structure summary (:mod:`repro.graph`), which adds
    the critical-path speedup bound to reports. It is deliberately outside
    the comparison fingerprint: structure is an *analysis* of the program,
    not a measured statistic.
    """

    workload: str
    delta: RunResult
    static: RunResult
    structure: Optional["StructureSummary"] = None

    @property
    def speedup(self) -> float:
        """Delta's speedup over the static-parallel design."""
        if self.delta.cycles == 0:
            return float("inf")
        return self.static.cycles / self.delta.cycles

    @property
    def traffic_ratio(self) -> float:
        """Static DRAM bytes / Delta DRAM bytes (>1 = Delta saves)."""
        if self.delta.dram_bytes == 0:
            return float("inf")
        return self.static.dram_bytes / self.delta.dram_bytes

    @property
    def lanes(self) -> int:
        """Lane count both machines ran with."""
        return len(self.delta.lane_busy)

    @property
    def cp_bound(self) -> Optional[float]:
        """Critical-path speedup bound min(L, T1/T∞), if structure known.

        An upper bound on *any* dynamic schedule's speedup at this lane
        count; the measured speedup should sit below it.
        """
        if self.structure is None:
            return None
        return self.structure.speedup_bound(self.lanes)

    def row(self) -> list:
        """Table row used by several reports."""
        return [self.workload, f"{self.delta.cycles:,.0f}",
                f"{self.static.cycles:,.0f}", f"{self.speedup:.2f}x",
                f"{self.delta.imbalance_cv:.3f}",
                f"{self.static.imbalance_cv:.3f}"]

    def row_with_bound(self) -> list:
        """:meth:`row` plus the critical-path bound column (appended last
        so golden-file parsers keyed on the first columns keep working)."""
        bound = self.cp_bound
        return self.row() + ["-" if bound is None else f"{bound:.2f}x"]


#: Count of simulations run in this process — each compare() simulates the
#: workload on both machines. Tests use this to assert that cache hits
#: skip simulation entirely.
_simulations = 0


def simulation_count() -> int:
    """How many compare() simulations this process has executed."""
    return _simulations


def compare(workload: Workload,
            delta_config: Optional[MachineConfig] = None,
            static_config: Optional[MachineConfig] = None,
            verify: bool = True) -> Comparison:
    """Simulate one workload on Delta and on the static baseline.

    A derived static config inherits ``delta_config.sanitize`` and
    ``delta_config.faults``, so one flag (or one fault plan) covers the
    whole comparison.
    """
    global _simulations
    delta_config = delta_config or default_delta_config()
    if static_config is None:
        static_config = default_baseline_config(
            lanes=delta_config.lanes, seed=delta_config.seed)
        if delta_config.sanitize:
            static_config = static_config.with_sanitize(True)
        if delta_config.faults is not None:
            static_config = static_config.with_faults(delta_config.faults)

    _simulations += 1
    sched_hints = None
    if policy_uses_structure(delta_config.dispatch.policy):
        # Structure-aware policies read hints recovered from a twin
        # build (recovery executes kernels, so it must never touch the
        # instance that will simulate). Online policies skip the cost.
        from repro.sched.structure import hints_from_factory

        sched_hints = hints_from_factory(workload.build_program)
    delta_result = Delta(delta_config).run(workload.build_program(),
                                           sched_hints=sched_hints)
    static_result = StaticParallel(static_config).run(
        workload.build_program())
    if verify:
        workload.check(delta_result.state)
        workload.check(static_result.state)
    return Comparison(workload.name, delta_result, static_result)


def run_suite(lanes: int = 8,
              workloads: Optional[Sequence[Workload]] = None,
              verify: bool = True,
              jobs: Optional[int] = None,
              timeout: Optional[float] = None,
              cache: Optional["EvalCache"] = None,
              sanitize: bool = False,
              faults: Optional["FaultPlan"] = None,
              cancel=None,
              on_result=None) -> list[Comparison]:
    """Compare every evaluation workload at the given lane count.

    ``jobs`` > 1 fans points out over worker processes (``jobs=None``
    honours the ``REPRO_JOBS`` environment variable, defaulting to the
    serial path); ``cache`` serves repeated points from disk. Both paths
    return field-identical results — see :mod:`repro.eval.parallel`.
    ``sanitize`` runs every point under the model sanitizer (identical
    results, plus invariant checking); ``faults`` injects the given
    :class:`~repro.sim.faults.FaultPlan` into both machines of every point.
    ``cancel`` (a ``threading.Event``) stops the sweep cooperatively and
    ``on_result(index, comparison, outcome)`` streams per-point progress;
    either one routes through the parallel harness, which owns those
    semantics.
    """
    from repro.eval.parallel import resolve_jobs, run_suite_parallel

    workloads = list(workloads) if workloads is not None else all_workloads()
    if (resolve_jobs(jobs) != 1 or cache is not None
            or cancel is not None or on_result is not None):
        return run_suite_parallel(lanes=lanes, workloads=workloads,
                                  jobs=jobs, verify=verify, timeout=timeout,
                                  cache=cache, sanitize=sanitize,
                                  faults=faults, cancel=cancel,
                                  on_result=on_result)
    delta_config = default_delta_config(lanes=lanes)
    if sanitize:
        delta_config = delta_config.with_sanitize(True)
    if faults is not None:
        delta_config = delta_config.with_faults(faults)
    return [compare(w, delta_config, verify=verify) for w in workloads]


def suite_geomean(comparisons: Sequence[Comparison]) -> float:
    """Geomean speedup across a comparison set."""
    return geomean([c.speedup for c in comparisons])


def workload_structures(workloads: Sequence[Workload],
                        cache: Optional["StructureCache"] = None,
                        ) -> dict:
    """Recovered-structure summaries keyed by workload name.

    Workloads whose programs fail structure validation are skipped (they
    cannot run either); with a cache, warm entries skip re-expansion.
    """
    from repro.graph.cache import structure_summary
    from repro.graph.ir import GraphValidationError

    structures = {}
    for workload in workloads:
        try:
            structures[workload.name] = structure_summary(workload,
                                                          cache=cache)
        except GraphValidationError:
            continue
    return structures


def attach_structure(comparisons: Sequence[Comparison],
                     workloads: Optional[Sequence[Workload]] = None,
                     cache: Optional["StructureCache"] = None,
                     ) -> Sequence[Comparison]:
    """Fill each comparison's ``structure`` with its recovered summary.

    Resolves workloads by name (pass ``workloads`` when the comparisons
    came from non-registered instances). With a
    :class:`~repro.graph.cache.StructureCache`, warm entries skip program
    re-expansion entirely. Returns the same list for chaining.
    """
    from repro.graph.cache import structure_summary
    from repro.workloads import get_workload

    by_name = {w.name: w for w in workloads} if workloads else {}
    for comparison in comparisons:
        workload = by_name.get(comparison.workload)
        if workload is None:
            try:
                workload = get_workload(comparison.workload)
            except KeyError:
                continue  # unknown/ad-hoc workload: leave structure unset
        comparison.structure = structure_summary(workload, cache=cache)
    return comparisons
