"""Instruction definitions for the Delta command ISA.

Every instruction is one 32-bit word: a 6-bit opcode plus opcode-specific
fields (see :data:`FIELD_LAYOUTS`). Field widths are chosen so evaluation-
scale programs encode without overflow while staying within one word —
matching the flavour of published stream-dataflow ISAs, where commands are
small because bulk behaviour lives in the streams, not the instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class IsaError(ValueError):
    """Raised for malformed instructions, encodings, or assembly text."""


class Opcode(enum.IntEnum):
    """Command opcodes."""

    # Fabric configuration.
    CFG = 0x01       # configure fabric with dataflow graph <dfg>
    # Stream commands.
    SIN = 0x02       # affine stream: memory -> fabric port
    SIND = 0x03      # indirect (gather) stream: memory -> fabric port
    SOUT = 0x04      # affine stream: fabric port -> memory
    SRD = 0x05       # resident read: scratchpad region -> fabric port
    SFWD = 0x06      # forward: fabric port -> remote lane's port
    # Synchronization.
    BAR = 0x07       # wait until all issued streams complete
    # TaskStream task management.
    TSPAWN = 0x10    # create a task of <ttype> with argument block <argb>
    TWORK = 0x11     # annotate pending spawn with a work estimate
    TSHARE = 0x12    # annotate a read as shared (region id)
    TSTREAM = 0x13   # annotate a dependence as a pipelined stream
    TAFTER = 0x14    # annotate a completion dependence
    TCOMMIT = 0x15   # enqueue the pending spawn to the dispatcher
    TRET = 0x16      # current task is complete


#: Field layouts: opcode -> ordered (field name, bit width). The opcode
#: itself occupies the top 6 bits; listed fields pack MSB-first below it.
FIELD_LAYOUTS: dict[Opcode, tuple[tuple[str, int], ...]] = {
    Opcode.CFG: (("dfg", 10),),
    Opcode.SIN: (("port", 4), ("addr", 12), ("length", 8), ("locality", 2)),
    Opcode.SIND: (("port", 4), ("idx_addr", 12), ("length", 8)),
    Opcode.SOUT: (("port", 4), ("addr", 12), ("length", 8), ("locality", 2)),
    Opcode.SRD: (("port", 4), ("region", 10), ("length", 8)),
    Opcode.SFWD: (("port", 4), ("lane", 6), ("length", 8)),
    Opcode.BAR: (),
    Opcode.TSPAWN: (("ttype", 8), ("argb", 12)),
    Opcode.TWORK: (("estimate", 16),),
    Opcode.TSHARE: (("region", 10), ("length", 8)),
    Opcode.TSTREAM: (("producer", 12),),
    Opcode.TAFTER: (("producer", 12),),
    Opcode.TCOMMIT: (),
    Opcode.TRET: (),
}

_OPCODE_BITS = 6
_WORD_BITS = 32


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: opcode plus named operand fields."""

    opcode: Opcode
    operands: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        layout = FIELD_LAYOUTS.get(self.opcode)
        if layout is None:
            raise IsaError(f"unknown opcode {self.opcode!r}")
        expected = {name for name, _w in layout}
        got = set(self.operands)
        if expected != got:
            raise IsaError(
                f"{self.opcode.name} expects operands {sorted(expected)}, "
                f"got {sorted(got)}")
        total = _OPCODE_BITS
        for name, width in layout:
            value = self.operands[name]
            if not 0 <= value < (1 << width):
                raise IsaError(
                    f"{self.opcode.name}.{name}={value} does not fit in "
                    f"{width} bits")
            total += width
        if total > _WORD_BITS:
            raise IsaError(
                f"{self.opcode.name} layout exceeds {_WORD_BITS} bits")

    def get(self, name: str) -> int:
        """Read one operand field."""
        return self.operands[name]

    def render(self) -> str:
        """Assembly text, e.g. ``sin port=0, addr=128, length=16``."""
        layout = FIELD_LAYOUTS[self.opcode]
        if not layout:
            return self.opcode.name.lower()
        ops = ", ".join(f"{name}={self.operands[name]}"
                        for name, _w in layout)
        return f"{self.opcode.name.lower()} {ops}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.render()}>"


def make(opcode: Opcode, **operands: int) -> Instruction:
    """Convenience constructor: ``make(Opcode.SIN, port=0, ...)``."""
    return Instruction(opcode, dict(operands))
