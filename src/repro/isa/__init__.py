"""The Delta stream-dataflow + task ISA.

Delta lanes are commanded through a small command ISA in the
stream-dataflow style: configure the fabric, launch streams between
memory/scratchpad and fabric ports, and — TaskStream's addition — task
management instructions that carry the dependence annotations
(work hints, shared-region declarations, stream dependences).

The module provides the instruction definitions, a binary encoder/decoder
(32-bit fixed-width words), a two-pass text assembler/disassembler, and a
lowering pass from :class:`~repro.core.task.TaskType` to the command
sequence a lane would execute — used by documentation, tests, and the
``examples/isa_tour.py`` walkthrough.
"""

from repro.isa.instructions import (
    Opcode,
    Instruction,
    IsaError,
    FIELD_LAYOUTS,
)
from repro.isa.encoding import encode, decode, encode_program, decode_program
from repro.isa.assembler import assemble, disassemble
from repro.isa.lower import lower_task

__all__ = [
    "Opcode",
    "Instruction",
    "IsaError",
    "FIELD_LAYOUTS",
    "encode",
    "decode",
    "encode_program",
    "decode_program",
    "assemble",
    "disassemble",
    "lower_task",
]
