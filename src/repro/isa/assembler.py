"""Text assembler / disassembler for the command ISA.

Syntax: one instruction per line, ``opcode field=value, field=value``;
``#`` starts a comment; blank lines are ignored. Values may be decimal or
``0x`` hex. The disassembler emits exactly this syntax, so
``assemble(disassemble(p)) == p``.
"""

from __future__ import annotations

from repro.isa.instructions import (
    FIELD_LAYOUTS,
    Instruction,
    IsaError,
    Opcode,
)

_BY_NAME = {op.name.lower(): op for op in Opcode}


def assemble(text: str) -> list[Instruction]:
    """Assemble a multi-line program into instructions."""
    program = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        program.append(_assemble_line(line, lineno))
    return program


def _assemble_line(line: str, lineno: int) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    opcode = _BY_NAME.get(mnemonic)
    if opcode is None:
        raise IsaError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
    operands: dict[str, int] = {}
    if len(parts) > 1:
        for chunk in parts[1].split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise IsaError(
                    f"line {lineno}: operand {chunk!r} is not name=value")
            name, value = chunk.split("=", 1)
            try:
                operands[name.strip()] = int(value.strip(), 0)
            except ValueError:
                raise IsaError(
                    f"line {lineno}: bad integer {value.strip()!r}"
                ) from None
    expected = {name for name, _w in FIELD_LAYOUTS[opcode]}
    missing = expected - set(operands)
    extra = set(operands) - expected
    if missing or extra:
        raise IsaError(
            f"line {lineno}: {opcode.name} operand mismatch "
            f"(missing {sorted(missing)}, extra {sorted(extra)})")
    return Instruction(opcode, operands)


def disassemble(program: list[Instruction]) -> str:
    """Render a program back to assembly text."""
    return "\n".join(instruction.render() for instruction in program)
