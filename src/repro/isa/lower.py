"""Lowering: from the task programming model to the command ISA.

``lower_task`` produces the command sequence a Delta lane executes for one
task instance: fabric configuration, input streams (shared reads become
resident reads after a TSHARE declaration), the spawn sequence with
annotation instructions for each child, output streams, and TRET.

This is how the library documents — executably — what the annotations in
:mod:`repro.core.annotations` look like at the hardware interface.
"""

from __future__ import annotations

from repro.core.task import Task
from repro.isa.instructions import Instruction, Opcode, make


class _IdAllocator:
    """Stable small-integer ids for names (DFGs, regions, task types)."""

    def __init__(self, limit: int) -> None:
        self._ids: dict[str, int] = {}
        self._limit = limit

    def id_of(self, name: str) -> int:
        if name not in self._ids:
            if len(self._ids) >= self._limit:
                raise ValueError(f"id space exhausted at {name!r}")
            self._ids[name] = len(self._ids)
        return self._ids[name]


def lower_task(task: Task,
               dfg_ids: _IdAllocator | None = None,
               region_ids: _IdAllocator | None = None,
               chunk_bytes: int = 256) -> list[Instruction]:
    """Lower one task instance to its lane command sequence.

    Children the task would spawn are *not* discovered here (that requires
    running the kernel); callers lower children separately. The spawn
    block in the produced listing covers the statically known dependences
    (``after`` / ``stream_from`` edges of the task itself are annotations
    on its own dispatch, emitted by its parent).
    """
    dfg_ids = dfg_ids or _IdAllocator(1 << 10)
    region_ids = region_ids or _IdAllocator(1 << 10)

    program: list[Instruction] = [
        make(Opcode.CFG, dfg=dfg_ids.id_of(task.type.dfg.name)),
    ]
    port = 0
    for spec in task.reads:
        length = _chunks(spec.nbytes, chunk_bytes)
        if spec.shared:
            region = region_ids.id_of(spec.region)
            program.append(make(Opcode.TSHARE, region=region,
                                length=length))
            program.append(make(Opcode.SRD, port=port, region=region,
                                length=length))
        elif spec.locality < 0.5:
            program.append(make(Opcode.SIND, port=port,
                                idx_addr=_addr(port), length=length))
        else:
            program.append(make(Opcode.SIN, port=port, addr=_addr(port),
                                length=length,
                                locality=_locality_code(spec.locality)))
        port += 1
    for producer in task.stream_from:
        program.append(make(Opcode.TSTREAM,
                            producer=producer.task_id & 0xFFF))
        port += 1
    out_port = 0
    if task.stream_consumers:
        for consumer in task.stream_consumers:
            program.append(make(Opcode.SFWD, port=out_port,
                                lane=0,  # bound at dispatch time
                                length=_chunks(task.write_bytes,
                                               chunk_bytes)))
    else:
        for spec in task.writes:
            program.append(make(
                Opcode.SOUT, port=out_port, addr=_addr(8 + out_port),
                length=_chunks(spec.nbytes, chunk_bytes),
                locality=_locality_code(spec.locality)))
            out_port += 1
    program.append(make(Opcode.BAR))
    program.append(make(Opcode.TRET))
    return program


def lower_spawn(child: Task,
                type_ids: _IdAllocator | None = None) -> list[Instruction]:
    """The spawn block a parent emits to create ``child``."""
    type_ids = type_ids or _IdAllocator(1 << 8)
    block: list[Instruction] = [
        make(Opcode.TSPAWN,
             ttype=type_ids.id_of(child.type.name),
             argb=child.task_id & 0xFFF),
        make(Opcode.TWORK, estimate=min(int(child.work), (1 << 16) - 1)),
    ]
    for dep in child.after:
        block.append(make(Opcode.TAFTER, producer=dep.task_id & 0xFFF))
    for producer in child.stream_from:
        block.append(make(Opcode.TSTREAM, producer=producer.task_id & 0xFFF))
    block.append(make(Opcode.TCOMMIT))
    return block


def _chunks(nbytes: int, chunk_bytes: int) -> int:
    return min(-(-nbytes // chunk_bytes), (1 << 8) - 1) if nbytes else 0


def _addr(slot: int) -> int:
    # Argument-block-relative stream base addresses, 16B-aligned slots.
    return (slot * 16) & 0xFFF


def _locality_code(locality: float) -> int:
    """Quantize [0, 1] locality into the 2-bit field."""
    return min(3, int(locality * 4))
