"""Binary encoding of the command ISA: 32-bit words, opcode in the top bits.

Layout (MSB to LSB): 6-bit opcode, then the opcode's fields in layout
order, then zero padding. Encoding and decoding round-trip exactly;
unknown opcodes and set padding bits are decode errors (they indicate a
corrupted command stream).
"""

from __future__ import annotations

from repro.isa.instructions import (
    FIELD_LAYOUTS,
    Instruction,
    IsaError,
    Opcode,
)

_WORD_BITS = 32
_OPCODE_BITS = 6


def encode(instruction: Instruction) -> int:
    """Encode one instruction into a 32-bit word."""
    layout = FIELD_LAYOUTS[instruction.opcode]
    word = int(instruction.opcode)
    used = _OPCODE_BITS
    for name, width in layout:
        word = (word << width) | instruction.operands[name]
        used += width
    word <<= (_WORD_BITS - used)
    return word


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an instruction."""
    if not 0 <= word < (1 << _WORD_BITS):
        raise IsaError(f"word out of range: {word:#x}")
    opcode_value = word >> (_WORD_BITS - _OPCODE_BITS)
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        raise IsaError(f"unknown opcode {opcode_value:#x} in {word:#010x}"
                       ) from None
    layout = FIELD_LAYOUTS[opcode]
    offset = _WORD_BITS - _OPCODE_BITS
    operands = {}
    for name, width in layout:
        offset -= width
        operands[name] = (word >> offset) & ((1 << width) - 1)
    if word & ((1 << offset) - 1):
        raise IsaError(f"nonzero padding bits in {word:#010x}")
    return Instruction(opcode, operands)


def encode_program(instructions: list[Instruction]) -> bytes:
    """Encode a command sequence as big-endian 32-bit words."""
    out = bytearray()
    for instruction in instructions:
        out.extend(encode(instruction).to_bytes(4, "big"))
    return bytes(out)


def decode_program(blob: bytes) -> list[Instruction]:
    """Decode a byte string produced by :func:`encode_program`."""
    if len(blob) % 4:
        raise IsaError(f"program length {len(blob)} is not word-aligned")
    return [decode(int.from_bytes(blob[i:i + 4], "big"))
            for i in range(0, len(blob), 4)]
