"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``                      — available workloads and experiments.
- ``run WORKLOAD``              — simulate one workload on Delta (options
  for lanes, policy, machine, tracing, feature ablation).
- ``compare WORKLOAD``          — Delta vs the static baseline.
- ``suite``                     — the full evaluation suite (F1 data).
- ``eval``                      — the suite through the parallel, cached
  harness (``--jobs``, ``--no-cache``, ``--clear-cache``, ``--cache-dir``,
  ``--cache-max-mb``; both caches share one ``repro.store`` root).
- ``experiment ID``             — run one experiment (T1..T3, F1..F10, A1).
- ``show WORKLOAD``             — DOT / ASCII views of a workload's task
  graph and kernels.
- ``serve``                     — long-running async sweep server
  (``POST /jobs``, NDJSON event streams, cancellation, ``/healthz``,
  job leases + overload shedding; see docs/serving.md, docs/chaos.md).
- ``jobs list|gc``              — inspect / prune the persisted job
  queue directly from the store, no server required.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.arch.config import (
    FeatureFlags,
    default_baseline_config,
    default_delta_config,
)
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.eval.experiments import ALL_EXPERIMENTS
from repro.eval.runner import attach_structure
from repro.eval.runner import compare as run_compare
from repro.eval.runner import run_suite, suite_geomean
from repro.eval.tables import format_table
from repro.sched import policy_names, policy_uses_structure
from repro.workloads import get_workload
from repro.workloads.registry import workload_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TaskStream/Delta reproduction — simulate task-parallel "
                    "workloads on a reconfigurable dataflow accelerator.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and experiments")

    def _add_machine_options(p):
        p.add_argument("--lanes", type=int, default=8,
                       help="number of accelerator lanes (default 8)")
        p.add_argument("--policy", default="work-aware",
                       choices=list(policy_names()),
                       help="dispatch policy (from the sched registry)")
        p.add_argument("--no-lb", action="store_true",
                       help="disable work-aware load balancing")
        p.add_argument("--no-pipe", action="store_true",
                       help="disable pipelined inter-task streams")
        p.add_argument("--no-mcast", action="store_true",
                       help="disable multicast read sharing")
        p.add_argument("--affinity", action="store_true",
                       help="enable the config-affinity extension")
        p.add_argument("--prefetch", action="store_true",
                       help="enable the stream-prefetch extension")
        p.add_argument("--sanitize", action="store_true",
                       help="run with the model sanitizer (runtime "
                            "invariant checking; identical results)")
        p.add_argument("--faults", metavar="FILE",
                       help="inject faults from a FaultPlan JSON file "
                            "(see docs/faults.md)")
        p.add_argument("--seed", type=int, default=0)

    p_run = sub.add_parser("run", help="simulate a workload on Delta")
    p_run.add_argument("workload", help="workload name (see `repro list`)")
    _add_machine_options(p_run)
    p_run.add_argument("--machine", default="delta",
                       choices=["delta", "static"])
    p_run.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace JSON of the run")
    p_run.add_argument("--counters", action="store_true",
                       help="dump all hardware counters")

    p_cmp = sub.add_parser("compare",
                           help="Delta vs the static-parallel baseline")
    p_cmp.add_argument("workload")
    _add_machine_options(p_cmp)

    p_suite = sub.add_parser("suite", help="run the full evaluation suite")
    p_suite.add_argument("--lanes", type=int, default=8)
    p_suite.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: serial, or "
                              "$REPRO_JOBS)")
    p_suite.add_argument("--sanitize", action="store_true",
                         help="run every point with the model sanitizer")
    p_suite.add_argument("--faults", metavar="FILE",
                         help="inject faults from a FaultPlan JSON file "
                              "into every point (both machines)")

    p_eval = sub.add_parser(
        "eval", help="evaluation suite via the parallel, cached harness")
    p_eval.add_argument("--lanes", type=int, default=8)
    p_eval.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: os.cpu_count())")
    p_eval.add_argument("--timeout", type=float, default=None,
                        help="per-point timeout in seconds; a timed-out "
                             "point is recomputed serially")
    p_eval.add_argument("--workloads", nargs="*", metavar="NAME",
                        help="subset of workloads (default: the full "
                             "evaluation suite)")
    p_eval.add_argument("--no-cache", action="store_true",
                        help="always simulate; do not read or write the "
                             "result cache")
    p_eval.add_argument("--clear-cache", action="store_true",
                        help="drop every cached entry (comparison AND "
                             "structure) before running")
    p_eval.add_argument("--cache-dir", metavar="DIR",
                        help="store location for both caches (default: "
                             ".repro-cache/ or $REPRO_CACHE_DIR)")
    p_eval.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB",
                        help="size cap for the on-disk store; least-"
                             "recently-used entries are evicted past it "
                             "(default: $REPRO_CACHE_MAX_MB, else "
                             "uncapped)")
    p_eval.add_argument("--sanitize", action="store_true",
                        help="run every point with the model sanitizer")
    p_eval.add_argument("--faults", metavar="FILE",
                        help="inject faults from a FaultPlan JSON file "
                             "into every point (both machines)")
    p_eval.add_argument("--policy-matrix", action="store_true",
                        help="run the scheduling-policy tournament: every "
                             "registered policy over the suite, fault-free "
                             "and under a canned fault plan (--faults "
                             "overrides the plan)")

    p_exp = sub.add_parser("experiment", help="run one experiment")
    p_exp.add_argument("experiment_id",
                       help="T1, T2, T3, F1..F10, A1 or R1 "
                            "(case-insensitive)")

    p_serve = sub.add_parser(
        "serve", help="run the async multi-tenant sweep server")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8023,
                         help="TCP port; 0 picks a free one (default 8023)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="worker processes per sweep (default: "
                              "os.cpu_count())")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-point timeout in seconds; a timed-out "
                              "point is recomputed serially")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="always simulate; do not read or write the "
                              "result cache")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         help="store location for caches AND the "
                              "persistent job queue (default: "
                              ".repro-cache/ or $REPRO_CACHE_DIR)")
    p_serve.add_argument("--cache-max-mb", type=float, default=None,
                         metavar="MB",
                         help="size cap for the on-disk store")
    p_serve.add_argument("--max-active-per-tenant", type=int, default=8,
                         metavar="N",
                         help="per-tenant quota of queued+running jobs; "
                              "submissions past it are rejected 429 "
                              "(default 8)")
    p_serve.add_argument("--max-concurrent-jobs", type=int, default=2,
                         metavar="N",
                         help="jobs executing at once; each fans out its "
                              "own --jobs worker pool (default 2)")
    p_serve.add_argument("--lease-s", type=float, default=15.0,
                         metavar="S",
                         help="running-job lease duration; a job whose "
                              "worker stops heartbeating for this long is "
                              "requeued by the watchdog (default 15)")
    p_serve.add_argument("--max-lease-attempts", type=int, default=3,
                         metavar="N",
                         help="lease losses (crashes/wedges) a job may "
                              "survive before it fails with a typed "
                              "lease-expired error (default 3)")
    p_serve.add_argument("--max-queued", type=int, default=None,
                         metavar="N",
                         help="global queued-job cap; submissions past it "
                              "shed with 503 + Retry-After (default: "
                              "uncapped)")
    p_serve.add_argument("--max-backlog-per-tenant", type=int,
                         default=None, metavar="N",
                         help="per-tenant queued-job cap; submissions "
                              "past it shed with 503 + Retry-After "
                              "(default: uncapped)")
    p_serve.add_argument("--job-ttl-s", type=float, default=24 * 3600.0,
                         metavar="S",
                         help="terminal job history older than this is "
                              "garbage-collected by the watchdog "
                              "(default 86400)")

    p_jobs = sub.add_parser(
        "jobs", help="inspect/prune the persisted job queue (offline)")
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)
    p_jobs_list = jobs_sub.add_parser(
        "list", help="list persisted job records from the store")
    p_jobs_list.add_argument("--cache-dir", metavar="DIR",
                             help="store root the server persists jobs "
                                  "under (default: .repro-cache/ or "
                                  "$REPRO_CACHE_DIR)")
    p_jobs_list.add_argument("--state", metavar="STATE", default=None,
                             help="only records in this state (queued, "
                                  "running, completed, cancelled, failed)")
    p_jobs_gc = jobs_sub.add_parser(
        "gc", help="prune terminal job records older than a cutoff")
    p_jobs_gc.add_argument("--older-than", type=float, required=True,
                           metavar="S",
                           help="age cutoff in seconds; terminal records "
                                "older than this are deleted (live "
                                "queued/running records are never touched)")
    p_jobs_gc.add_argument("--cache-dir", metavar="DIR",
                           help="store root the server persists jobs under")

    p_show = sub.add_parser("show", help="render a workload's structure")
    p_show.add_argument("workload")
    p_show.add_argument("--what", default="tasks",
                        choices=["tasks", "dfg", "mapping", "graph"],
                        help="task graph DOT, kernel DFG DOT, the fabric "
                             "placement, or the recovered TaskGraph IR "
                             "(typed-edge DOT + structure summary)")
    p_show.add_argument("--lanes", type=int, default=8,
                        help="lane count for the --what graph speedup "
                             "bound (default 8)")
    return parser


def _fault_plan(args):
    """Load the ``--faults`` plan, or None when the flag was not given."""
    if getattr(args, "faults", None) is None:
        return None
    from repro.sim.faults import FaultPlan

    return FaultPlan.load(args.faults)


def _features(args) -> FeatureFlags:
    return FeatureFlags(
        work_aware_lb=not args.no_lb,
        pipelining=not args.no_pipe,
        multicast=not args.no_mcast,
        config_affinity=args.affinity,
        prefetch=args.prefetch,
    )


def _cmd_list() -> int:
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("experiments:")
    for eid, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {eid:<3} {doc}")
    return 0


def _cmd_run(args) -> int:
    workload = get_workload(args.workload)
    program = workload.build_program()
    plan = _fault_plan(args)
    if args.machine == "delta":
        config = default_delta_config(lanes=args.lanes, seed=args.seed,
                                      features=_features(args))
        config = config.with_policy(args.policy)
        if args.sanitize:
            config = config.with_sanitize(True)
        if plan is not None:
            config = config.with_faults(plan)
        sched_hints = None
        if policy_uses_structure(args.policy):
            from repro.sched.structure import hints_from_factory

            sched_hints = hints_from_factory(workload.build_program)
        result = Delta(config).run(program, trace=bool(args.trace),
                                   sched_hints=sched_hints)
    else:
        config = default_baseline_config(lanes=args.lanes, seed=args.seed)
        if args.sanitize:
            config = config.with_sanitize(True)
        if plan is not None:
            config = config.with_faults(plan)
        result = StaticParallel(config).run(program,
                                            trace=bool(args.trace))
    workload.check(result.state)
    print(result.summary())
    print("functional check: OK (verified against the reference "
          "implementation)")
    if args.counters:
        print(result.counters.render())
    if args.trace:
        result.trace.write_chrome_trace(args.trace)
        print(f"trace written to {args.trace} "
              f"({len(result.trace.events)} events)")
    return 0


def _cmd_compare(args) -> int:
    workload = get_workload(args.workload)
    delta_cfg = default_delta_config(lanes=args.lanes, seed=args.seed,
                                     features=_features(args))
    delta_cfg = delta_cfg.with_policy(args.policy)
    if args.sanitize:
        delta_cfg = delta_cfg.with_sanitize(True)
    plan = _fault_plan(args)
    if plan is not None:
        delta_cfg = delta_cfg.with_faults(plan)
    comparison = run_compare(workload, delta_cfg)
    attach_structure([comparison], workloads=[workload])
    print(comparison.delta.summary())
    print(comparison.static.summary())
    print(f"speedup {comparison.speedup:.2f}x, "
          f"DRAM traffic reduction {comparison.traffic_ratio:.2f}x")
    if comparison.cp_bound is not None:
        s = comparison.structure
        print(f"critical-path speedup bound {comparison.cp_bound:.2f}x "
              f"at {comparison.lanes} lanes "
              f"(inherent parallelism {s.parallelism:.2f})")
    return 0


def _cmd_suite(args) -> int:
    comparisons = run_suite(lanes=args.lanes, jobs=args.jobs,
                            sanitize=args.sanitize,
                            faults=_fault_plan(args))
    rows = [c.row() for c in comparisons]
    print(format_table(
        ["workload", "delta cyc", "static cyc", "speedup",
         "delta CV", "static CV"], rows,
        title=f"evaluation suite ({args.lanes} lanes)"))
    print(f"geomean speedup: {suite_geomean(comparisons):.2f}x")
    return 0


def _cmd_eval(args) -> int:
    import time

    from repro.eval.cache import EvalCache
    from repro.eval.parallel import default_jobs, run_suite_parallel
    from repro.eval.runner import simulation_count
    from repro.graph.cache import StructureCache
    from repro.machine.metrics import MetricsBus
    from repro.store import open_store

    # One sharded store serves both caches: shared root, shared size
    # budget, shared cache.* metrics — and one --clear-cache clears both.
    bus = MetricsBus()
    store = open_store(args.cache_dir, max_mb=args.cache_max_mb,
                       metrics=bus.cache)
    if args.clear_cache:
        removed = store.clear_report()
        total = sum(removed.values())
        detail = ", ".join(f"{count} {name}"
                           for name, count in sorted(removed.items()))
        print(f"cleared {total} cached entr{'y' if total == 1 else 'ies'}"
              + (f" ({detail})" if detail else ""))
    cache = None
    structure_cache = None
    if not args.no_cache:
        cache = EvalCache(store=store)
        structure_cache = StructureCache(store=store)
    workloads = None
    if args.workloads:
        workloads = [get_workload(name) for name in args.workloads]

    jobs = args.jobs if args.jobs else default_jobs()
    if args.policy_matrix:
        return _cmd_policy_matrix(args, workloads, jobs, cache)
    sims_before = simulation_count()
    started = time.perf_counter()
    outcomes: list[str] = []
    comparisons = run_suite_parallel(lanes=args.lanes, workloads=workloads,
                                     jobs=jobs, timeout=args.timeout,
                                     cache=cache, sanitize=args.sanitize,
                                     faults=_fault_plan(args),
                                     outcomes=outcomes)
    attach_structure(comparisons, workloads=workloads,
                     cache=structure_cache)
    elapsed = time.perf_counter() - started
    rows = [c.row_with_bound() for c in comparisons]
    print(format_table(
        ["workload", "delta cyc", "static cyc", "speedup",
         "delta CV", "static CV", "cp bound"], rows,
        title=f"evaluation suite ({args.lanes} lanes, {jobs} jobs)"))
    print(f"geomean speedup: {suite_geomean(comparisons):.2f}x")
    # Simulations counted in this process: parallel points simulate in
    # workers, so a fully-warm cache run reports 0 here either way.
    local_sims = simulation_count() - sims_before
    print(f"wall-clock {elapsed:.2f}s, {len(comparisons)} points, "
          f"{local_sims} simulated in this process")
    slow = [c.workload for c, o in zip(comparisons, outcomes)
            if o == "recovered-after-timeout"]
    if slow:
        print(f"recovered after timeout ({args.timeout:g}s): "
              + ", ".join(slow))
    if cache is not None:
        print(cache.stats())
    if structure_cache is not None:
        print(structure_cache.stats())
    if cache is not None or structure_cache is not None:
        # Eviction normally runs after writes; a fully-warm run writes
        # nothing, so enforce a (possibly just-lowered) budget here too.
        store.evict_to_budget()
        m = bus.cache
        print(f"store: {m.hits:.0f} hits / {m.misses:.0f} misses "
              f"({m.hit_rate() * 100:.0f}% hit rate), "
              f"{m.coalesced:.0f} coalesced, {m.evictions:.0f} evicted, "
              f"{m.corrupt:.0f} corrupt dropped, "
              f"{m.lock_waits:.0f} lock waits")
    return 0


def _cmd_policy_matrix(args, workloads, jobs, cache) -> int:
    """``repro eval --policy-matrix``: the scheduling-policy tournament."""
    import time

    from repro.eval.policy_matrix import (
        canned_fault_plan,
        run_policy_matrix,
        tournament_winner,
    )
    from repro.eval.tables import policy_matrix_table

    if workloads is None:
        workloads = [get_workload(name) for name in workload_names()]
    plan = _fault_plan(args) or canned_fault_plan()
    started = time.perf_counter()
    outcomes = run_policy_matrix(lanes=args.lanes, workloads=workloads,
                                 jobs=jobs, timeout=args.timeout,
                                 cache=cache, sanitize=args.sanitize,
                                 plan=plan)
    elapsed = time.perf_counter() - started
    print(policy_matrix_table(outcomes, lanes=args.lanes))
    winner = tournament_winner(outcomes)
    print(f"winner: {winner.policy} "
          f"({winner.speedup:.2f}x fault-free geomean, "
          f"{winner.faulty_speedup:.2f}x under the fault plan)")
    print(f"wall-clock {elapsed:.2f}s, {len(outcomes)} policies x "
          f"{len(workloads)} workloads x 2 fault conditions")
    return 0


def _cmd_serve(args) -> int:
    import threading

    from repro.serve import Server

    # asyncio raises OverflowError (not OSError) for an out-of-range
    # port, which would escape the user-error net as a traceback.
    if not 0 <= args.port <= 65535:
        raise ValueError(f"--port must be in 0..65535, got {args.port}")
    server = Server(host=args.host, port=args.port, root=args.cache_dir,
                    cache_max_mb=args.cache_max_mb,
                    no_cache=args.no_cache, jobs=args.jobs,
                    timeout=args.timeout,
                    max_active_per_tenant=args.max_active_per_tenant,
                    max_concurrent_jobs=args.max_concurrent_jobs,
                    lease_s=args.lease_s,
                    max_lease_attempts=args.max_lease_attempts,
                    max_queued=args.max_queued,
                    max_backlog_per_tenant=args.max_backlog_per_tenant,
                    job_ttl_s=args.job_ttl_s)

    def announce() -> None:
        server.ready.wait()
        print(f"repro serve: listening on "
              f"http://{server.host}:{server.port} "
              f"(jobs persist under {server.store.root})", flush=True)

    threading.Thread(target=announce, daemon=True).start()
    try:
        server.run()  # returns after SIGINT/SIGTERM → graceful stop
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_jobs(args) -> int:
    """``repro jobs list|gc`` — operate on persisted job records directly.

    Works against the store with no server running: ``list`` summarises
    every record in the ``jobs`` namespace, ``gc --older-than S`` prunes
    terminal history past the cutoff (live queued/running records are
    shielded regardless of age, so a long outage never costs queued
    work).
    """
    import time

    from repro.serve.queue import gc_jobs, scan_jobs
    from repro.store import open_store

    store = open_store(args.cache_dir)
    if args.jobs_command == "gc":
        removed = gc_jobs(store, args.older_than)
        print(f"pruned {removed} terminal job record"
              f"{'' if removed == 1 else 's'} older than "
              f"{args.older_than:g}s")
        return 0
    records = sorted(scan_jobs(store),
                     key=lambda r: (r["finished_at"] or float("inf"),
                                    r["job"]))
    if args.state is not None:
        records = [r for r in records if r["state"] == args.state]
    if not records:
        print("no persisted job records"
              + (f" in state {args.state!r}" if args.state else ""))
        return 0
    now = time.time()
    for record in records:
        age = ""
        if record["finished_at"] is not None:
            age = f" finished {max(now - record['finished_at'], 0):.0f}s ago"
        error = ""
        if record["error"]:
            code = record["error_code"] or "error"
            error = f" [{code}: {record['error']}]"
        workloads = ",".join(record["workloads"]) or "-"
        print(f"{record['job']}  {record['state']:<9} "
              f"tenant={record['tenant']} attempts={record['attempts']} "
              f"events={record['events']} {workloads}{age}{error}")
    print(f"{len(records)} record{'' if len(records) == 1 else 's'}")
    return 0


def _cmd_experiment(args) -> int:
    eid = args.experiment_id.upper()
    fn = ALL_EXPERIMENTS.get(eid)
    if fn is None:
        print(f"unknown experiment {eid!r}; known: "
              f"{', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    print(fn())
    return 0


def _cmd_show(args) -> int:
    from repro.arch.mapper import Mapper
    from repro.core.program import expand_program
    from repro.core.visualize import dfg_dot, mapping_ascii, task_graph_dot

    workload = get_workload(args.workload)
    program = workload.build_program()
    if args.what == "tasks":
        print(task_graph_dot(expand_program(program)))
        return 0
    if args.what == "graph":
        from repro.graph import graph_dot, graph_summary, recover_structure

        graph = recover_structure(program)
        print(graph_dot(graph))
        print()
        print(graph_summary(graph, lanes=args.lanes))
        return 0
    # One rendering per distinct kernel DFG in the program.
    expanded = expand_program(program)
    seen = {}
    for task in expanded.tasks:
        seen.setdefault(task.type.dfg.signature(), task.type.dfg)
    for dfg in seen.values():
        if args.what == "dfg":
            print(dfg_dot(dfg))
        else:
            mapper = Mapper(default_delta_config().lane.fabric)
            print(mapping_ascii(dfg, mapper.map(dfg)))
        print()
    return 0


#: Structured failure modes → distinct exit codes, so scripts and CI can
#: tell a hung run (3) from a malformed program (4) from a model-invariant
#: violation (5) from exhausted fault recovery (6). User errors stay 2.
_DIAGNOSTIC_LINES = 30


def _structured_exit_codes() -> list[tuple[type, int]]:
    from repro.graph.ir import GraphValidationError
    from repro.machine.session import ExecutionStalled
    from repro.sim.faults import UnrecoverableFault
    from repro.sim.sanitize import ModelInvariantError

    return [(ExecutionStalled, 3), (GraphValidationError, 4),
            (ModelInvariantError, 5), (UnrecoverableFault, 6)]


def _print_diagnostic(command: str, exc: Exception) -> None:
    """One-screen diagnostic: the exception type plus its message, capped
    so a pathological report cannot flood the terminal."""
    text = f"repro {command}: {type(exc).__name__}: {exc}"
    lines = text.splitlines()
    if len(lines) > _DIAGNOSTIC_LINES:
        dropped = len(lines) - _DIAGNOSTIC_LINES
        lines = lines[:_DIAGNOSTIC_LINES] + [f"... ({dropped} more lines)"]
    print("\n".join(lines), file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    User errors (unknown workload, invalid configuration, an unreadable
    fault plan) print one clean line and return exit code 2. Structured
    simulation failures get a one-screen diagnostic and a distinct code:
    :class:`ExecutionStalled` → 3, :class:`GraphValidationError` → 4,
    :class:`ModelInvariantError` → 5, :class:`UnrecoverableFault` → 6.
    Only genuinely internal errors raise a traceback.
    """
    from repro.util.validate import ConfigError

    args = _build_parser().parse_args(argv)
    commands = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "suite": _cmd_suite,
        "eval": _cmd_eval,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "jobs": _cmd_jobs,
        "show": _cmd_show,
    }
    handler = commands[args.command]
    structured = _structured_exit_codes()
    try:
        if args.command == "list":
            return handler()
        return handler(args)
    # GraphValidationError subclasses ValueError: check structured kinds
    # before the generic user-error net.
    except tuple(kind for kind, _code in structured) as exc:
        _print_diagnostic(args.command, exc)
        for kind, code in structured:
            if isinstance(exc, kind):
                return code
        raise AssertionError("unreachable")  # pragma: no cover
    except (KeyError, ConfigError, ValueError, OSError) as exc:
        # OSError.args[0] is the errno; str() gives the readable form.
        if isinstance(exc, OSError):
            message = str(exc)
        else:
            message = exc.args[0] if exc.args else str(exc)
        print(f"repro {args.command}: error: {message}", file=sys.stderr)
        return 2
