"""In-process request coalescing: one computation per in-flight key.

A sweep (or the ``repro serve`` front-end) can receive the same point
twice while the first computation is still running. The cache only helps
once a result is *published*; the :class:`Coalescer` closes the in-flight
window: the first caller of a key becomes the leader and computes, every
concurrent caller of the same key blocks on the leader's future and
shares its result (or its exception). When the leader finishes, the key
leaves the in-flight map — completed results are the cache's job, not
this class's.

Followers can optionally wait *bounded*: with ``poll_s``/``abandoned``
given, a follower re-checks ``abandoned()`` every poll slice and, once it
reports the leader dead (its thread wedged, its process killed, its lease
expired — the predicate is the caller's), the follower **takes over
leadership**: it unseats the dead leader's future from the in-flight map
and loops back to the top, becoming the new leader (or a follower of
whoever beat it there). A late result from the unseated leader still
resolves its old future — stragglers blocked on it are served, and the
unseated leader's cleanup is guarded so it never evicts its successor.
This is what keeps a coalesced-sweep follower from waiting forever on a
leader that will never answer.

Thread-safe; single-threaded callers pay one dict lookup. The process
pool in :mod:`repro.eval.parallel` coalesces by key-deduplicating its
submission batch (same policy, synchronous shape); the ``coalesced``
metric means the same thing in both: a caller that did not compute.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Optional, TypeVar

from repro.store.metrics import NULL_METRICS

T = TypeVar("T")


class Coalescer:
    """Keyed single-flight execution over any callable."""

    def __init__(self, metrics=NULL_METRICS) -> None:
        self.metrics = metrics
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}

    def run(self, key: str, compute: Callable[[], T], *,
            poll_s: Optional[float] = None,
            abandoned: Optional[Callable[[], bool]] = None) -> T:
        """Compute ``key`` once across concurrent callers.

        The leader runs ``compute()``; followers arriving while it runs
        count one ``coalesced`` metric each and receive the leader's
        result — or its exception, re-raised in every follower, so a
        failed computation is not silently retried by the pack.

        With ``poll_s`` and ``abandoned`` given, a follower's wait is
        bounded: every ``poll_s`` seconds it calls ``abandoned()`` and,
        on True, unseats the presumed-dead leader and retries the key —
        becoming the new leader itself, or a follower of whichever
        caller won the race to replace it.
        """
        while True:
            with self._lock:
                future = self._inflight.get(key)
                if future is None:
                    future = Future()
                    self._inflight[key] = future
                    leader = True
                else:
                    leader = False
            if leader:
                try:
                    result = compute()
                except BaseException as exc:
                    future.set_exception(exc)
                    raise
                else:
                    future.set_result(result)
                    return result
                finally:
                    with self._lock:
                        # Guard: an unseated leader must not evict its
                        # successor's in-flight entry.
                        if self._inflight.get(key) is future:
                            self._inflight.pop(key)
            self.metrics.add("coalesced")
            if poll_s is None or abandoned is None:
                return future.result()
            takeover = False
            while not takeover:
                try:
                    return future.result(timeout=poll_s)
                except FutureTimeoutError:
                    takeover = abandoned()
            with self._lock:
                # Unseat the dead leader (unless someone already did and
                # a new future is in flight — then just retry the key).
                if self._inflight.get(key) is future:
                    self._inflight.pop(key)

    def inflight(self) -> int:
        """How many keys are being computed right now."""
        with self._lock:
            return len(self._inflight)
