"""In-process request coalescing: one computation per in-flight key.

A sweep (or, later, the ``repro serve`` front-end) can receive the same
point twice while the first computation is still running. The cache only
helps once a result is *published*; the :class:`Coalescer` closes the
in-flight window: the first caller of a key becomes the leader and
computes, every concurrent caller of the same key blocks on the leader's
future and shares its result (or its exception). When the leader
finishes, the key leaves the in-flight map — completed results are the
cache's job, not this class's.

Thread-safe; single-threaded callers pay one dict lookup. The process
pool in :mod:`repro.eval.parallel` coalesces by key-deduplicating its
submission batch (same policy, synchronous shape); the ``coalesced``
metric means the same thing in both: a caller that did not compute.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, TypeVar

from repro.store.metrics import NULL_METRICS

T = TypeVar("T")


class Coalescer:
    """Keyed single-flight execution over any callable."""

    def __init__(self, metrics=NULL_METRICS) -> None:
        self.metrics = metrics
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}

    def run(self, key: str, compute: Callable[[], T]) -> T:
        """Compute ``key`` once across concurrent callers.

        The leader runs ``compute()``; followers arriving while it runs
        count one ``coalesced`` metric each and receive the leader's
        result — or its exception, re-raised in every follower, so a
        failed computation is not silently retried by the pack.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is None:
                future = Future()
                self._inflight[key] = future
                leader = True
            else:
                leader = False
        if not leader:
            self.metrics.add("coalesced")
            return future.result()
        try:
            result = compute()
        except BaseException as exc:
            future.set_exception(exc)
            raise
        else:
            future.set_result(result)
            return result
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def inflight(self) -> int:
        """How many keys are being computed right now."""
        with self._lock:
            return len(self._inflight)
