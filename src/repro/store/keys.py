"""The store's key model: what identifies an entry, and where entries live.

Every schema over the store keys entries the same way::

    entry_key(SCHEMA_FORMAT, <payload identity parts...>)
        = stable_hash(SCHEMA_FORMAT, code_version(), *parts)

- the **schema format** version, so a layout change never hits old
  entries;
- the **code version** — a digest of every ``repro`` source file — so any
  edit to the simulator, the workloads, or the harness invalidates every
  entry rather than silently serving stale numbers;
- the schema's own identity parts (workload identity, machine configs,
  flags).

The key is a SHA-256 hex digest; :class:`~repro.store.sharded
.ShardedStore` shards it by prefix into subdirectories.

The primitives live in :mod:`repro.util` (below this package — the store
imports only util); this module is the single front door cache schemas
import them through. The historical homes (``repro.util.codebase``,
``repro.util.fingerprint``) keep their definitions, so direct imports
keep working.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.util.codebase import (  # noqa: F401  (re-exported: the key model)
    code_version,
    default_cache_root,
    digest_tree,
    source_files,
)
from repro.util.fingerprint import (  # noqa: F401  (re-exported: the key model)
    stable_hash,
    workload_cache_key,
)

#: Environment override for the store-wide size cap, in megabytes.
BUDGET_ENV = "REPRO_CACHE_MAX_MB"


def entry_key(schema_format: int, *parts: object) -> str:
    """Canonical entry key: schema format + code version + identity parts."""
    return stable_hash(schema_format, code_version(), *parts)


def cache_budget_bytes(max_mb: Optional[float] = None) -> Optional[int]:
    """Resolve the store size cap to bytes.

    An explicit ``max_mb`` (e.g. from ``--cache-max-mb``) wins; otherwise
    the ``REPRO_CACHE_MAX_MB`` environment variable applies; otherwise the
    store is uncapped (None). A value <= 0 means explicitly uncapped.
    """
    if max_mb is None:
        env = os.environ.get(BUDGET_ENV, "").strip()
        if not env:
            return None
        try:
            max_mb = float(env)
        except ValueError:
            return None
    if max_mb is None or max_mb <= 0:
        return None
    return int(max_mb * 1024 * 1024)
