"""Counter sinks for store observability.

The store layer sits below :mod:`repro.machine`, so it cannot import the
:class:`~repro.machine.metrics.MetricsBus` it ultimately reports through.
Instead every :class:`~repro.store.sharded.ShardedStore` takes any object
with ``add(name, amount=1)`` / ``get(name)`` — a ``CounterGroup`` from a
bus qualifies, as does the dependency-free :class:`StoreMetrics` default
here. The harness passes ``MetricsBus().cache`` so store activity shows
up as ``cache.*`` counters in ``repro eval`` summaries; library callers
that pass nothing still get working local counts for ``stats()`` lines.

These counters are harness-side: they are written by the process driving
the sweep, never by a simulated machine, so run fingerprints and the
golden files are unaffected by construction.
"""

from __future__ import annotations

#: Counter names the store layer writes (mirrored by the typed
#: ``CacheMetrics`` group in repro.machine.metrics).
METRIC_NAMES = (
    "hits",           # entries served (schema fingerprint verified)
    "misses",         # absent entries (corrupt entries also count a miss)
    "stores",         # entries published
    "evictions",      # entries removed by the size-cap policy
    "evicted_bytes",  # bytes reclaimed by eviction
    "coalesced",      # callers that joined an in-flight computation
    "corrupt",        # truncated/garbage/tampered entries discarded
    "lock_waits",     # shard-lock acquisitions that had to block
)


class StoreMetrics:
    """Plain dict-backed counter sink (the default when no bus is given)."""

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] = self._values.get(name, 0.0) + amount

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)

    def __repr__(self) -> str:
        return f"<StoreMetrics {self._values!r}>"


class _NullMetrics:
    """Swallows everything; for callers that want zero accounting cost."""

    def add(self, name: str, amount: float = 1.0) -> None:
        pass

    def get(self, name: str, default: float = 0.0) -> float:
        return default

    def as_dict(self) -> dict[str, float]:
        return {}


NULL_METRICS = _NullMetrics()
