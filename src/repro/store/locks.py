"""Per-shard advisory file locks.

Concurrent processes share the store through the filesystem, and the
atomic write-temp-then-rename publish already guarantees readers never
see a torn entry. The locks close the remaining windows: two writers
publishing into one shard (temp-file churn), eviction racing a publish,
and :meth:`~repro.store.sharded.ShardedStore.get_or_compute` callers
double-computing an expensive entry another process is already writing.

Locks are ``fcntl.flock`` on a ``.lock`` file per shard directory —
advisory, crash-safe (the OS drops them with the process, so no stale
lock files survive a kill), and cheap: the uncontended path is one
non-blocking ``flock`` call. A contended acquisition counts one
``lock_waits`` metric, then blocks. On platforms without ``fcntl`` the
lock degrades to a no-op — the rename publish keeps single-entry
operations safe, only cross-process double-compute suppression is lost.
"""

from __future__ import annotations

import os
from pathlib import Path

try:  # POSIX; on other platforms the lock degrades to a no-op.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.store.metrics import NULL_METRICS

#: Name of the lock file inside each shard directory.
LOCK_FILENAME = ".lock"


class ShardLock:
    """Advisory exclusive lock over one shard directory (a context manager).

    Reentrant within a single instance is *not* supported — hold at most
    one ``with`` per instance at a time. Distinct instances (even in one
    process) contend with each other, which is exactly what the
    double-compute suppression needs.
    """

    def __init__(self, shard_dir: Path, metrics=NULL_METRICS) -> None:
        self.path = Path(shard_dir) / LOCK_FILENAME
        self.metrics = metrics
        self._fd: int | None = None
        #: True when the last acquisition had to block on another holder.
        self.contended = False

    def acquire(self) -> None:
        self.contended = False
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            # Someone else holds the shard: record the wait, then block.
            self.contended = True
            self.metrics.add("lock_waits")
            fcntl.flock(self._fd, fcntl.LOCK_EX)

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ShardLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
