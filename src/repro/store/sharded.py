"""The generic content-addressed sharded store.

One :class:`ShardedStore` manages a directory tree of opaque payloads::

    <root>/<namespace>/<shard>/<key>.pkl

- **namespace** — one per schema ("eval" comparisons, "structure"
  summaries), so schemas share the root, the size budget, and the
  metrics sink without ever touching each other's files;
- **shard** — the first two hex characters of the key, so a namespace
  with tens of thousands of entries never degenerates into one directory
  with tens of thousands of files, and writers contend per shard, not
  per store;
- **key** — a SHA-256 hex digest from the key model
  (:mod:`repro.store.keys`).

Payloads are opaque bytes: what an entry means, how it serializes, and
how its fingerprint is verified is the schema's job
(:mod:`repro.eval.cache`, :mod:`repro.graph.cache`). The store guarantees
the storage-level contract:

- **atomic publish** — write-temp-then-rename, so a reader sees an old
  entry or a complete new one, never a torn one;
- **per-shard advisory locks** (:mod:`repro.store.locks`) — concurrent
  writers serialize per shard, and :meth:`get_or_compute` suppresses
  cross-process double-computes;
- **never raise on a bad entry** — unreadable or schema-rejected entries
  are discarded (logged + counted ``corrupt``) and the caller recomputes;
- **bounded size** — after every write the store evicts
  least-recently-used entries (mtime order; reads refresh mtime) until
  the total is back under ``max_bytes``.
"""

from __future__ import annotations

import logging
import os
import re
import time
from pathlib import Path
from typing import Callable, Collection, Iterator, Optional

from repro.store.keys import cache_budget_bytes, default_cache_root
from repro.store.locks import ShardLock
from repro.store.metrics import StoreMetrics

logger = logging.getLogger("repro.store")

#: Sentinel: "no explicit budget given — resolve REPRO_CACHE_MAX_MB".
_BUDGET_FROM_ENV = object()

_SHARD_RE = re.compile(r"^[0-9a-f]{2}$")


class ShardedStore:
    """Concurrent-safe, size-capped, namespaced store of opaque payloads."""

    #: Hex-prefix length used to pick an entry's shard directory.
    SHARD_WIDTH = 2
    #: On-disk entry suffix (schemas pickle their payloads).
    SUFFIX = ".pkl"
    #: Namespaces that hold *live state*, not recomputable cache entries.
    #: They are exempt from the LRU size-cap sweep and from a blanket
    #: ``clear()``: evicting a queued job record would silently lose a
    #: client's submitted work, which no cache budget may do. Their growth
    #: is bounded by explicit lifecycle sweeps (:meth:`sweep_aged`,
    #: ``repro jobs gc``) instead.
    PROTECTED_NAMESPACES = frozenset({"jobs"})

    def __init__(self, root: Optional[Path] = None, *,
                 max_bytes=_BUDGET_FROM_ENV,
                 metrics=None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        if max_bytes is _BUDGET_FROM_ENV:
            max_bytes = cache_budget_bytes()
        self.max_bytes: Optional[int] = max_bytes
        self.metrics = metrics if metrics is not None else StoreMetrics()

    # -- layout ------------------------------------------------------------

    def shard_dir(self, namespace: str, key: str) -> Path:
        return self.root / namespace / key[:self.SHARD_WIDTH]

    def path_for(self, namespace: str, key: str) -> Path:
        """Where ``key``'s entry lives (whether or not it exists)."""
        return self.shard_dir(namespace, key) / f"{key}{self.SUFFIX}"

    def _lock(self, namespace: str, key: str) -> ShardLock:
        return ShardLock(self.shard_dir(namespace, key), self.metrics)

    def _namespace_dirs(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.iterdir()
                      if p.is_dir() and not p.name.startswith("."))

    def _entry_paths(self, namespace: Optional[str] = None) -> Iterator[Path]:
        """Every entry file, across namespaces or within one."""
        if namespace is not None:
            spaces = [self.root / namespace]
        else:
            spaces = self._namespace_dirs()
        for space in spaces:
            if not space.is_dir():
                continue
            for shard in sorted(space.iterdir()):
                if shard.is_dir() and _SHARD_RE.match(shard.name):
                    yield from sorted(shard.glob(f"*{self.SUFFIX}"))

    # -- reads ---------------------------------------------------------------

    def read(self, namespace: str, key: str) -> Optional[bytes]:
        """Raw payload bytes, or None when absent.

        A successful read refreshes the entry's mtime, which is the
        eviction policy's recency signal. An entry that cannot be read at
        all (permissions, I/O error) is treated as absent, never raised.
        """
        path = self.path_for(namespace, key)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:  # pragma: no cover - host-specific I/O errors
            logger.warning("unreadable cache entry %s (%s); ignoring",
                           path, exc)
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # recency refresh is best-effort (entry may be evicted)
        return payload

    # -- writes --------------------------------------------------------------

    def write(self, namespace: str, key: str, payload: bytes) -> None:
        """Publish an entry atomically, then enforce the size budget."""
        with self._lock(namespace, key):
            self._publish(namespace, key, payload)
        self.evict_to_budget()

    def _publish(self, namespace: str, key: str, payload: bytes) -> None:
        path = self.path_for(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        self.metrics.add("stores")

    def get_or_compute(self, namespace: str, key: str,
                       compute: Callable[[], bytes]) -> bytes:
        """Read ``key``, or compute-and-publish it exactly once per host.

        On a miss the caller takes the shard lock, re-reads (another
        process may have published while it waited — that suppressed
        double-compute counts as ``coalesced``), and only then computes
        and publishes under the held lock. ``compute`` must not write to
        this same store (the shard lock is not reentrant).
        """
        payload = self.read(namespace, key)
        if payload is not None:
            return payload
        with self._lock(namespace, key) as lock:
            payload = self.read(namespace, key)
            if payload is not None:
                if lock.contended:
                    self.metrics.add("coalesced")
                return payload
            payload = compute()
            self._publish(namespace, key, payload)
        self.evict_to_budget()
        return payload

    # -- discard / clear -------------------------------------------------------

    def delete(self, namespace: str, key: str) -> bool:
        """Remove one entry; True when it existed."""
        try:
            self.path_for(namespace, key).unlink()
            return True
        except FileNotFoundError:
            return False

    def discard_corrupt(self, namespace: str, key: str, reason: str) -> None:
        """Drop an entry the schema rejected: log, count, delete — never raise.

        The caller recomputes; a truncated, garbage, or tampered entry
        must never poison a sweep or abort one.
        """
        logger.warning("corrupt cache entry %s/%s (%s); discarding",
                       namespace, key, reason)
        self.metrics.add("corrupt")
        self.delete(namespace, key)

    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete every entry (in one namespace, or all); returns the count.

        Clearing everything skips the :data:`PROTECTED_NAMESPACES` — a
        ``--clear-cache`` must never delete live job records that share
        the store root (name a protected namespace explicitly to clear
        it). Clearing everything also sweeps legacy flat-layout entries
        (``<root>/*.pkl`` from the pre-store cache format) so one
        ``--clear-cache`` leaves nothing stale behind.
        """
        removed = 0
        if namespace is None:
            spaces = [space.name for space in self._namespace_dirs()
                      if space.name not in self.PROTECTED_NAMESPACES]
        else:
            spaces = [namespace]
        for space in spaces:
            for path in list(self._entry_paths(space)):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
        if namespace is None and self.root.is_dir():
            for path in self.root.glob(f"*{self.SUFFIX}"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear_report(self) -> dict[str, int]:
        """Per-namespace entry counts removed by clearing everything.

        Protected namespaces (live job records) are neither counted nor
        cleared.
        """
        report = {space.name: sum(1 for _ in self._entry_paths(space.name))
                  for space in self._namespace_dirs()
                  if space.name not in self.PROTECTED_NAMESPACES}
        report = {name: count for name, count in report.items() if count}
        self.clear()
        return report

    # -- accounting ------------------------------------------------------------

    def keys(self, namespace: str) -> Iterator[str]:
        for path in self._entry_paths(namespace):
            yield path.name[:-len(self.SUFFIX)]

    def items(self, namespace: str) -> Iterator[tuple[str, bytes]]:
        """Every (key, payload) pair in a namespace, in key order.

        Entries that vanish mid-scan (concurrent eviction, deletion) are
        skipped. This is the recovery scan ``repro serve`` replays its
        persistent ``jobs`` namespace with after a restart.
        """
        for key in self.keys(namespace):
            payload = self.read(namespace, key)
            if payload is not None:
                yield key, payload

    def entry_count(self, namespace: Optional[str] = None) -> int:
        return sum(1 for _ in self._entry_paths(namespace))

    def total_bytes(self, namespace: Optional[str] = None) -> int:
        total = 0
        for path in self._entry_paths(namespace):
            try:
                total += path.stat().st_size
            except FileNotFoundError:
                pass  # concurrently evicted
        return total

    # -- eviction ----------------------------------------------------------------

    def evict_to_budget(self) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        Recency is mtime: publishes and successful reads both refresh it,
        so a warm working set survives while cold sweep residue goes
        first. Entries in :data:`PROTECTED_NAMESPACES` are never
        candidates (and do not count toward the budget): a size cap may
        shed recomputable cache entries, never live job records.
        Concurrent evictors racing over the same files are safe — an
        already-gone entry is simply skipped. Returns how many entries
        this call evicted.
        """
        if self.max_bytes is None:
            return 0
        entries = []
        total = 0
        for space in self._namespace_dirs():
            if space.name in self.PROTECTED_NAMESPACES:
                continue
            for path in self._entry_paths(space.name):
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for _mtime, size, path in sorted(entries, key=lambda e: (e[0], e[2])):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                continue  # another process evicted it first
            total -= size
            evicted += 1
            self.metrics.add("evictions")
            self.metrics.add("evicted_bytes", size)
        return evicted

    def sweep_aged(self, max_age_s: float,
                   namespace: Optional[str] = None,
                   exempt: Collection[str] = ()) -> int:
        """Delete entries whose mtime is older than ``max_age_s`` seconds.

        The TTL companion to the size-cap sweep: where
        :meth:`evict_to_budget` sheds by recency under pressure, this
        sheds by *age* regardless of pressure — it is how lifecycle
        owners (the serve watchdog's terminal-history GC, ``repro jobs
        gc``) bound a protected namespace the LRU sweep must not touch.
        ``exempt`` keys are never deleted whatever their age — the
        caller's way of shielding live records. Returns how many entries
        were removed.
        """
        cutoff = time.time() - max_age_s
        exempt = set(exempt)
        removed = 0
        for path in list(self._entry_paths(namespace)):
            if path.name[:-len(self.SUFFIX)] in exempt:
                continue
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
                path.unlink()
            except FileNotFoundError:
                continue  # concurrently removed
            removed += 1
        return removed


def open_store(root: Optional[Path] = None,
               max_mb: Optional[float] = None,
               metrics=None) -> ShardedStore:
    """Open the shared store the CLI and the server front-ends use.

    ``root`` defaults to the shared cache root (``.repro-cache/`` or
    ``$REPRO_CACHE_DIR``); ``max_mb`` is the explicit size cap in MB
    (``--cache-max-mb``), falling back to ``$REPRO_CACHE_MAX_MB``.
    """
    return ShardedStore(root if root is None else Path(root),
                        max_bytes=cache_budget_bytes(max_mb),
                        metrics=metrics)
