"""repro.store — the shared on-disk cache substrate.

Both on-disk caches — the evaluation result cache
(:mod:`repro.eval.cache`) and the structure cache
(:mod:`repro.graph.cache`) — used to be near-duplicate single-writer
implementations. This package extracts the storage layer they share, so
concurrent tenants (the ``eval`` worker pool today, ``repro serve``
tomorrow) read and write one store safely:

- :class:`ShardedStore` — a generic content-addressed store. Keys are
  hex digests sharded by prefix into subdirectories, entries publish via
  write-temp-then-rename (readers see an old or a complete new entry,
  never a torn one), and per-shard advisory file locks serialize writers
  that would otherwise collide.
- eviction — an mtime-based LRU-ish size cap
  (``REPRO_CACHE_MAX_MB`` / ``repro eval --cache-max-mb``): after every
  write the store sheds the least-recently-used entries until it is back
  under budget. Reads refresh an entry's mtime, so warm entries survive.
- :class:`Coalescer` — in-process request coalescing: concurrent callers
  computing the same key share one in-flight computation instead of
  duplicating it (used by :mod:`repro.eval.parallel`; the building block
  for the sweep server).
- metrics — every operation lands on a ``cache.*`` counter sink (hits,
  misses, stores, evictions, coalesced, corrupt, lock_waits). Any object
  with ``add(name, amount)`` works; :class:`repro.machine.metrics
  .CacheMetrics` is the typed MetricsBus group, :class:`StoreMetrics`
  the dependency-free default.

Layering: this package imports only :mod:`repro.util` (enforced by
``tools/check_layering.py``). The typed schemas — what an entry *means*,
how it serializes, how its fingerprint is verified — stay above, in
``eval/cache.py`` and ``graph/cache.py``.
"""

from repro.store.coalesce import Coalescer
from repro.store.keys import (
    cache_budget_bytes,
    code_version,
    default_cache_root,
    entry_key,
    stable_hash,
    workload_cache_key,
)
from repro.store.locks import ShardLock
from repro.store.metrics import NULL_METRICS, StoreMetrics
from repro.store.sharded import ShardedStore, open_store

__all__ = [
    "Coalescer",
    "NULL_METRICS",
    "ShardLock",
    "ShardedStore",
    "StoreMetrics",
    "cache_budget_bytes",
    "code_version",
    "default_cache_root",
    "entry_key",
    "open_store",
    "stable_hash",
    "workload_cache_key",
]
