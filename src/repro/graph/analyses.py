"""Analyses over the TaskGraph IR, and the picklable StructureSummary.

Everything a consumer used to re-derive from a raw task list lives here,
computed once per program:

- :func:`critical_path` — the longest dependence chain (T∞ in Brent's
  bound), honouring edge semantics: ``after`` waits for the producer to
  *finish*, ``stream``/``spawn`` only for it to *start* (pipelining).
  ``total_work / cp_work`` is the program's inherent parallelism; the
  speedup achievable on L lanes is bounded by ``min(L, parallelism)``,
  which evaluation reports print next to the measured speedup.
- :func:`parallelism_profile` — per-barrier-phase task count and work,
  showing where the static baseline's barriers leave lanes idle.
- :func:`work_histogram` — log2-binned task work, quantifying the skew
  that work-aware dispatch exploits.
- :func:`sharing_sets` — for every ``shared=True`` read region, the set of
  reader tasks and the bytes moved; the multicast model and the T2 table
  consume these by region name.

:class:`StructureSummary` packages all of the above as pure frozen data —
no Task objects, no kernel closures — so the structure cache
(:mod:`repro.graph.cache`) can pickle it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.ir import EdgeKind, TaskGraph


@dataclass(frozen=True)
class CriticalPath:
    """The longest dependence chain through a task graph.

    ``work`` is T∞ — the span; ``task_names`` walks the chain from entry
    to exit; ``total_work`` is T1. ``parallelism`` is T1/T∞.
    """

    work: float
    task_names: tuple[str, ...]
    total_work: float

    @property
    def length(self) -> int:
        """Number of tasks on the path."""
        return len(self.task_names)

    @property
    def parallelism(self) -> float:
        """Inherent parallelism T1/T∞ (>= 1 for non-empty graphs)."""
        if self.work <= 0:
            return float(len(self.task_names)) or 1.0
        return self.total_work / self.work

    def speedup_bound(self, lanes: int) -> float:
        """Upper bound on speedup at ``lanes`` lanes: min(L, T1/T∞)."""
        return min(float(lanes), self.parallelism)


def critical_path(graph: TaskGraph) -> CriticalPath:
    """Longest chain under the typed-edge timing semantics.

    For each task t: ``start(t)`` is the max over predecessors of
    ``finish(p)`` for AFTER edges and ``start(p)`` for STREAM/SPAWN edges
    (a stream consumer or spawned child can overlap its producer);
    ``finish(t) = start(t) + work(t)``, except a stream consumer can never
    drain before its producer finishes, so ``finish(t)`` is additionally
    clamped to ``finish(p)`` of every STREAM predecessor.
    """
    start: dict[int, float] = {}
    finish: dict[int, float] = {}
    # Longest-path predecessor for path reconstruction.
    via: dict[int, Optional[int]] = {}
    for task in graph.topological_order():
        t_start = 0.0
        t_via: Optional[int] = None
        for pred, kind in graph.predecessors[task.task_id]:
            bound = finish[pred] if kind == EdgeKind.AFTER else start[pred]
            if bound > t_start or t_via is None and bound == t_start:
                t_start = bound
                t_via = pred
        t_finish = t_start + task.work
        for pred, kind in graph.predecessors[task.task_id]:
            if kind == EdgeKind.STREAM and finish[pred] > t_finish:
                t_finish = finish[pred]
                t_via = pred
        start[task.task_id] = t_start
        finish[task.task_id] = t_finish
        via[task.task_id] = t_via
    if not finish:
        return CriticalPath(0.0, (), 0.0)
    # Ties broken toward the latest-spawned task so the reported chain is
    # the deepest one (a fully pipelined chain finishes all at once).
    tail = max(finish, key=lambda tid: (finish[tid], tid))
    chain: list[str] = []
    cursor: Optional[int] = tail
    while cursor is not None:
        chain.append(graph.node(cursor).name)
        cursor = via[cursor]
    chain.reverse()
    return CriticalPath(finish[tail], tuple(chain), graph.total_work)


def bottom_levels(graph: TaskGraph) -> dict[int, float]:
    """Longest remaining path from each task to a sink, by task id.

    The list-scheduling "bottom level" b(t): t's own work plus the
    longest chain below it, under the same typed-edge timing semantics as
    :func:`critical_path` — an AFTER successor waits for t to *finish*
    (its chain adds to t's work), while a STREAM/SPAWN successor overlaps
    t's execution (the chain through it is bounded below by whichever of
    the two is longer, not their sum). The entry task's bottom level
    equals T∞ on a single-entry graph; scheduling priority by descending
    b(t) is classic critical-path list scheduling (HPDC'23 uses the same
    rank over its streaming task graphs).
    """
    levels: dict[int, float] = {}
    for task in reversed(graph.topological_order()):
        best = task.work
        for succ, kind in graph.successors[task.task_id]:
            if kind == EdgeKind.AFTER:
                below = task.work + levels[succ]
            else:
                below = max(task.work, levels[succ])
            if below > best:
                best = below
        levels[task.task_id] = best
    return levels


@dataclass(frozen=True)
class PhaseProfile:
    """One barrier phase: how many tasks, how much work, how skewed."""

    phase: int
    task_count: int
    work: float
    max_task_work: float

    @property
    def balance(self) -> float:
        """Mean/max task work in the phase — 1.0 is perfectly uniform."""
        if self.max_task_work <= 0 or self.task_count == 0:
            return 1.0
        return (self.work / self.task_count) / self.max_task_work


def parallelism_profile(graph: TaskGraph) -> tuple[PhaseProfile, ...]:
    """Per-phase parallelism: where barriers strand work."""
    profiles = []
    for index, phase in enumerate(graph.phases):
        works = [t.work for t in phase]
        profiles.append(PhaseProfile(
            phase=index,
            task_count=len(phase),
            work=sum(works),
            max_task_work=max(works, default=0.0),
        ))
    return tuple(profiles)


def work_histogram(graph: TaskGraph) -> tuple[tuple[int, int], ...]:
    """Log2-binned task-work histogram: ((bin_exponent, count), ...).

    Bin b holds tasks with work in [2^b, 2^(b+1)); zero-work tasks land in
    a sentinel bin -1. The spread across bins is the skew that makes
    task-count load balancing lose to work-aware dispatch.
    """
    bins: dict[int, int] = {}
    for task in graph.tasks:
        work = task.work
        exponent = int(math.floor(math.log2(work))) if work > 0 else -1
        bins[exponent] = bins.get(exponent, 0) + 1
    return tuple(sorted(bins.items()))


@dataclass(frozen=True)
class SharingSet:
    """One shared read region and everything known about its readers."""

    region: str
    nbytes: int
    reader_task_ids: tuple[int, ...]

    @property
    def degree(self) -> int:
        """How many tasks read the region (multicast fan-out)."""
        return len(self.reader_task_ids)

    @property
    def duplicate_bytes(self) -> int:
        """Bytes a sharing-blind runtime fetches for this region."""
        return self.nbytes * self.degree


def sharing_sets(graph: TaskGraph) -> tuple[SharingSet, ...]:
    """Every ``shared=True`` read region with its reader set, by name.

    Regions are returned sorted by name; ``nbytes`` is the region's
    largest declared read size (readers of one region declare the same
    size in practice). The sum over sets of ``degree`` equals the number
    of shared-read requests the multicast manager will see, and
    ``duplicate_bytes`` is what the static baseline re-fetches.
    """
    readers: dict[str, list[int]] = {}
    sizes: dict[str, int] = {}
    for task in graph.tasks:
        for spec in task.reads:
            if not spec.shared or spec.region is None:
                continue
            readers.setdefault(spec.region, []).append(task.task_id)
            sizes[spec.region] = max(sizes.get(spec.region, 0), spec.nbytes)
    return tuple(
        SharingSet(region, sizes[region], tuple(task_ids))
        for region, task_ids in sorted(readers.items()))


@dataclass(frozen=True)
class StructureSummary:
    """Pure-data digest of one program's recovered structure.

    Unlike :class:`~repro.graph.ir.TaskGraph` this holds no Task objects
    (whose types carry kernel closures), so it pickles cleanly — it is the
    payload of the on-disk structure cache and the object evaluation
    consumers (tables, reports, CLI) read.
    """

    program: str
    tasks: int
    edges: int
    phases: int
    total_work: float
    cp_work: float
    cp_tasks: int
    sharing: tuple[SharingSet, ...] = ()
    phase_profile: tuple[PhaseProfile, ...] = ()
    work_hist: tuple[tuple[int, int], ...] = field(default=())

    @property
    def parallelism(self) -> float:
        """Inherent parallelism T1/T∞."""
        if self.cp_work <= 0:
            return float(self.tasks) or 1.0
        return self.total_work / self.cp_work

    def speedup_bound(self, lanes: int) -> float:
        """Upper bound on speedup at ``lanes`` lanes: min(L, T1/T∞)."""
        return min(float(lanes), self.parallelism)

    @property
    def sharing_degrees(self) -> dict[str, int]:
        """Region name → reader count, for the multicast oracle."""
        return {s.region: s.degree for s in self.sharing}

    @property
    def shared_regions(self) -> int:
        """Number of distinct shared read regions."""
        return len(self.sharing)

    @property
    def duplicate_shared_bytes(self) -> int:
        """Bytes a sharing-blind runtime fetches across all regions."""
        return sum(s.duplicate_bytes for s in self.sharing)


def summarize(graph: TaskGraph) -> StructureSummary:
    """Compute every analysis once and fold it into a StructureSummary."""
    cp = critical_path(graph)
    return StructureSummary(
        program=graph.program.name,
        tasks=graph.task_count,
        edges=len(graph.edges),
        phases=len(graph.phases),
        total_work=graph.total_work,
        cp_work=cp.work,
        cp_tasks=cp.length,
        sharing=sharing_sets(graph),
        phase_profile=parallelism_profile(graph),
        work_hist=work_histogram(graph),
    )
