"""Textual renders of a recovered task graph: DOT and a plain summary.

Consumed by ``repro show --what graph`` and usable from tests; kept free
of evaluation-layer imports (layering: graph sits below eval).
"""

from __future__ import annotations

from repro.core.visualize import task_graph_dot
from repro.graph.analyses import (
    critical_path,
    parallelism_profile,
    sharing_sets,
    work_histogram,
)
from repro.graph.ir import EdgeKind, TaskGraph


def graph_dot(graph: TaskGraph, max_tasks: int = 400) -> str:
    """Graphviz DOT of the typed IR (spawn edges dotted grey)."""
    return task_graph_dot(graph, max_tasks=max_tasks)


def graph_summary(graph: TaskGraph, lanes: int = 8) -> str:
    """Human-readable structure report for one program.

    Includes the critical path (so CI can grep for it), the per-phase
    parallelism profile, the work histogram, and every sharing set.
    """
    cp = critical_path(graph)
    kinds = {kind: len(graph.edges_of_kind(kind)) for kind in EdgeKind}
    lines = [
        f"program {graph.program.name}: {graph.task_count} tasks, "
        f"{len(graph.edges)} edges "
        f"(after={kinds[EdgeKind.AFTER]}, stream={kinds[EdgeKind.STREAM]}, "
        f"spawn={kinds[EdgeKind.SPAWN]})",
        f"total work {graph.total_work:.0f}, "
        f"critical path {cp.work:.0f} over {cp.length} task(s)",
        f"inherent parallelism {cp.parallelism:.2f} -> speedup bound "
        f"{cp.speedup_bound(lanes):.2f}x at {lanes} lanes",
    ]
    if cp.task_names:
        shown = " -> ".join(cp.task_names[:8])
        if cp.length > 8:
            shown += f" -> ... (+{cp.length - 8})"
        lines.append(f"critical path tasks: {shown}")
    lines.append("phases:")
    for profile in parallelism_profile(graph):
        lines.append(
            f"  phase {profile.phase}: {profile.task_count} task(s), "
            f"work {profile.work:.0f}, balance {profile.balance:.2f}")
    hist = work_histogram(graph)
    if hist:
        cells = ", ".join(
            ("work=0" if exp < 0 else f"2^{exp}") + f": {count}"
            for exp, count in hist)
        lines.append(f"work histogram: {cells}")
    sharing = sharing_sets(graph)
    if sharing:
        lines.append("sharing sets:")
        for s in sharing:
            lines.append(
                f"  {s.region}: {s.degree} reader(s) x {s.nbytes} B "
                f"= {s.duplicate_bytes} duplicate B without multicast")
    else:
        lines.append("sharing sets: none (no shared read regions)")
    return "\n".join(lines)
