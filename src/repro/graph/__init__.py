"""repro.graph — the first-class program-structure layer.

The paper's claim is that annotations on task dependences let hardware
*recover inter-task program structure*. This package makes that structure
explicit in software: :func:`recover_structure` elaborates a program once
into a :class:`TaskGraph` IR (nodes = tasks, typed edges = ``after`` /
``stream`` / ``spawn``, read-sharing sets derived from annotations), with
validation and analyses (critical path, parallelism profile, work
histogram, sharing sets) that every consumer — the static baseline, the
evaluation tables, the CLI renderers — reads instead of re-deriving
ad hoc.

Layering: ``repro.core`` (tasks, annotations, programs) sits *below* this
package; execution models (``repro.baseline``), workloads, and the harness
sit above and consume the IR. Enforced by ``tools/check_layering.py``.
"""

from repro.graph.analyses import (
    CriticalPath,
    PhaseProfile,
    SharingSet,
    StructureSummary,
    critical_path,
    parallelism_profile,
    sharing_sets,
    summarize,
    work_histogram,
)
from repro.graph.cache import StructureCache, structure_summary
from repro.graph.ir import (
    Edge,
    EdgeKind,
    GraphValidationError,
    TaskGraph,
    recover_structure,
)
from repro.graph.render import graph_dot, graph_summary

__all__ = [
    "CriticalPath",
    "Edge",
    "EdgeKind",
    "GraphValidationError",
    "PhaseProfile",
    "SharingSet",
    "StructureCache",
    "StructureSummary",
    "TaskGraph",
    "critical_path",
    "graph_dot",
    "graph_summary",
    "parallelism_profile",
    "recover_structure",
    "sharing_sets",
    "structure_summary",
    "summarize",
    "work_histogram",
]
