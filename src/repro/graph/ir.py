"""The TaskGraph IR: one program's recovered inter-task structure.

:func:`recover_structure` elaborates a program exactly once — the same
functional pass :func:`repro.core.program.expand_program` performs (every
kernel runs, mutating program state and spawning children) — and records
what the legacy expansion threw away: *typed* dependence edges.

- ``AFTER``  — completion ordering (``after=[...]`` at spawn).
- ``STREAM`` — pipelined producer→consumer streams (``stream_from=[...]``);
  the consumer may co-schedule with its producer.
- ``SPAWN``  — parent kernel → child task. A child cannot exist before its
  spawner has started, but does not wait for the spawner to finish.

The graph validates on construction (see :meth:`TaskGraph.validate`):
dangling dependences — a task whose ``after``/``stream_from`` references a
producer that was never spawned, which the legacy expansion silently
accepted and the runtimes then stalled on — raise a diagnostic
:class:`GraphValidationError`, as do duplicate task instances, dependence
cycles, and non-finite or negative work estimates.

Legacy consumers keep working: :meth:`TaskGraph.phases` and
:meth:`TaskGraph.as_expanded` are views that reproduce the
barrier-phase structure of ``expand_program`` bit-for-bit.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.program import ExpandedProgram, Program
from repro.core.task import Task, run_kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class GraphValidationError(ValueError):
    """A recovered task graph is structurally malformed."""


class EdgeKind(enum.Enum):
    """The dependence type of one edge in the IR."""

    AFTER = "after"
    STREAM = "stream"
    SPAWN = "spawn"


@dataclass(frozen=True)
class Edge:
    """One typed dependence edge, by task id (src must precede dst)."""

    src: int
    dst: int
    kind: EdgeKind


class TaskGraph:
    """The fully elaborated, typed task graph of one program run.

    ``tasks`` is in spawn (BFS) order — the order the legacy expansion
    produced. Adjacency is exposed as ``predecessors``/``successors``
    (task id → list of ``(task id, EdgeKind)``).
    """

    def __init__(self, program: Program, tasks: list[Task],
                 edges: list[Edge]) -> None:
        self.program = program
        self.tasks = tasks
        self.edges = edges
        self.nodes: dict[int, Task] = {t.task_id: t for t in tasks}
        self.predecessors: dict[int, list[tuple[int, EdgeKind]]] = {
            t.task_id: [] for t in tasks}
        self.successors: dict[int, list[tuple[int, EdgeKind]]] = {
            t.task_id: [] for t in tasks}
        for edge in edges:
            if edge.src in self.successors:
                self.successors[edge.src].append((edge.dst, edge.kind))
            if edge.dst in self.predecessors:
                self.predecessors[edge.dst].append((edge.src, edge.kind))

    # -- basic queries -------------------------------------------------------

    @property
    def task_count(self) -> int:
        """Number of tasks in the graph."""
        return len(self.tasks)

    @property
    def total_work(self) -> float:
        """Sum of all task work estimates (T1 in Brent's bound)."""
        return sum(t.work for t in self.tasks)

    def node(self, task_id: int) -> Task:
        """The task with ``task_id``."""
        return self.nodes[task_id]

    def edges_of_kind(self, kind: EdgeKind) -> list[Edge]:
        """Every edge of one dependence type."""
        return [e for e in self.edges if e.kind == kind]

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TaskGraph {self.program.name!r} tasks={len(self.tasks)} "
                f"edges={len(self.edges)}>")

    # -- legacy views --------------------------------------------------------

    @property
    def phases(self) -> list[list[Task]]:
        """Barrier phases (tasks grouped by dependence depth, spawn order).

        Identical to the ``phases`` the legacy ``expand_program`` computed;
        the static-parallel baseline partitions exactly these lists.
        """
        max_depth = max(t.depth for t in self.tasks)
        phases: list[list[Task]] = [[] for _ in range(max_depth + 1)]
        for task in self.tasks:
            phases[task.depth].append(task)
        return phases

    def as_expanded(self) -> ExpandedProgram:
        """The legacy :class:`ExpandedProgram` view over this IR."""
        return ExpandedProgram(self.program, list(self.tasks), self.phases)

    # -- ordering ------------------------------------------------------------

    def topological_order(self) -> list[Task]:
        """Tasks in dependence order (raises on cycles).

        Kahn's algorithm over all edge kinds, seeded in spawn order so the
        result is deterministic.
        """
        indegree = {t.task_id: len(self.predecessors[t.task_id])
                    for t in self.tasks}
        ready = deque(t.task_id for t in self.tasks
                      if indegree[t.task_id] == 0)
        order: list[Task] = []
        while ready:
            task_id = ready.popleft()
            order.append(self.nodes[task_id])
            for succ, _kind in self.successors[task_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.tasks):
            stuck = sorted(task_id for task_id, d in indegree.items()
                           if d > 0)
            names = ", ".join(self.nodes[i].name for i in stuck[:5])
            raise GraphValidationError(
                f"program {self.program.name!r}: dependence cycle through "
                f"{len(stuck)} task(s) ({names}{', ...' if len(stuck) > 5 else ''})")
        return order

    # -- validation ----------------------------------------------------------

    def validate(self) -> "TaskGraph":
        """Check structural invariants; returns self so calls chain.

        Raises :class:`GraphValidationError` on:

        - *duplicate tasks* — the same instance spawned or listed twice;
        - *dangling dependences* — an ``after``/``stream_from`` edge whose
          producer was never spawned (the program would stall waiting for
          a task that never runs; the legacy expansion accepted this
          silently);
        - *dependence cycles* (``after``/``stream``/``spawn`` combined);
        - *work-estimate insanity* — a negative, NaN or infinite work
          estimate, which would corrupt every downstream analysis and the
          work-aware dispatcher.
        """
        seen: set[int] = set()
        for task in self.tasks:
            if task.task_id in seen:
                raise GraphValidationError(
                    f"program {self.program.name!r}: task {task.name} "
                    f"appears more than once in the expansion")
            seen.add(task.task_id)
        for task in self.tasks:
            for dep, label in [(d, "after") for d in task.after] + \
                              [(d, "stream_from") for d in task.stream_from]:
                if dep.task_id not in self.nodes:
                    raise GraphValidationError(
                        f"program {self.program.name!r}: task {task.name} "
                        f"{label}-depends on {dep.name}, which is never "
                        f"spawned — the program would stall waiting for it")
        self.topological_order()
        for task in self.tasks:
            work = task.work
            if not math.isfinite(work) or work < 0:
                raise GraphValidationError(
                    f"program {self.program.name!r}: task {task.name} has "
                    f"an invalid work estimate ({work!r}); work must be "
                    f"finite and non-negative")
        return self


def _typed_edges(tasks: Iterable[Task],
                 spawns: list[tuple[int, int]]) -> list[Edge]:
    """Derive the typed edge list from task fields plus recorded spawns."""
    edges: list[Edge] = []
    for task in tasks:
        for dep in task.after:
            edges.append(Edge(dep.task_id, task.task_id, EdgeKind.AFTER))
        for producer in task.stream_from:
            edges.append(Edge(producer.task_id, task.task_id,
                              EdgeKind.STREAM))
    edges.extend(Edge(src, dst, EdgeKind.SPAWN) for src, dst in spawns)
    return edges


def recover_structure(program: Program,
                      validate: bool = True) -> TaskGraph:
    """Elaborate ``program`` once and recover its full typed task graph.

    Runs every kernel functionally (no timing) in the same breadth-first
    spawn order as :func:`repro.core.program.expand_program` — kernels
    mutate ``program.state``, so call this on a *fresh* program instance —
    while additionally recording spawn edges, then derives the typed
    dependence edges from the task annotations.

    With ``validate=True`` (the default) the graph is checked before it is
    returned; malformed programs raise :class:`GraphValidationError` with
    a diagnostic instead of expanding silently.
    """
    queue = deque(program.initial_tasks)
    tasks: list[Task] = []
    spawns: list[tuple[int, int]] = []
    expanded_ids: set[int] = set()
    while queue:
        task = queue.popleft()
        if task.task_id in expanded_ids:
            # Preserve the task list (validation reports the duplicate)
            # without running the kernel twice.
            tasks.append(task)
            continue
        expanded_ids.add(task.task_id)
        tasks.append(task)
        for child in run_kernel(task, program.state):
            spawns.append((task.task_id, child.task_id))
            queue.append(child)
    graph = TaskGraph(program, tasks, _typed_edges(tasks, spawns))
    if validate:
        graph.validate()
    return graph


def recover_structure_quiet(program: Program) -> Optional[TaskGraph]:
    """Like :func:`recover_structure` but returns None on validation
    failure (for exploratory tooling that must not raise)."""
    try:
        return recover_structure(program)
    except GraphValidationError:
        return None
