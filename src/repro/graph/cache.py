"""On-disk structure cache: recovered program structure, keyed like results.

Recovering structure means elaborating the whole program — every kernel
runs. For the evaluation suite that cost is paid per (workload, experiment)
point even though the structure depends only on the workload and the code
version. This cache stores the picklable :class:`StructureSummary` under
exactly the contract of :class:`repro.eval.cache.EvalCache`:

- keyed by ``stable_hash(format, code_version(), workload_cache_key(w))``
  — any edit to any ``repro`` source file (including ``repro/graph/``
  itself) invalidates every entry;
- each entry stores a fingerprint alongside the payload and is re-verified
  on load, so corruption is dropped and recomputed, never served;
- entries live in a ``structure/`` subdirectory of the shared cache root,
  so the result cache's ``clear()``/``len()`` (which glob the root) and
  this cache never touch each other's files.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.graph.analyses import StructureSummary, summarize
from repro.graph.ir import recover_structure
from repro.util.codebase import code_version, default_cache_root
from repro.util.fingerprint import stable_hash, workload_cache_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import Workload

#: Bump when StructureSummary's layout changes; old entries are never hit.
STRUCTURE_FORMAT = 1


def _summary_fingerprint(summary: StructureSummary) -> str:
    return stable_hash(summary)


class StructureCache:
    """Content-addressed store of :class:`StructureSummary` payloads."""

    def __init__(self, root: Optional[Path] = None) -> None:
        if root is None:
            root = default_cache_root() / "structure"
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keying ----------------------------------------------------------

    def key_for(self, workload: "Workload") -> str:
        """Cache key for one workload's recovered structure."""
        return stable_hash(STRUCTURE_FORMAT, code_version(),
                           workload_cache_key(workload))

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- storage ---------------------------------------------------------

    def get(self, key: str) -> Optional[StructureSummary]:
        """Load an entry, or None on miss/corruption (entry then dropped)."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            summary = entry["summary"]
            if entry["fingerprint"] != _summary_fingerprint(summary):
                raise ValueError("fingerprint mismatch")
            if not isinstance(summary, StructureSummary):
                raise TypeError("not a StructureSummary")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, key: str, summary: StructureSummary) -> None:
        """Store an entry atomically (rename over a temp file)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = {"fingerprint": _summary_fingerprint(summary),
                   "summary": summary}
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def stats(self) -> str:
        """One-line hit/miss summary for CLI output."""
        return (f"structure cache {self.root}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored, "
                f"{len(self)} entries")


def structure_summary(workload: "Workload",
                      cache: Optional[StructureCache] = None,
                      ) -> StructureSummary:
    """Recovered structure of a workload's program, through the cache.

    With no cache the workload's program is built and elaborated fresh.
    With a cache, a warm entry skips both program construction *and*
    kernel re-expansion entirely — the wall-clock win recorded in
    EXPERIMENTS.md.
    """
    if cache is None:
        return summarize(recover_structure(workload.build_program()))
    key = cache.key_for(workload)
    summary = cache.get(key)
    if summary is None:
        summary = summarize(recover_structure(workload.build_program()))
        cache.put(key, summary)
    return summary
