"""The structure cache: recovered program structure over :mod:`repro.store`.

Recovering structure means elaborating the whole program — every kernel
runs. For the evaluation suite that cost is paid per (workload, experiment)
point even though the structure depends only on the workload and the code
version. This cache stores the picklable :class:`StructureSummary` as a
typed schema over the shared sharded store, under exactly the contract of
:class:`repro.eval.cache.EvalCache`:

- keyed by ``stable_hash(format, code_version(), workload_cache_key(w))``
  — any edit to any ``repro`` source file (including ``repro/graph/``
  itself) invalidates every entry;
- each entry stores a fingerprint alongside the payload and is re-verified
  on load, so corruption is discarded and recomputed, never served;
- entries live in the ``"structure"`` namespace of the shared store
  (``<cache root>/structure/<shard>/<key>.pkl``), so the result cache and
  this cache share the root, the size budget, and the ``cache.*`` metrics
  sink without ever touching each other's files.

Within one process, :func:`structure_summary` additionally coalesces
concurrent recoveries of the same key (one kernel elaboration per
in-flight workload), and across processes the store's ``get_or_compute``
shard lock suppresses duplicate computes.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.graph.analyses import StructureSummary, summarize
from repro.graph.ir import recover_structure
from repro.store.coalesce import Coalescer
from repro.store.keys import code_version, stable_hash, workload_cache_key
from repro.store.sharded import ShardedStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import Workload

#: Bump when StructureSummary's layout changes; old entries are never hit.
STRUCTURE_FORMAT = 2

#: The store namespace structure entries live in.
NAMESPACE = "structure"


def _summary_fingerprint(summary: StructureSummary) -> str:
    return stable_hash(summary)


class StructureCache:
    """Content-addressed store of :class:`StructureSummary` payloads."""

    def __init__(self, root: Optional[Path] = None, *,
                 store: Optional[ShardedStore] = None) -> None:
        self.store = store if store is not None else ShardedStore(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def root(self) -> Path:
        """The namespace directory structure entries live under."""
        return self.store.root / NAMESPACE

    # -- keying ----------------------------------------------------------

    def key_for(self, workload: "Workload") -> str:
        """Cache key for one workload's recovered structure."""
        return stable_hash(STRUCTURE_FORMAT, code_version(),
                           workload_cache_key(workload))

    def _path(self, key: str) -> Path:
        return self.store.path_for(NAMESPACE, key)

    # -- storage ---------------------------------------------------------

    def get(self, key: str) -> Optional[StructureSummary]:
        """Load an entry, or None on miss/corruption (entry then dropped)."""
        payload = self.store.read(NAMESPACE, key)
        if payload is None:
            self._miss()
            return None
        try:
            entry = pickle.loads(payload)
            summary = entry["summary"]
            if entry["fingerprint"] != _summary_fingerprint(summary):
                raise ValueError("fingerprint mismatch")
            if not isinstance(summary, StructureSummary):
                raise TypeError("not a StructureSummary")
        except Exception as exc:
            self.store.discard_corrupt(NAMESPACE, key, repr(exc))
            self._miss()
            return None
        self.hits += 1
        self.store.metrics.add("hits")
        return summary

    def _miss(self) -> None:
        self.misses += 1
        self.store.metrics.add("misses")

    def put(self, key: str, summary: StructureSummary) -> None:
        """Store an entry (atomic publish + size-budget enforcement)."""
        payload = pickle.dumps(
            {"fingerprint": _summary_fingerprint(summary),
             "summary": summary},
            protocol=pickle.HIGHEST_PROTOCOL)
        self.store.write(NAMESPACE, key, payload)
        self.stores += 1

    def clear(self) -> int:
        """Delete every structure entry; returns how many were removed."""
        return self.store.clear(NAMESPACE)

    def __len__(self) -> int:
        return self.store.entry_count(NAMESPACE)

    def stats(self) -> str:
        """One-line hit/miss summary for CLI output."""
        return (f"structure cache {self.root}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored, "
                f"{len(self)} entries")


#: Process-wide single-flight map: concurrent structure_summary() calls
#: for the same key (threads in a future server) elaborate kernels once.
_COALESCER = Coalescer()


def structure_summary(workload: "Workload",
                      cache: Optional[StructureCache] = None,
                      ) -> StructureSummary:
    """Recovered structure of a workload's program, through the cache.

    With no cache the workload's program is built and elaborated fresh.
    With a cache, a warm entry skips both program construction *and*
    kernel re-expansion entirely — the wall-clock win recorded in
    EXPERIMENTS.md. Cache misses are coalesced per process (and, via the
    store's shard lock, per host), so identical in-flight recoveries run
    once.
    """
    if cache is None:
        return summarize(recover_structure(workload.build_program()))

    def compute() -> StructureSummary:
        summary = cache.get(key)
        if summary is None:
            summary = summarize(recover_structure(workload.build_program()))
            cache.put(key, summary)
        return summary

    key = cache.key_for(workload)
    return _COALESCER.run(key, compute)
