"""The built-in scheduling policies.

Four are the legacy dispatcher behaviors re-expressed on the policy seam
— bit-identical to the inline string branches they replace (the golden
fingerprints enforce this for the default):

- ``work-aware`` — TaskStream's policy: LPT pool order with late binding
  to the least-loaded lane (plus the config-affinity extension).
- ``round-robin`` — FIFO pool, task-count balancing.
- ``random`` — FIFO pool, uniform random lane choice.
- ``steal`` — round-robin placement; idle lanes steal half the richest
  queue (the software-runtime stand-in).

Four are the HPDC'23/Taskflow family the policy tournament studies:

- ``critical-path`` — pool ordered by bottom level (longest remaining
  dependence path, from :func:`repro.graph.analyses.bottom_levels` via
  attached :class:`~repro.sched.api.StructureHints`), late-bound to the
  least-loaded lane. Falls back to work-hint priority without hints.
- ``streaming-depth-first`` — pipeline-respecting depth-first order:
  consumers whose stream producers are in flight dispatch first (they
  can overlap), then deeper tasks before shallower ones. Purely online —
  it reads producer state, not recovered structure.
- ``block-partition`` — the static baseline's spatial/temporal blocks as
  a dynamic policy: each barrier phase (dependence depth) is block-split
  across lanes using the *same* splitter the static schedule uses, with
  arrival order standing in for spawn order. Falls back to cyclic
  placement per depth without hints.
- ``steal-tuned`` — ``steal`` with the victim threshold and idle backoff
  set from the parallelism profile: don't pay the steal latency for a
  backlog that cannot amortize it, back off harder when the program has
  little slack parallelism.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.sched.api import SchedulingPolicy, register_policy

if TYPE_CHECKING:
    from repro.core.dispatcher import Dispatcher
    from repro.core.task import Task


# -- the legacy four ---------------------------------------------------------

@register_policy
class WorkAwarePolicy(SchedulingPolicy):
    """TaskStream's work-aware least-loaded policy (LPT + late binding).

    Walks the pool largest-work-first and binds a task only to a lane
    whose queue is nearly empty (``Dispatcher.LOW_WATER``) — late binding
    is what lets the largest remaining task land on the least-loaded lane
    instead of committing everything in arrival order at time zero. With
    the ``config_affinity`` extension it additionally prefers a candidate
    lane already holding the task's fabric configuration. With
    ``work_aware_lb`` ablated it degrades to the naive round-robin path.
    """

    name = "work-aware"

    def select(self, d: "Dispatcher") -> Optional[tuple["Task", int]]:
        if not d.pool:
            return None
        if not (d.features and d.features.work_aware_lb):
            return self._naive_select(d)
        fallback: Optional[tuple["Task", int]] = None
        passed_over = 0
        for task in sorted(d.pool, key=lambda t: -t.work):
            candidates = [i for i in d.candidates(task)
                          if d.queues[i].level < d.LOW_WATER]
            if not candidates:
                if fallback is None:
                    passed_over += 1
                continue
            if fallback is None:
                fallback = (task, d.least_loaded(candidates))
                if not d.features.config_affinity:
                    break
            if d.features.config_affinity:
                lane = d.affinity_lane(candidates, task)
                if lane is not None:
                    d.counters.add("dispatch.affinity_matches")
                    d.pool.remove(task)
                    return task, lane
        if fallback is not None:
            d.pool.remove(fallback[0])
            if passed_over and d.sched_stats:
                d.note_inversion()
        return fallback


@register_policy
class RoundRobinPolicy(SchedulingPolicy):
    """FIFO pool, round-robin lane choice (task-count balancing)."""

    name = "round-robin"

    def select(self, d: "Dispatcher") -> Optional[tuple["Task", int]]:
        if not d.pool:
            return None
        return self._naive_select(d)


@register_policy
class RandomPolicy(SchedulingPolicy):
    """FIFO pool, uniform random lane choice (the floor baseline)."""

    name = "random"

    def select(self, d: "Dispatcher") -> Optional[tuple["Task", int]]:
        if not d.pool:
            return None
        return self._naive_select(d)

    def _place(self, d: "Dispatcher", candidates: list[int]) -> int:
        return d.rng.choice(candidates)


@register_policy
class StealPolicy(RoundRobinPolicy):
    """Round-robin placement; idle lanes steal from the richest queue.

    The victim is the *alive* lane with the most queued (not running)
    tasks — identical to the legacy inline branch on fault-free runs,
    where every lane is alive, but a fail-stopped lane is never chosen
    (nor allowed to act as the thief; the dispatcher enforces that side).
    """

    name = "steal"
    steals = True

    def choose_victim(self, d: "Dispatcher",
                      thief_lane: int) -> Optional[int]:
        alive = [i for i in range(d.num_lanes) if i not in d.dead_lanes]
        if not alive:
            return None
        victim = max(alive, key=lambda i: d.queues[i].level)
        if victim == thief_lane or self._too_poor(d, victim):
            return None
        return victim

    def _too_poor(self, d: "Dispatcher", victim: int) -> bool:
        """Whether the victim's backlog is not worth the steal latency."""
        return d.queues[victim].level == 0


# -- the tournament family ---------------------------------------------------

@register_policy
class CriticalPathPolicy(SchedulingPolicy):
    """Bottom-level priority dispatch (HPDC'23-style list scheduling).

    The pool is ordered by each task's longest remaining dependence path
    (its group's bottom level from the attached hints), so work feeding
    the critical chain dispatches ahead of slack work; lanes are bound
    late exactly like work-aware. Without hints the work estimate stands
    in for the bottom level (a task's own work is a lower bound on it).
    """

    name = "critical-path"
    uses_structure = True

    def _bound(self) -> None:
        self._priority = {}

    def _attached(self) -> None:
        self._priority = dict(self.hints.priority) if self.hints else {}

    def priority_of(self, task: "Task") -> float:
        return self._priority.get((task.type.name, task.depth), task.work)

    def select(self, d: "Dispatcher") -> Optional[tuple["Task", int]]:
        if not d.pool:
            return None
        chosen: Optional[tuple["Task", int]] = None
        passed_over = 0
        for task in sorted(d.pool, key=lambda t: -self.priority_of(t)):
            candidates = [i for i in d.candidates(task)
                          if d.queues[i].level < d.LOW_WATER]
            if not candidates:
                passed_over += 1
                continue
            chosen = (task, d.least_loaded(candidates))
            break
        if chosen is None:
            return None
        d.pool.remove(chosen[0])
        if passed_over and d.sched_stats:
            d.note_inversion()
        return chosen


@register_policy
class StreamingDepthFirstPolicy(SchedulingPolicy):
    """Depth-first, pipeline-respecting pool order (streaming schedules).

    Consumers whose stream producers are *in flight* dispatch first —
    placing them now is what converts a recovered stream edge into actual
    producer/consumer overlap instead of a buffered handoff. Among the
    rest, deeper tasks beat shallower ones (depth-first keeps a spawn
    chain hot on chip rather than sweeping breadth-first). Ties keep
    arrival order; lanes are bound late like work-aware.
    """

    name = "streaming-depth-first"

    @staticmethod
    def _pool_key(task: "Task") -> tuple[int, int]:
        live_producer = any(p.started and not p.completed
                            for p in task.stream_from)
        return (0 if live_producer else 1, -task.depth)

    def select(self, d: "Dispatcher") -> Optional[tuple["Task", int]]:
        if not d.pool:
            return None
        chosen: Optional[tuple["Task", int]] = None
        passed_over = 0
        for task in sorted(d.pool, key=self._pool_key):
            candidates = [i for i in d.candidates(task)
                          if d.queues[i].level < d.LOW_WATER]
            if not candidates:
                passed_over += 1
                continue
            chosen = (task, d.least_loaded(candidates))
            break
        if chosen is None:
            return None
        d.pool.remove(chosen[0])
        if passed_over and d.sched_stats:
            d.note_inversion()
        return chosen


@register_policy
class BlockPartitionPolicy(SchedulingPolicy):
    """The static schedule's spatial/temporal blocks, played dynamically.

    Each barrier phase (= dependence depth) is block-split across lanes
    with the same splitter the static baseline uses (:meth:`partition`
    on a synthetic index list), and the *n*-th arriving task of a depth
    takes the lane of block slot *n*. Temporal structure (phases) maps to
    time, spatial structure (the block) to lanes — the HPDC'23 spatial
    partitioning scheme. Without hints the phase sizes are unknown, so
    placement degrades to cyclic within each depth. A target lane that is
    dead or excluded (e.g. it holds the task's in-flight stream producer)
    falls back to the least-loaded eligible lane.
    """

    name = "block-partition"
    uses_structure = True

    def _bound(self) -> None:
        #: depth -> tasks of that depth seen so far (arrival index).
        self._arrived: dict[int, int] = {}
        self._slot_lane: dict[int, list[int]] = {}

    def _attached(self) -> None:
        self._arrived = {}
        self._slot_lane = {}
        if self.hints is None:
            return
        for depth, size in enumerate(self.hints.phase_sizes):
            blocks = self.partition(list(range(size)), self.num_lanes)
            lanes = [0] * size
            for lane, slots in enumerate(blocks):
                for slot in slots:
                    lanes[slot] = lane
            self._slot_lane[depth] = lanes

    def select(self, d: "Dispatcher") -> Optional[tuple["Task", int]]:
        if not d.pool:
            return None
        task = d.pool.pop(0)
        index = self._arrived.get(task.depth, 0)
        self._arrived[task.depth] = index + 1
        slots = self._slot_lane.get(task.depth)
        if slots is not None and index < len(slots):
            lane = slots[index]
        else:
            lane = index % d.num_lanes
        candidates = d.candidates(task)
        if lane not in candidates:
            lane = d.least_loaded(candidates)
        return task, lane


@register_policy
class StealTunedPolicy(StealPolicy):
    """Work stealing tuned by the parallelism profile (Taskflow-style).

    Two knobs move off their fixed defaults when hints attach:

    - **victim threshold** — a steal only pays when the expected haul
      (half the backlog, at the program's mean task cost including the
      per-task overhead) amortizes ``steal_cycles``; victims below the
      threshold are skipped without paying the latency.
    - **idle backoff** — idle lanes poll once per ``steal_cycles/3``
      instead of the fixed 16 cycles, and twice that when the program's
      inherent parallelism cannot cover the lane count anyway (starved
      lanes are expected, so polling harder only burns dispatch slots).
    """

    name = "steal-tuned"
    uses_structure = True

    def _bound(self) -> None:
        self._threshold = 1

    def _attached(self) -> None:
        self._threshold = 1
        self.idle_backoff = 16
        hints = self.hints
        if hints is None or hints.task_count <= 0 or self.config is None:
            return
        cost = hints.mean_task_work + self.config.work_overhead
        self._threshold = max(
            1, math.ceil(2.0 * self.config.steal_cycles / max(cost, 1.0)))
        backoff = max(4, int(self.config.steal_cycles) // 3)
        if hints.parallelism < self.num_lanes:
            backoff *= 2
        self.idle_backoff = backoff

    def _too_poor(self, d: "Dispatcher", victim: int) -> bool:
        return d.queues[victim].level < self._threshold
