"""Pluggable dispatch scheduling: the policy protocol and registry.

See :mod:`repro.sched.api` for the :class:`SchedulingPolicy` protocol and
the name-keyed registry, :mod:`repro.sched.policies` for the built-in
policies, and :mod:`repro.sched.structure` for deriving
:class:`StructureHints` from recovered task graphs. ``docs/scheduling.md``
documents the seam and the policy tournament.
"""

from repro.sched.api import (
    SchedulingPolicy,
    StructureHints,
    create_policy,
    policy_names,
    policy_uses_structure,
    register_policy,
)

__all__ = [
    "SchedulingPolicy",
    "StructureHints",
    "create_policy",
    "policy_names",
    "policy_uses_structure",
    "register_policy",
]
