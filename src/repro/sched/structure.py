"""Deriving :class:`~repro.sched.api.StructureHints` from recovered graphs.

The bridge between the graph layer and structure-aware policies. Two
entry points:

- :func:`hints_from_graph` — digest an already-recovered
  :class:`~repro.graph.ir.TaskGraph` (the static baseline, which holds
  one anyway).
- :func:`hints_from_factory` — build a **twin** program instance and
  recover its structure. This is the path dynamic (Delta) runs must use:
  :func:`~repro.graph.ir.recover_structure` executes the kernels
  functionally and mutates program state, so it must never run on the
  same program instance the simulator will execute. The twin's task ids
  differ (ids are process-global), which is why hints key on stable
  (type name, depth) coordinates rather than ids or names.

Recovery failures degrade to ``None`` — every policy works hint-free.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.graph.analyses import bottom_levels, critical_path
from repro.graph.ir import GraphValidationError, TaskGraph, recover_structure
from repro.sched.api import StructureHints, TaskKey

__all__ = ["hints_from_factory", "hints_from_graph"]


def hints_from_graph(graph: TaskGraph) -> StructureHints:
    """Digest one recovered task graph into pure-data scheduling hints.

    ``priority`` takes the **max** bottom level within each (type, depth)
    group: scheduling the group as urgently as its most critical member
    can only advance the critical chain, never delay it.
    """
    levels = bottom_levels(graph)
    priority: dict[TaskKey, float] = {}
    for task in graph.tasks:
        key = (task.type.name, task.depth)
        level = levels[task.task_id]
        if level > priority.get(key, float("-inf")):
            priority[key] = level
    cp = critical_path(graph)
    return StructureHints(
        program=graph.program.name,
        priority=priority,
        phase_sizes=tuple(len(phase) for phase in graph.phases),
        total_work=graph.total_work,
        cp_work=cp.work,
        task_count=graph.task_count,
    )


def hints_from_factory(build_program: Callable[[], object],
                       ) -> Optional[StructureHints]:
    """Recover hints from a twin program instance, or None on failure.

    ``build_program`` is any zero-argument factory returning a fresh
    :class:`~repro.core.program.Program` (e.g. a workload's
    ``build_program`` bound method — passed as a callable so this layer
    needs no knowledge of workload objects).
    """
    try:
        graph = recover_structure(build_program())
    except GraphValidationError:
        return None
    return hints_from_graph(graph)
