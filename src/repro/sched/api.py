"""The scheduling-policy seam: protocol, registry, and structure hints.

TaskStream's dispatcher used to hardwire one work-aware policy (plus
steal/round-robin/random as inline string branches). This module makes
the policy a first-class, pluggable object:

- :class:`SchedulingPolicy` — the protocol a policy implements: a
  ready-pool ordering + lane-selection hook (:meth:`~SchedulingPolicy.
  select`), steal hooks (:meth:`~SchedulingPolicy.choose_victim` /
  :meth:`~SchedulingPolicy.steal_count`), a static-partition hook
  (:meth:`~SchedulingPolicy.partition`, shared with the static-parallel
  baseline), and an optional recovered-structure attach point
  (:meth:`~SchedulingPolicy.attach`).
- a **name-keyed registry** — :func:`register_policy`,
  :func:`create_policy`, :func:`policy_names`. Config validation
  (``DispatchConfig``) and the CLI ``--policy`` choices both derive from
  it, so registering a policy is the single step that makes it runnable
  everywhere (``repro run --policy ...``, sweeps, the tournament).
- :class:`StructureHints` — the pure-data digest of a recovered
  :class:`~repro.graph.ir.TaskGraph` that structure-aware policies
  consume. Hints are keyed by *stable* task coordinates (type name ×
  dependence depth), never by task ids: ids are process-global, so a
  twin ``build_program()`` instance — which is where hints must come
  from, since recovering structure executes kernels — numbers its tasks
  differently.

This module deliberately imports nothing above :mod:`repro.util` at
module scope so that :mod:`repro.core` can depend on the seam without a
cycle; the built-in policies (:mod:`repro.sched.policies`) load lazily on
first registry access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # circular-import-free type names
    from repro.arch.config import DispatchConfig, FeatureFlags
    from repro.core.dispatcher import Dispatcher
    from repro.core.task import Task
    from repro.util.rng import DeterministicRng

__all__ = [
    "SchedulingPolicy",
    "StructureHints",
    "create_policy",
    "policy_names",
    "policy_uses_structure",
    "register_policy",
]


# -- structure hints ---------------------------------------------------------

#: A stable task coordinate: (task type name, dependence depth). Unlike
#: ``task_id`` (a process-global counter) this survives rebuilding the
#: program, which hint recovery must do — running the kernels mutates
#: program state, so hints always come from a *twin* build.
TaskKey = tuple[str, int]


@dataclass(frozen=True)
class StructureHints:
    """Pure-data scheduling hints from one recovered task graph.

    ``priority`` maps each task coordinate to the **bottom level** of its
    group — the longest remaining dependence path (task work included)
    from any group member to a graph sink, under the typed-edge timing
    semantics of :func:`repro.graph.analyses.bottom_levels`.
    ``phase_sizes[d]`` is the task count of barrier phase ``d`` (tasks at
    dependence depth ``d``); ``total_work``/``cp_work`` are T1/T∞.
    """

    program: str = ""
    priority: Mapping[TaskKey, float] = field(default_factory=dict)
    phase_sizes: tuple[int, ...] = ()
    total_work: float = 0.0
    cp_work: float = 0.0
    task_count: int = 0

    @property
    def parallelism(self) -> float:
        """Inherent parallelism T1/T∞ (>= 1 for non-empty graphs)."""
        if self.cp_work <= 0:
            return float(self.task_count) or 1.0
        return self.total_work / self.cp_work

    @property
    def mean_task_work(self) -> float:
        """Average task work estimate (0 for an empty graph)."""
        if self.task_count <= 0:
            return 0.0
        return self.total_work / self.task_count


# -- the policy protocol -----------------------------------------------------

class SchedulingPolicy:
    """Base class every dispatch policy extends.

    A policy owns three decisions the dispatcher used to hardwire:

    1. **Pool ordering + lane selection** — :meth:`select` picks the next
       ``(task, lane)`` pair from the dispatcher's ready pool (and must
       remove the task from ``dispatcher.pool``), or returns None to wait.
       The dispatcher keeps everything else: readiness tracking, dispatch
       serialization, queue put/get, bookkeeping, fault recovery.
    2. **Steal behavior** — :meth:`choose_victim` (before the steal
       latency is paid) and :meth:`steal_count` (after). Policies with
       ``steals = False`` never see either call.
    3. **Static partitioning** — :meth:`partition` splits one barrier
       phase across lanes for the static-parallel baseline; the default
       delegates to the shared splitters in :mod:`repro.core.program`.

    Policies are bound once per run (:meth:`bind`) and optionally handed
    recovered-structure hints (:meth:`attach`); both reset all policy
    state, so a fresh bind is deterministic regardless of prior use.
    Decision hooks must not touch the event loop — they are plain calls
    inside the dispatch process, so a policy cannot perturb timing beyond
    the decisions themselves.
    """

    #: Registry key; also the ``DispatchConfig.policy`` spelling.
    name = ""
    #: Whether :meth:`attach` benefits from recovered-structure hints
    #: (drives whether callers pay the twin-build recovery).
    uses_structure = False
    #: Whether idle lanes should attempt steals under this policy.
    steals = False

    def __init__(self) -> None:
        self.config: Optional["DispatchConfig"] = None
        self.features: Optional["FeatureFlags"] = None
        self.rng: Optional["DeterministicRng"] = None
        self.num_lanes = 0
        self.hints: Optional[StructureHints] = None
        #: Idle-lane backoff cycles between failed steal attempts.
        self.idle_backoff = 16
        self._rr_next = 0

    # -- lifecycle -----------------------------------------------------------

    def bind(self, config: "DispatchConfig", num_lanes: int,
             features: Optional["FeatureFlags"] = None,
             rng: Optional["DeterministicRng"] = None) -> None:
        """Bind to one run's machine shape; resets all policy state."""
        self.config = config
        self.num_lanes = num_lanes
        self.features = features
        self.rng = rng
        self.hints = None
        self.idle_backoff = 16
        self._rr_next = 0
        self._bound()

    def _bound(self) -> None:
        """Subclass hook: recompute bind-derived state."""

    def attach(self, hints: Optional[StructureHints]) -> None:
        """Attach recovered-structure hints (None clears them).

        Every policy must keep working without hints — attach is an
        optimization channel, not a requirement — so structure recovery
        failures degrade to hint-free scheduling, never to an error.
        """
        self.hints = hints
        self._attached()

    def _attached(self) -> None:
        """Subclass hook: recompute hint-derived state."""

    # -- dispatch hooks ------------------------------------------------------

    def select(self, d: "Dispatcher") -> Optional[tuple["Task", int]]:
        """Pick-and-remove the next pool task and its lane, or None."""
        raise NotImplementedError

    # -- steal hooks ---------------------------------------------------------

    def choose_victim(self, d: "Dispatcher",
                      thief_lane: int) -> Optional[int]:
        """The lane to steal from, or None to skip (no latency paid)."""
        return None

    def steal_count(self, d: "Dispatcher", victim_level: int) -> int:
        """How many tasks to take, given the victim's queue level *after*
        the steal latency elapsed (the classic steal-half rule)."""
        return max(1, victim_level // 2)

    # -- static-partition hook -----------------------------------------------

    def partition(self, tasks: Sequence["Task"], lanes: int,
                  mode: str = "block") -> list[list["Task"]]:
        """Split one barrier phase across ``lanes`` for a static schedule.

        The base implementation is the single source of the classic
        splitters — the static baseline and the block-partition policy
        both call through here rather than duplicating the arithmetic.
        """
        from repro.core.program import partition_block, partition_cyclic

        if mode == "cyclic":
            return partition_cyclic(tasks, lanes)
        return partition_block(tasks, lanes)

    # -- shared helpers ------------------------------------------------------

    def _naive_select(self, d: "Dispatcher") -> tuple["Task", int]:
        """FIFO pool drain + eager placement via the dispatcher's
        ``_choose_naive`` seam (kept monkeypatchable for the metamorphic
        lane-permutation tests)."""
        task = d.pool.pop(0)
        return task, d._choose_naive(task)

    def choose_lane(self, d: "Dispatcher", task: "Task") -> int:
        """Eagerly place one task (the naive-policy lane choice)."""
        candidates = d.candidates(task)
        free = [i for i in candidates
                if d.queues[i].level < d.config.queue_depth]
        if free:
            candidates = free
        return self._place(d, candidates)

    def _place(self, d: "Dispatcher", candidates: list[int]) -> int:
        """Round-robin over the candidate lanes (task-count balancing)."""
        for _ in range(d.num_lanes):
            lane = self._rr_next
            self._rr_next = (self._rr_next + 1) % d.num_lanes
            if lane in candidates:
                return lane
        return candidates[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


# -- the registry ------------------------------------------------------------

_REGISTRY: dict[str, type] = {}
_BUILTINS_LOADED = False


def register_policy(cls: type) -> type:
    """Class decorator: add a :class:`SchedulingPolicy` to the registry.

    The class's ``name`` becomes its config/CLI spelling. Re-registering
    the same class is a no-op; claiming another class's name is an error.
    """
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise ValueError(f"policy class {cls.__name__} needs a non-empty "
                         f"string `name`")
    current = _REGISTRY.get(name)
    if current is not None and current is not cls:
        raise ValueError(f"policy name {name!r} already registered by "
                         f"{current.__name__}")
    _REGISTRY[name] = cls
    return cls


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        # Importing the module runs its @register_policy decorators.
        import repro.sched.policies  # noqa: F401


def policy_names() -> tuple[str, ...]:
    """Every registered policy name, sorted (the single source of truth
    for ``DispatchConfig`` validation and the CLI ``--policy`` choices)."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def create_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered policy (fresh, unbound)."""
    _ensure_builtins()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scheduling policy {name!r}; registered: "
                       f"{', '.join(sorted(_REGISTRY))}") from None
    return cls()


def policy_uses_structure(name: str) -> bool:
    """Whether ``name`` wants recovered-structure hints attached (lets
    callers skip the twin-build recovery for online-only policies)."""
    _ensure_builtins()
    cls = _REGISTRY.get(name)
    return bool(cls is not None and cls.uses_structure)
