"""The shared run lifecycle: drive a machine to completion, or diagnose why
it did not get there.

Every execution model runs the same way: submit work, run the event loop
under an optional max-cycle guard, check that the program actually drained
(raising :class:`ExecutionStalled` with diagnostics otherwise), and
assemble the canonical :class:`~repro.machine.result.RunResult` from the
machine's metrics bus. :class:`RunSession` owns that lifecycle so Delta
and the static baseline cannot drift apart in how they account progress
or report results.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.machine.machine import Machine
from repro.machine.result import RunResult


class ExecutionStalled(RuntimeError):
    """The simulation ended with tasks still outstanding (modeling bug or
    genuinely deadlocked program)."""


class RunSession:
    """Progress accounting + stall detection + result assembly for one run.

    The execution model calls :meth:`task_completed` as tasks retire,
    :meth:`run_until_complete` to drive the event loop, and
    :meth:`result` to collect the canonical statistics.
    """

    def __init__(self, machine: Machine, machine_name: str,
                 program_name: str, state: object) -> None:
        self.machine = machine
        self.machine_name = machine_name
        self.program_name = program_name
        self.state = state
        self.tasks_executed = 0
        self.last_completion = 0.0

    # -- progress accounting ----------------------------------------------

    def task_completed(self) -> None:
        """Record one retired task at the current simulated time."""
        self.tasks_executed += 1
        self.last_completion = self.machine.env.now

    # -- lifecycle ---------------------------------------------------------

    def run_until_complete(self, max_cycles: Optional[float],
                           finished: Callable[[], bool],
                           stall_detail: Optional[Callable[[], str]] = None,
                           ) -> None:
        """Run the event loop; raise :class:`ExecutionStalled` if the
        completion condition does not hold when it returns.

        ``finished`` is the execution model's completion predicate (the
        dispatcher's drained event, the phase schedule's final barrier);
        ``stall_detail`` supplies model-specific diagnostics for the error.
        """
        env = self.machine.env
        env.run(until=max_cycles)
        if not finished():
            detail = f" {stall_detail()}" if stall_detail is not None else ""
            detail += f"\n{self._lane_snapshot()}"
            sanitizer = self.machine.sanitizer
            if sanitizer.enabled:
                detail += f"\n{sanitizer.pending_report()}"
            raise ExecutionStalled(
                f"{self.machine_name} run of {self.program_name!r} did not "
                f"finish: stalled at cycle {env.now:,.0f}{detail}")

    def _lane_snapshot(self) -> str:
        """One line of per-lane occupancy — always part of a stall report,
        so a hung run is diagnosable without re-running under the
        sanitizer."""
        lanes = ", ".join(
            f"{lane.name}: busy={lane.busy_cycles:,.0f}"
            for lane in self.machine.lanes)
        return (f"lanes [{lanes}]; "
                f"{self.tasks_executed} tasks retired, "
                f"last at cycle {self.last_completion:,.0f}")

    # -- result assembly ---------------------------------------------------

    def result(self, cycles: Optional[float] = None) -> RunResult:
        """Assemble the canonical result from the machine's metrics bus.

        ``cycles`` defaults to the completion time of the last retired
        task; barrier-structured models pass the final barrier time
        (``env.now``) instead.

        With the sanitizer attached, its whole-run balance checks (task
        conservation, work accounting, stream and multicast conservation)
        run here, before the result is assembled.
        """
        machine = self.machine
        machine.sanitizer.finish(machine.metrics, machine.lane_busy)
        return RunResult(
            machine=self.machine_name,
            program_name=self.program_name,
            config=machine.config,
            cycles=self.last_completion if cycles is None else cycles,
            tasks_executed=self.tasks_executed,
            counters=machine.metrics,
            lane_busy=machine.lane_busy,
            state=self.state,
            trace=machine.tracer if machine.tracer.enabled else None,
        )
