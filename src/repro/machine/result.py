"""Run results: everything the evaluation harness reads after a simulation.

Every simulator built on :mod:`repro.machine` — the Delta runtime, the
static-parallel baseline, the software task runtime — returns a
:class:`RunResult` assembled by :class:`~repro.machine.session.RunSession`,
so every experiment compares like with like. Derived statistics read the
typed metrics bus (:class:`~repro.machine.metrics.MetricsBus`) rather than
raw counter strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.arch.config import MachineConfig
from repro.machine.metrics import MetricsBus
from repro.sim import Counters
from repro.sim.trace import Tracer
from repro.util.stats import coefficient_of_variation


@dataclass
class RunResult:
    """Outcome of simulating one program on one machine."""

    machine: str
    program_name: str
    config: MachineConfig
    cycles: float
    tasks_executed: int
    counters: Counters
    lane_busy: list[float]
    state: Any
    #: Timeline of the run when tracing was requested (see Delta.run /
    #: StaticParallel.run ``trace=`` parameter), else None.
    trace: Optional["Tracer"] = None

    @property
    def metrics(self) -> MetricsBus:
        """Typed, namespaced view of the counter bag."""
        return MetricsBus.adopt(self.counters)

    @property
    def imbalance_cv(self) -> float:
        """Coefficient of variation of per-lane busy cycles (figure F4)."""
        if not self.lane_busy:
            return 0.0
        return coefficient_of_variation(self.lane_busy)

    @property
    def mean_lane_utilization(self) -> float:
        """Mean busy fraction across lanes."""
        if not self.lane_busy or self.cycles <= 0:
            return 0.0
        return sum(self.lane_busy) / (len(self.lane_busy) * self.cycles)

    @property
    def dram_bytes(self) -> float:
        """Actual DRAM bytes moved (reads + writes)."""
        return self.metrics.dram.total_bytes

    @property
    def noc_bytes(self) -> float:
        """Total NoC link-bytes moved."""
        return self.metrics.noc.bytes

    def speedup_over(self, other: "RunResult") -> float:
        """``other.cycles / self.cycles`` — this result's speedup."""
        if self.cycles <= 0:
            raise ValueError("cannot compute speedup of a zero-cycle run")
        return other.cycles / self.cycles

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.machine:>7} {self.program_name:<14} "
                f"{self.cycles:>12,.0f} cyc  {self.tasks_executed:>6} tasks  "
                f"CV={self.imbalance_cv:.3f}  "
                f"DRAM={self.dram_bytes / 1024:.1f} KiB  "
                f"NoC={self.noc_bytes / 1024:.1f} KiB")
