"""The typed metrics bus: structured, namespaced run statistics.

:class:`MetricsBus` is the structured successor to the ad-hoc
:class:`~repro.sim.stats.Counters` bag. The underlying store is unchanged
(dotted counter names, so every existing fingerprint and golden file is
preserved bit-for-bit), but producers and consumers now go through
*counter groups* — one namespace per subsystem (``dram``, ``noc``,
``mcast``, ``pipe``, ``dispatch``, ...) with declared, documented metrics —
instead of scattering raw string keys across the codebase.

A group is a view: it holds no state of its own, reads and writes land in
the shared store, and :meth:`MetricsBus.adopt` can wrap any plain
``Counters`` (e.g. one carried by an unpickled :class:`RunResult`) without
copying.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.sim.stats import Counters


class metric:
    """Declared read accessor for one counter inside a group.

    Reading an undeclared or never-incremented counter yields 0.0, matching
    ``Counters.get`` semantics.
    """

    def __init__(self, name: str, doc: str = "") -> None:
        self.name = name
        self.__doc__ = doc or f"Value of the {name!r} counter (0 if unset)."

    def __set_name__(self, owner: type, attr: str) -> None:
        self._attr = attr

    def __get__(self, group: "CounterGroup", objtype: type = None) -> float:
        if group is None:
            return self
        return group.get(self.name)


class CounterGroup:
    """A namespaced view over the shared counter store.

    Writes prepend the group prefix, so ``bus.pipe.add("bytes", n)`` lands
    on the same ``pipe.bytes`` counter the evaluation reports and golden
    fingerprints have always used.
    """

    #: Dotted-name namespace this group owns (without the trailing dot).
    prefix: ClassVar[str] = ""

    def __init__(self, store: Counters, prefix: str = None) -> None:
        self._store = store
        if prefix is not None:
            self.prefix = prefix

    def _key(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    # -- writes ------------------------------------------------------------

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``<prefix>.<name>`` by ``amount``."""
        self._store.add(self._key(name), amount)

    def set_max(self, name: str, value: float) -> None:
        """Keep the maximum observed value under ``<prefix>.<name>``."""
        self._store.set_max(self._key(name), value)

    # -- reads -------------------------------------------------------------

    def get(self, name: str, default: float = 0.0) -> float:
        """Read ``<prefix>.<name>`` (0 by default)."""
        return self._store.get(self._key(name), default)

    def total(self) -> float:
        """Sum of every counter in this namespace."""
        return self._store.sum_prefix(f"{self.prefix}.")

    def as_dict(self) -> dict[str, float]:
        """All counters in this namespace, keyed by the local name."""
        return self._store.by_prefix(f"{self.prefix}.")

    def declared(self) -> list[str]:
        """Names of the metrics this group declares (for introspection)."""
        return sorted(attr.name for attr in vars(type(self)).values()
                      if isinstance(attr, metric))

    def __contains__(self, name: str) -> bool:
        return self._key(name) in self._store

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.prefix!r}: {self.as_dict()}>"


class DramMetrics(CounterGroup):
    """Main-memory traffic (written by :class:`repro.arch.dram.Dram`)."""

    prefix = "dram"
    read_bytes = metric("read_bytes", "Bytes read from DRAM.")
    write_bytes = metric("write_bytes", "Bytes written back to DRAM.")
    read_effective_bytes = metric(
        "read_effective_bytes",
        "Read bytes scaled by the row-locality penalty.")
    write_effective_bytes = metric(
        "write_effective_bytes",
        "Write bytes scaled by the row-locality penalty.")

    @property
    def total_bytes(self) -> float:
        """Actual DRAM bytes moved in either direction."""
        return self.read_bytes + self.write_bytes


class NocMetrics(CounterGroup):
    """Interconnect traffic (written by :class:`repro.arch.noc.Noc`)."""

    prefix = "noc"
    bytes = metric("bytes", "Total link-bytes moved (hops x payload).")
    messages = metric("messages", "Unicast messages sent.")
    multicasts = metric("multicasts", "Multicast tree sends.")
    forwarded_stream_bytes = metric(
        "forwarded_stream_bytes", "Lane-to-lane forwarded stream bytes.")


class MulticastMetrics(CounterGroup):
    """Shared-read recovery (written by the multicast manager)."""

    prefix = "mcast"
    fetches = metric("fetches", "Coalesced DRAM fetches of shared regions.")
    hits = metric("hits", "Requests served from scratchpad residency.")
    coalesced = metric("coalesced", "Requests folded into an open batch.")
    too_large = metric("too_large", "Regions too big to become resident.")
    early_closes = metric(
        "early_closes",
        "Coalescing windows closed early by the sharing-set oracle.")
    disabled_duplicate_fetches = metric(
        "disabled_duplicate_fetches",
        "Shared reads that paid a private fetch (multicast ablated).")


class PipelineMetrics(CounterGroup):
    """Recovered producer->consumer streams (written by the Delta runtime)."""

    prefix = "pipe"
    bytes = metric("bytes", "Bytes forwarded lane-to-lane over channels.")
    streams = metric("streams", "Producer->consumer channels established.")
    disabled_round_trips = metric(
        "disabled_round_trips",
        "Streams that degraded to a DRAM round trip (pipelining ablated).")


class DispatchMetrics(CounterGroup):
    """Hardware dispatcher activity (written by the dispatcher)."""

    prefix = "dispatch"
    submitted = metric("submitted", "Tasks submitted for readiness tracking.")
    dispatched = metric("dispatched", "Tasks placed on a lane queue.")
    completed = metric("completed", "Tasks retired.")
    steals = metric("steals", "Successful steals (steal policy only).")
    cycles = metric("cycles", "Cycles the dispatch port was busy.")
    affinity_matches = metric(
        "affinity_matches", "Placements won by the config-affinity tie-break.")


class SchedMetrics(CounterGroup):
    """Scheduling-policy observability (written by the dispatcher).

    Opt-in via ``DispatchConfig.sched_stats`` — like ``faults.*``, a
    default run writes no ``sched.*`` counters at all, keeping its
    fingerprint bit-identical with the group compiled in.
    """

    prefix = "sched"
    pool_peak = metric("pool_peak", "High-water mark of the ready pool.")
    steal_attempts = metric(
        "steal_attempts", "Idle-lane steal attempts (incl. victimless).")
    steal_hits = metric(
        "steal_hits", "Steal attempts that landed at least one task.")
    priority_inversions = metric(
        "priority_inversions",
        "Dispatches where a higher-priority task had no eligible lane.")


class CacheMetrics(CounterGroup):
    """On-disk store effectiveness (written by the :mod:`repro.store` layer).

    Harness-side by construction: these counters are written by the
    process driving a sweep (the CLI hands its bus's ``cache`` group to
    the store), never by a simulated machine, so run fingerprints and the
    golden files cannot see them.
    """

    prefix = "cache"
    hits = metric("hits", "Entries served (schema fingerprint verified).")
    misses = metric("misses", "Entries absent (corrupt entries count too).")
    stores = metric("stores", "Entries published to the store.")
    evictions = metric(
        "evictions", "Entries removed by the size-cap eviction policy.")
    evicted_bytes = metric("evicted_bytes", "Bytes reclaimed by eviction.")
    coalesced = metric(
        "coalesced",
        "Callers that joined an identical in-flight computation.")
    corrupt = metric(
        "corrupt", "Truncated/garbage/tampered entries discarded on load.")
    lock_waits = metric(
        "lock_waits", "Shard-lock acquisitions that had to block.")

    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when none ran)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ServeMetrics(CounterGroup):
    """Sweep-server activity (written by :mod:`repro.serve`).

    Harness-side like ``cache.*``: only the long-running server front-end
    writes these, never a simulated machine, so run fingerprints and the
    golden files cannot see them.
    """

    prefix = "serve"
    submitted = metric("submitted", "Job submissions accepted or rejected.")
    started = metric("started", "Jobs claimed off the queue by a worker.")
    completed = metric("completed", "Jobs that ran to completion.")
    cancelled = metric("cancelled", "Jobs cancelled (queued or mid-flight).")
    rejected = metric("rejected", "Submissions refused by a tenant quota.")
    failed = metric("failed", "Jobs that ended in an error.")
    replayed = metric(
        "replayed", "Persisted jobs re-queued after a server restart.")
    coalesced_sweeps = metric(
        "coalesced_sweeps",
        "Jobs that shared another job's identical in-flight sweep.")
    points = metric("points", "Per-point results streamed to job logs.")
    queue_wait_s = metric(
        "queue_wait_s", "Seconds jobs spent queued before starting, total.")
    stream_stalls = metric(
        "stream_stalls",
        "Event-stream writes that found the client's buffer still full.")
    lease_renewals = metric(
        "lease_renewals", "Heartbeats that extended a running job's lease.")
    lease_expired = metric(
        "lease_expired",
        "Running jobs whose lease deadline passed without a heartbeat.")
    lease_requeued = metric(
        "lease_requeued",
        "Expired-lease jobs re-queued with backoff for another attempt.")
    lease_failed = metric(
        "lease_failed",
        "Expired-lease jobs that exhausted the retry budget (typed "
        "lease-expired failure).")
    lease_zombie = metric(
        "lease_zombie",
        "Stale completions discarded because the finishing worker no "
        "longer held the job's lease.")
    shed = metric(
        "shed",
        "Submissions shed by overload control (global queue-depth or "
        "per-tenant backlog cap; typed 503).")
    gc_jobs = metric(
        "gc_jobs", "Terminal job records pruned by the TTL sweep.")

    def mean_queue_wait_s(self) -> float:
        """Average queued-to-started wait (0 when nothing started yet)."""
        return self.queue_wait_s / self.started if self.started else 0.0


class EvalMetrics(CounterGroup):
    """Harness-side evaluation-pool health (written by
    :mod:`repro.eval.parallel`).

    Like ``cache.*``/``serve.*``, these are written by the process driving
    a sweep, never by a simulated machine, so run fingerprints and the
    golden files cannot see them.
    """

    prefix = "eval"
    worker_deaths = metric(
        "worker_deaths",
        "Process-pool breakages observed (a worker died mid-point).")
    pool_rebuilds = metric(
        "pool_rebuilds", "Worker pools rebuilt after a breakage.")
    retried_points = metric(
        "retried_points",
        "Points that lost a worker and completed in a rebuilt pool.")
    lost_worker_points = metric(
        "lost_worker_points",
        "Points past the worker-death retry cap, recomputed serially.")


class PrefetchMetrics(CounterGroup):
    """The prefetch extension (double buffering of private reads)."""

    prefix = "prefetch"
    issued = metric("issued", "Prefetches started for a queued task.")
    used = metric("used", "Prefetches consumed on the prefetching lane.")
    wasted = metric("wasted", "Prefetches orphaned by work stealing.")
    bytes = metric("bytes", "Bytes moved by the low-priority prefetch pump.")


class RuntimeMetrics(CounterGroup):
    """Software-runtime overheads (software task-runtime baseline)."""

    prefix = "runtime"
    task_overhead_cycles = metric(
        "task_overhead_cycles", "Cycles of software dequeue/closure cost.")


class StaticScheduleMetrics(CounterGroup):
    """Static-parallel baseline schedule structure."""

    prefix = "static"
    barriers = metric("barriers", "Inter-phase barriers executed.")
    duplicate_shared_bytes = metric(
        "duplicate_shared_bytes",
        "Shared-region bytes re-fetched per task (no multicast).")


class FaultMetrics(CounterGroup):
    """Injected faults (written at the injector's call sites).

    Only ever written by an *armed* injector: a fault-free run has no
    ``faults.*`` counters at all, keeping its fingerprint bit-identical
    to a build without the fault machinery.
    """

    prefix = "faults"
    injected = metric("injected", "Faults injected, all kinds.")
    lane_failstop = metric("lane_failstop", "Lane fail-stop faults.")
    task_transient = metric(
        "task_transient", "Transient mid-flight task-execution faults.")
    noc_dropped = metric("noc_dropped", "NoC messages dropped at a link.")
    stream_corrupt = metric(
        "stream_corrupt", "Pipelined stream chunks corrupted end-to-end.")
    mcast_dropped = metric(
        "mcast_dropped", "Multicast deliveries dropped to a target lane.")
    dram_spikes = metric(
        "dram_spikes", "DRAM responses hit by a delay spike.")
    dram_spike_cycles = metric(
        "dram_spike_cycles", "Extra DRAM delay cycles injected, total.")


class RecoveryMetrics(CounterGroup):
    """Structure-aware recovery activity (written by the runtimes)."""

    prefix = "recovery"
    retries = metric("retries", "Task re-executions after transient faults.")
    recovery_cycles = metric(
        "recovery_cycles",
        "Cycles lost to dead attempts, backoff, and re-partitioning.")
    redispatched = metric(
        "redispatched", "Tasks moved off a failed lane onto survivors.")
    lanes_lost = metric("lanes_lost", "Lanes quiesced and written off.")
    replayed_chunks = metric(
        "replayed_chunks", "Stream chunks replayed from the last ack.")
    replayed_bytes = metric("replayed_bytes", "Bytes replayed over streams.")
    noc_retransmits = metric(
        "noc_retransmits", "Link-level retransmissions of dropped messages.")
    refetches = metric(
        "refetches", "Sharing-set-driven refetches of dropped multicasts.")
    refetch_bytes = metric("refetch_bytes", "Bytes refetched for multicast.")
    absorbed_spike_cycles = metric(
        "absorbed_spike_cycles", "DRAM spike cycles absorbed under watchdog.")


class TaskMetrics(CounterGroup):
    """Per-task-type execution counts (``tasks.<type name>``)."""

    prefix = "tasks"

    def executed(self, type_name: str) -> float:
        """How many tasks of ``type_name`` executed."""
        return self.get(type_name)


class LaneMetrics(CounterGroup):
    """One lane's counters (``lane<N>.*``), including its scratchpad."""

    busy_cycles = metric("busy_cycles", "Cycles the lane was executing.")
    config_hits = metric("config_hits", "Configuration-cache hits.")
    config_misses = metric("config_misses", "Reconfigurations paid.")
    config_cycles = metric("config_cycles", "Cycles spent reconfiguring.")
    trips = metric("trips", "Pipeline trips executed.")
    stream_in_bytes = metric("stream_in_bytes", "Bytes streamed in.")
    stream_out_bytes = metric("stream_out_bytes", "Bytes streamed out.")
    resident_read_bytes = metric(
        "resident_read_bytes", "Bytes read from resident scratchpad data.")
    forward_bytes = metric("forward_bytes", "Bytes forwarded to a peer lane.")

    def __init__(self, store: Counters, lane_id: int) -> None:
        super().__init__(store, prefix=f"lane{lane_id}")
        self.lane_id = lane_id


class MetricsBus(Counters):
    """A :class:`Counters` store with typed, namespaced group views.

    The bus *is* the counter bag every simulated component writes into —
    components keep their ``counters.add("dram.read_bytes", n)`` interface —
    while results, reports, and figures read through the groups:
    ``result.metrics.mcast.fetches`` instead of
    ``result.counters.get("mcast.fetches")``.
    """

    def __init__(self) -> None:
        super().__init__()
        self._attach_groups()

    def _attach_groups(self) -> None:
        self.dram = DramMetrics(self)
        self.noc = NocMetrics(self)
        self.mcast = MulticastMetrics(self)
        self.pipe = PipelineMetrics(self)
        self.dispatch = DispatchMetrics(self)
        self.sched = SchedMetrics(self)
        self.cache = CacheMetrics(self)
        self.serve = ServeMetrics(self)
        self.eval = EvalMetrics(self)
        self.prefetch = PrefetchMetrics(self)
        self.runtime = RuntimeMetrics(self)
        self.static = StaticScheduleMetrics(self)
        self.faults = FaultMetrics(self)
        self.recovery = RecoveryMetrics(self)
        self.tasks = TaskMetrics(self)

    @classmethod
    def adopt(cls, counters: Counters) -> "MetricsBus":
        """Wrap an existing counter bag in a bus without copying.

        The returned bus shares the underlying store, so reads reflect the
        original and writes land in it. Adopting a bus returns it as-is.
        """
        if isinstance(counters, cls):
            return counters
        bus = cls.__new__(cls)
        bus._values = counters._values
        bus._attach_groups()
        return bus

    def lane(self, lane_id: int) -> LaneMetrics:
        """The counter group of one lane (``lane<N>.*``)."""
        return LaneMetrics(self, lane_id)

    def lanes(self, count: int) -> Iterator[LaneMetrics]:
        """Lane groups 0..count-1, in lane order."""
        for lane_id in range(count):
            yield self.lane(lane_id)

    def group(self, prefix: str) -> CounterGroup:
        """An untyped group view over an arbitrary namespace."""
        return CounterGroup(self, prefix)
