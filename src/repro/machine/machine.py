"""Composition of the simulated hardware shared by every execution model.

The paper's apples-to-apples claim rests on Delta and the static-parallel
baseline sharing the *exact same datapath*. :class:`Machine` is that
datapath, built once, in one place, from a
:class:`~repro.arch.config.MachineConfig`: the event environment, the
typed metrics bus, the mesh NoC, DRAM, the place-and-route mapper, and
the lanes. Execution models (the Delta dispatcher + multicast manager,
the static phase schedule, the software runtime) layer their policy on
top without touching machine internals.

Construction order is part of the determinism contract: components
register processes and stores with the environment as they are built, and
the event kernel breaks ties FIFO, so the order here must stay stable for
golden fingerprints to hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.arch.config import MachineConfig
from repro.arch.dram import Dram
from repro.arch.lane import Lane
from repro.arch.mapper import Mapper
from repro.arch.noc import Noc
from repro.machine.metrics import MetricsBus
from repro.sim import Environment, make_environment
from repro.sim.faults import (
    FaultInjector,
    NullFaultInjector,
    env_fault_plan,
)
from repro.sim.sanitize import (
    NullSanitizer,
    Sanitizer,
    env_sanitize_requested,
)
from repro.sim.trace import NullTracer, Tracer


@dataclass
class Machine:
    """One instantiated datapath: environment, metrics, NoC, DRAM, lanes."""

    config: MachineConfig
    env: Environment
    metrics: MetricsBus
    noc: Noc
    dram: Dram
    mapper: Mapper
    lanes: list[Lane]
    tracer: Tracer
    sanitizer: Sanitizer = field(default_factory=NullSanitizer)
    injector: FaultInjector = field(default_factory=NullFaultInjector)

    @classmethod
    def build(cls, config: MachineConfig, *,
              tracer: Optional[Tracer] = None,
              multicast_enabled: Optional[bool] = None,
              sanitizer: Optional[Sanitizer] = None,
              injector: Optional[FaultInjector] = None) -> "Machine":
        """Compose a fresh machine from ``config``.

        ``multicast_enabled`` overrides ``config.noc.multicast`` — the
        static baseline models a NoC without multicast trees even when the
        shared config enables them (the datapath is identical; the *use*
        of the tree hardware is an execution-model property).

        ``sanitizer`` overrides the default choice: a live
        :class:`~repro.sim.sanitize.Sanitizer` when ``config.sanitize`` is
        set or ``REPRO_SANITIZE`` is truthy, a disabled one otherwise.
        ``injector`` overrides the analogous fault-injection choice
        (``config.faults`` or ``REPRO_FAULTS``); a machine without a plan
        carries a disabled injector, so the fault hooks cost nothing.
        """
        tracer = tracer or NullTracer()
        if sanitizer is None:
            sanitize = config.sanitize or env_sanitize_requested()
            sanitizer = Sanitizer() if sanitize else NullSanitizer()
        if injector is None:
            plan = config.faults if config.faults is not None \
                else env_fault_plan()
            if plan is not None and not plan.is_empty():
                for failure in plan.lane_failures:
                    if not 0 <= failure.lane < config.lanes:
                        raise ValueError(
                            f"fault plan kills lane {failure.lane}, but the "
                            f"machine has lanes 0..{config.lanes - 1}")
                injector = FaultInjector(plan)
            else:
                injector = NullFaultInjector()
        # REPRO_ENGINE picks the event kernel (fast calendar queue by
        # default, the reference heap as oracle); both produce identical
        # fingerprints, so the choice is invisible to result_stats.
        env = make_environment()
        if sanitizer.enabled:
            env.clock_monitor = sanitizer.clock_advanced
        metrics = MetricsBus()
        if multicast_enabled is None:
            multicast_enabled = config.noc.multicast
        noc = Noc(env, metrics, config.lanes,
                  config.noc.link_bytes_per_cycle,
                  config.noc.hop_latency, config.noc.header_bytes,
                  multicast_enabled=multicast_enabled,
                  sanitizer=sanitizer, injector=injector)
        dram = Dram(env, metrics, config.dram.bytes_per_cycle,
                    config.dram.latency, config.dram.random_penalty,
                    injector=injector)
        mapper = Mapper(config.lane.fabric, seed=config.seed)
        lanes = [
            Lane(env, metrics, i, config.lane, noc, dram, mapper,
                 element_bytes=config.element_bytes, sanitizer=sanitizer)
            for i in range(config.lanes)
        ]
        return cls(config=config, env=env, metrics=metrics, noc=noc,
                   dram=dram, mapper=mapper, lanes=lanes, tracer=tracer,
                   sanitizer=sanitizer, injector=injector)

    @property
    def lane_busy(self) -> list[float]:
        """Per-lane busy cycles, in lane order (the imbalance vector)."""
        return [lane.busy_cycles for lane in self.lanes]
