"""The machine layer: one datapath composition + run lifecycle for every
execution model.

This package sits between the hardware component models (:mod:`repro.arch`,
:mod:`repro.sim`) and the execution models built on them (:mod:`repro.core`
Delta, :mod:`repro.baseline`):

- :class:`Machine` — composes the simulated hardware (environment, typed
  metrics bus, NoC, DRAM, mapper, lanes) from one
  :class:`~repro.arch.config.MachineConfig`.
- :class:`RunSession` — the shared run lifecycle: max-cycle guard,
  stall detection (:class:`ExecutionStalled`), progress accounting, and
  canonical :class:`RunResult` assembly.
- :class:`MetricsBus` — structured, namespaced run statistics (the typed
  successor to the raw counter bag).

Both simulators being thin policies over this one layer is what makes the
paper's Delta-vs-static comparison apples-to-apples by construction.
"""

from repro.machine.machine import Machine
from repro.machine.metrics import (
    CounterGroup,
    DispatchMetrics,
    DramMetrics,
    LaneMetrics,
    MetricsBus,
    MulticastMetrics,
    NocMetrics,
    PipelineMetrics,
    PrefetchMetrics,
    RuntimeMetrics,
    StaticScheduleMetrics,
    TaskMetrics,
    metric,
)
from repro.machine.result import RunResult
from repro.machine.session import ExecutionStalled, RunSession

__all__ = [
    "Machine",
    "RunSession",
    "RunResult",
    "ExecutionStalled",
    "MetricsBus",
    "CounterGroup",
    "metric",
    "DramMetrics",
    "NocMetrics",
    "MulticastMetrics",
    "PipelineMetrics",
    "DispatchMetrics",
    "PrefetchMetrics",
    "RuntimeMetrics",
    "StaticScheduleMetrics",
    "TaskMetrics",
    "LaneMetrics",
]
