"""Analytical energy model driven by the run's hardware counters.

Every simulated component already counts its activity (fabric trips,
scratchpad bytes, NoC link-bytes, DRAM bytes, reconfigurations, dispatch
events), so energy is a post-processing step: multiply activities by
per-event energies and sum. Unit energies are rough 28nm-class numbers
(pJ); as with the area model, only the *ratios* matter for the
reproduction — the claim class is "structure recovery saves energy because
it removes data movement", and data movement dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only; arch stays below core
    from repro.machine.result import RunResult


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event energies in picojoules (28nm-class, order-of-magnitude)."""

    fu_op: float = 0.6               # one FU operation (trip ~ a few ops)
    ops_per_trip: float = 4.0        # mean active FUs per pipeline trip
    spad_per_byte: float = 0.25
    noc_per_byte_hop: float = 0.45   # link + switch traversal
    dram_per_byte: float = 15.0
    config_per_cycle: float = 3.0    # bitstream load burst
    dispatch_event: float = 2.5      # queue write + arbitration
    static_per_lane_cycle: float = 1.2  # leakage + clock per lane


@dataclass(frozen=True)
class EnergyBreakdown:
    """Computed energy in nanojoules per component."""

    compute: float
    scratchpad: float
    noc: float
    dram: float
    config: float
    dispatch: float
    static: float

    @property
    def total(self) -> float:
        """Total energy (nJ)."""
        return (self.compute + self.scratchpad + self.noc + self.dram
                + self.config + self.dispatch + self.static)

    @property
    def data_movement(self) -> float:
        """Energy spent moving bytes (nJ) — the part structure recovery
        attacks."""
        return self.scratchpad + self.noc + self.dram

    def rows(self) -> list[tuple[str, float]]:
        """(component, nJ) rows for reports."""
        return [
            ("fabric compute", self.compute),
            ("scratchpad", self.scratchpad),
            ("NoC", self.noc),
            ("DRAM", self.dram),
            ("reconfiguration", self.config),
            ("task dispatch", self.dispatch),
            ("static (leakage+clock)", self.static),
            ("TOTAL", self.total),
        ]


def estimate_energy(result: "RunResult",
                    params: EnergyParameters = EnergyParameters(),
                    ) -> EnergyBreakdown:
    """Energy breakdown for one finished simulation run."""
    counters = result.counters
    pj_to_nj = 1e-3

    trips = sum(v for k, v in counters.items()
                if k.endswith(".trips"))
    compute = trips * params.ops_per_trip * params.fu_op

    spad_bytes = sum(v for k, v in counters.items()
                     if ".spad.read_bytes" in k
                     or ".spad.write_bytes" in k)
    scratchpad = spad_bytes * params.spad_per_byte

    noc = counters.get("noc.bytes") * params.noc_per_byte_hop
    dram = ((counters.get("dram.read_bytes")
             + counters.get("dram.write_bytes")) * params.dram_per_byte)
    config = (sum(v for k, v in counters.items()
                  if k.endswith(".config_cycles"))
              * params.config_per_cycle)
    dispatch = counters.get("dispatch.dispatched") * params.dispatch_event
    static = (result.cycles * result.config.lanes
              * params.static_per_lane_cycle)

    return EnergyBreakdown(
        compute=compute * pj_to_nj,
        scratchpad=scratchpad * pj_to_nj,
        noc=noc * pj_to_nj,
        dram=dram * pj_to_nj,
        config=config * pj_to_nj,
        dispatch=dispatch * pj_to_nj,
        static=static * pj_to_nj,
    )
