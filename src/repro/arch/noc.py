"""Mesh network-on-chip joining lanes, memory controller, and dispatcher.

Topology: the N lanes sit on a ``ceil(sqrt(N+2))``-wide 2D mesh together
with two special nodes — the memory controller (``MEM``) and the task
dispatcher (``DISP``). Every directed link between neighbouring mesh nodes
is an independent fixed-rate server.

Messages are wormhole-approximated at message granularity: a message
reserves each link along its XY route in order, paying serialization on
every link plus per-hop latency. That is pessimistic for very long
messages (no virtual-channel overlap across links) but the stream layer
sends chunk-sized messages, which keeps the approximation tight.

**Multicast** is the NoC feature TaskStream's read-sharing recovery relies
on: ``multicast`` charges each link of the destination *tree* once, instead
of once per destination as repeated unicasts would.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.sim import BandwidthServer, Counters, Environment, Event
from repro.sim.engine import SimulationError
from repro.sim.faults import NULL_INJECTOR, FaultInjector
from repro.sim.sanitize import NULL_SANITIZER, Sanitizer

Coord = tuple[int, int]

MEM_NODE = "MEM"
DISP_NODE = "DISP"


class Noc:
    """The mesh interconnect."""

    def __init__(self, env: Environment, counters: Counters, lanes: int,
                 link_bytes_per_cycle: float, hop_latency: float,
                 header_bytes: int, multicast_enabled: bool,
                 sanitizer: Optional[Sanitizer] = None,
                 injector: Optional[FaultInjector] = None) -> None:
        if lanes < 1:
            raise SimulationError("NoC needs at least one lane")
        self.env = env
        self.counters = counters
        self.sanitizer = sanitizer or NULL_SANITIZER
        self.injector = injector or NULL_INJECTOR
        self.hop_latency = hop_latency
        self.header_bytes = header_bytes
        self.multicast_enabled = multicast_enabled

        side = max(2, math.ceil(math.sqrt(lanes + 2)))
        self.side = side
        # Node placement: MEM at top-left, DISP next to it, lanes after.
        coords: dict[str, Coord] = {MEM_NODE: (0, 0), DISP_NODE: (0, 1)}
        positions = [(r, c) for r in range(side) for c in range(side)]
        free = [p for p in positions if p not in ((0, 0), (0, 1))]
        for lane_id in range(lanes):
            coords[f"lane{lane_id}"] = free[lane_id]
        self.coords = coords

        self._links: dict[tuple[Coord, Coord], BandwidthServer] = {}
        for r in range(side):
            for c in range(side):
                for dr, dc in ((0, 1), (1, 0)):
                    a, b = (r, c), (r + dr, c + dc)
                    if b[0] < side and b[1] < side:
                        self._links[(a, b)] = BandwidthServer(
                            env, link_bytes_per_cycle,
                            name=f"noc.link{a}-{b}")
                        self._links[(b, a)] = BandwidthServer(
                            env, link_bytes_per_cycle,
                            name=f"noc.link{b}-{a}")
        # Route memoization: XY routing is deterministic and the topology
        # is fixed at construction, so the link list for any endpoint pair
        # (and any multicast destination set) never changes.
        self._route_cache: dict[tuple[str, str],
                                tuple[list[BandwidthServer], int]] = {}
        self._tree_cache: dict[tuple[str, tuple[str, ...]],
                               tuple[list[BandwidthServer], int]] = {}

    # -- routing -----------------------------------------------------------

    def node_coord(self, node: str) -> Coord:
        """Mesh coordinate of a named endpoint (``lane3``, ``MEM``, ...)."""
        try:
            return self.coords[node]
        except KeyError:
            raise SimulationError(f"unknown NoC node {node!r}") from None

    def route(self, src: str, dst: str) -> list[Coord]:
        """Deterministic XY route (X first, then Y) between two nodes."""
        a, b = self.node_coord(src), self.node_coord(dst)
        path = [a]
        r, c = a
        while c != b[1]:
            c += 1 if b[1] > c else -1
            path.append((r, c))
        while r != b[0]:
            r += 1 if b[0] > r else -1
            path.append((r, c))
        return path

    def hops(self, src: str, dst: str) -> int:
        """Number of links on the route."""
        return len(self.route(src, dst)) - 1

    def _route_links(self, src: str,
                     dst: str) -> tuple[list[BandwidthServer], int]:
        """Memoized (link servers, hop count) for an endpoint pair."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            path = self.route(src, dst)
            servers = [self._links[link] for link in zip(path, path[1:])]
            cached = (servers, len(path) - 1)
            self._route_cache[key] = cached
        return cached

    def _tree_links(self, src: str, dsts: tuple[str, ...],
                    ) -> tuple[list[BandwidthServer], int]:
        """Memoized (union-of-routes tree links, max hops) for a fan-out."""
        key = (src, dsts)
        cached = self._tree_cache.get(key)
        if cached is None:
            tree: list[BandwidthServer] = []
            seen: set[tuple[Coord, Coord]] = set()
            max_hops = 0
            for dst in dsts:
                path = self.route(src, dst)
                max_hops = max(max_hops, len(path) - 1)
                for link in zip(path, path[1:]):
                    if link not in seen:
                        seen.add(link)
                        tree.append(self._links[link])
            cached = (tree, max_hops)
            self._tree_cache[key] = cached
        return cached

    # -- transfers ---------------------------------------------------------

    def unicast(self, src: str, dst: str, nbytes: float) -> Event:
        """Send one message; returns an event firing on delivery."""
        servers, hops = self._route_links(src, dst)
        if hops == 0:
            return self.env.timeout(0)
        payload = nbytes + self.header_bytes
        if self.env.fast:
            counters = self.counters
            finish = self.env.now
            for _ in range(1 + self._drops("unicast")):
                for server in servers:
                    counters.add("noc.bytes", payload)
                    booked = server.reserve(payload)
                    if booked > finish:
                        finish = booked
                counters.add("noc.messages")
                self.sanitizer.noc_message("unicast", payload, self.env.now)
            return self._deliver_fast(finish, self.hop_latency * hops,
                                      "unicast-delivery")
        events = []
        for _ in range(1 + self._drops("unicast")):
            for server in servers:
                self.counters.add("noc.bytes", payload)
                events.append(server.transfer(payload))
            self.counters.add("noc.messages")
            self.sanitizer.noc_message("unicast", payload, self.env.now)
        return self._chain_delivery(events, self.hop_latency * hops,
                                    "unicast-delivery")

    def multicast(self, src: str, dsts: Sequence[str],
                  nbytes: float) -> Event:
        """Send one payload to many destinations.

        With multicast hardware, the payload traverses each link of the
        union-of-routes tree exactly once. Without it, falls back to
        repeated unicasts (and the counters show the difference).
        """
        dsts = list(dict.fromkeys(dsts))  # dedupe, keep order
        if not dsts:
            raise SimulationError("multicast with no destinations")
        if len(dsts) == 1 or not self.multicast_enabled:
            events = [self.unicast(src, d, nbytes) for d in dsts]
            return self.env.all_of(events)

        tree, max_hops = self._tree_links(src, tuple(dsts))
        payload = nbytes + self.header_bytes
        if self.env.fast and tree:
            counters = self.counters
            finish = self.env.now
            for _ in range(1 + self._drops("multicast")):
                for server in tree:
                    counters.add("noc.bytes", payload)
                    counters.add("noc.multicast_link_bytes", payload)
                    booked = server.reserve(payload)
                    if booked > finish:
                        finish = booked
                counters.add("noc.multicasts")
                self.sanitizer.noc_message("multicast", payload,
                                           self.env.now)
            return self._deliver_fast(finish, self.hop_latency * max_hops,
                                      "multicast-delivery")
        events = []
        for _ in range(1 + self._drops("multicast")):
            for server in tree:
                self.counters.add("noc.bytes", payload)
                self.counters.add("noc.multicast_link_bytes", payload)
                events.append(server.transfer(payload))
            self.counters.add("noc.multicasts")
            self.sanitizer.noc_message("multicast", payload, self.env.now)
        # Per-hop latency to the farthest leaf.
        return self._chain_delivery(events, self.hop_latency * max_hops,
                                    "multicast-delivery")

    def _drops(self, kind: str) -> int:
        """Link-level packet loss: how many times the next message is
        dropped (0 on the fault-free path).  Every drop costs a full
        retransmission — links are re-charged, counters and the sanitizer
        see each send — and the loss burst is bounded by the plan's retry
        budget (:class:`~repro.sim.faults.UnrecoverableFault` beyond it).
        """
        if not self.injector.enabled:
            return 0
        drops = self.injector.noc_drops(kind, self.env.now)
        if drops:
            self.counters.add("faults.injected", drops)
            self.counters.add("faults.noc_dropped", drops)
            self.counters.add("recovery.noc_retransmits", drops)
            self.sanitizer.noc_retransmit(kind, drops, self.env.now)
        return drops

    def _chain_delivery(self, events: list[Event], tail_delay: float,
                        name: str) -> Event:
        """Reference delivery: all link transfers, then per-hop latency."""
        done = self.env.event(name=name)
        tail = self.env.all_of(events)

        def after(_ev: Event) -> None:
            self.env.timeout(tail_delay).add_callback(
                lambda _t: done.succeed())

        tail.add_callback(after)
        return done

    def _deliver_fast(self, finish: float, tail_delay: float,
                      name: str) -> Event:
        """Closed-form delivery for the fast kernel.

        The link serialization times are already booked (``reserve``), so
        delivery is fully determined: the message clears its last link at
        ``finish`` and arrives ``tail_delay`` later. The three chained call
        slots reproduce the reference chain's queue positions exactly —
        last-link timeout, ``all_of`` tail, hop-latency timeout — so the
        ``done`` event lands in the same slot of the same time bucket as
        the reference kernel's would (see tests/test_engine_equivalence.py).
        """
        env = self.env
        done = Event(env, name)

        def slot_hop(_arg: object) -> None:
            done.succeed()

        def slot_tail(_arg: object) -> None:
            env._schedule_call_at(env.now + tail_delay, slot_hop)

        def slot_last_link(_arg: object) -> None:
            env._schedule_call_at(env.now, slot_tail)

        env._schedule_call_at(finish, slot_last_link)
        return done

    # -- reporting ---------------------------------------------------------

    def total_bytes(self) -> float:
        """Total link-bytes moved (each hop counts)."""
        return self.counters.get("noc.bytes")

    def peak_link_utilization(self) -> float:
        """Busy fraction of the most loaded link."""
        if not self._links:
            return 0.0
        return max(l.utilization() for l in self._links.values())

    def lane_names(self) -> list[str]:
        """All lane endpoint names in id order."""
        return sorted((n for n in self.coords if n.startswith("lane")),
                      key=lambda s: int(s[4:]))
