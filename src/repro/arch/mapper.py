"""Place-and-route of dataflow graphs onto the CGRA fabric.

The mapper is the bridge between the DFG IR and the timing model: the
*achieved initiation interval* of a mapping — not a hand-waved constant —
determines task compute throughput in the simulator.

Algorithm (a pragmatic modulo-scheduling-free P&R):

1. Lower bounds: resource MII from FU counts, recurrence MII from cycles.
2. Greedy placement in topological order. Each node is placed on the
   compatible cell minimizing (a) distance to placed producers and (b) cell
   crowding, subject to at most ``II`` ops per cell.
3. Routing: every edge is routed on the mesh with BFS weighted by link
   congestion; link usages accumulate.
4. The achieved II is ``max(lower bounds, peak ops/cell, peak link usage)``.
5. Optional refinement: a few random ripup-and-replace passes accept moves
   that lower the congestion objective (simulated-annealing-lite, seeded,
   deterministic).

Mappings are cached per (dfg signature, fabric config) because the same
task type is mapped once and executed millions of times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.cgra import Fabric, FabricCapacityError
from repro.arch.config import FabricConfig
from repro.arch.dfg import Dfg, FuClass
from repro.util.rng import DeterministicRng

Coord = tuple[int, int]
Link = tuple[Coord, Coord]


@dataclass
class Mapping:
    """The result of placing and routing one DFG on one fabric."""

    dfg_name: str
    placement: dict[int, Coord]
    routes: dict[tuple[int, int, int], list[Coord]]
    ii: int
    depth: int
    resource_mii: int
    recurrence_mii: float
    peak_link_usage: int
    peak_cell_usage: int

    @property
    def total_route_hops(self) -> int:
        """Sum of route lengths (a proxy for switch energy)."""
        return sum(max(0, len(path) - 1) for path in self.routes.values())

    def throughput_elements_per_cycle(self) -> float:
        """Steady-state elements produced per cycle (1 / II)."""
        return 1.0 / self.ii


class MappingError(RuntimeError):
    """Raised when a DFG cannot be mapped onto the fabric."""


@dataclass
class _PlacementState:
    """Mutable state threaded through placement and routing."""

    cell_load: dict[Coord, int] = field(default_factory=dict)
    link_use: dict[Link, int] = field(default_factory=dict)

    def bump_cell(self, pos: Coord) -> None:
        self.cell_load[pos] = self.cell_load.get(pos, 0) + 1

    def bump_links(self, path: list[Coord]) -> None:
        for a, b in zip(path, path[1:]):
            self.link_use[(a, b)] = self.link_use.get((a, b), 0) + 1

    @property
    def peak_cell(self) -> int:
        return max(self.cell_load.values(), default=0)

    @property
    def peak_link(self) -> int:
        return max(self.link_use.values(), default=0)


class Mapper:
    """Maps DFGs onto fabrics, with a process-wide mapping cache."""

    _cache: dict[tuple, Mapping] = {}

    def __init__(self, fabric_config: FabricConfig, seed: int = 0,
                 refine_passes: int = 2) -> None:
        self.fabric_config = fabric_config
        self.fabric = Fabric(fabric_config)
        self.seed = seed
        self.refine_passes = refine_passes

    def map(self, dfg: Dfg) -> Mapping:
        """Place and route ``dfg``; cached by (dfg, fabric, seed)."""
        key = (dfg.signature(), self.fabric_config, self.seed,
               self.refine_passes)
        cached = Mapper._cache.get(key)
        if cached is not None:
            return cached
        mapping = self._map_uncached(dfg)
        Mapper._cache[key] = mapping
        return mapping

    @classmethod
    def clear_cache(cls) -> None:
        """Drop all cached mappings (used by tests)."""
        cls._cache.clear()

    # -- core algorithm ----------------------------------------------------

    def _map_uncached(self, dfg: Dfg) -> Mapping:
        dfg.validate()
        hist = dfg.op_histogram()
        if sum(hist.values()) > self.fabric.config.cells:
            raise MappingError(
                f"DFG {dfg.name!r} has {sum(hist.values())} ops but fabric "
                f"has {self.fabric.config.cells} cells; II>1 sharing of "
                f"cells beyond 1 op/cell/cycle is modeled, full temporal "
                f"multiplexing is not")
        try:
            resource_mii = self.fabric.resource_mii(hist)
        except FabricCapacityError as exc:
            raise MappingError(str(exc)) from exc
        recurrence_mii = dfg.recurrence_mii()
        # Epsilon guards against the binary search converging just above
        # the exact ratio (e.g. 1 + 1e-13 must yield an II of 1, not 2).
        lower_ii = max(resource_mii,
                       int(-(-(recurrence_mii - 1e-6) // 1)))

        rng = DeterministicRng("mapper", dfg.name, self.seed)
        best: Optional[tuple[int, _PlacementState, dict[int, Coord],
                             dict[tuple[int, int, int], list[Coord]]]] = None
        for attempt in range(1 + self.refine_passes):
            placement = self._place(dfg, rng.fork("place", attempt))
            state = _PlacementState()
            for pos in placement.values():
                state.bump_cell(pos)
            routes = self._route_all(dfg, placement, state)
            achieved = max(lower_ii, state.peak_cell, state.peak_link)
            if best is None or achieved < best[0]:
                best = (achieved, state, placement, routes)
            if achieved == lower_ii:
                break  # cannot do better than the lower bound

        achieved, state, placement, routes = best
        depth = dfg.critical_path() + self._route_depth(routes)
        return Mapping(
            dfg_name=dfg.name,
            placement=placement,
            routes=routes,
            ii=achieved,
            depth=depth,
            resource_mii=resource_mii,
            recurrence_mii=recurrence_mii,
            peak_link_usage=state.peak_link,
            peak_cell_usage=state.peak_cell,
        )

    def _route_depth(self, routes: dict[tuple[int, int, int],
                                        list[Coord]]) -> int:
        if not routes:
            return 0
        longest = max(max(0, len(p) - 1) for p in routes.values())
        return longest * self.fabric.config.switch_latency

    def _place(self, dfg: Dfg, rng: DeterministicRng) -> dict[int, Coord]:
        """Greedy topological placement with light randomization."""
        placement: dict[int, Coord] = {}
        cell_load: dict[Coord, int] = {}
        producers: dict[int, list[int]] = {i: [] for i in dfg.nodes}
        for edge in dfg.edges:
            if edge.distance == 0:
                producers[edge.dst].append(edge.src)

        order = dfg._topo_order_zero_distance()
        for node_id in order:
            node = dfg.nodes[node_id]
            if node.fu_class is FuClass.NONE:
                continue  # constants fold into FU configuration
            candidates = self.fabric.cells_supporting(node.fu_class)
            if not candidates:
                raise MappingError(
                    f"no cell supports {node.fu_class.value} for "
                    f"node {node.name}")
            placed_producers = [placement[p] for p in producers[node_id]
                                if p in placement]

            def cost(cell) -> tuple[float, float]:
                pos = cell.position
                wire = sum(Fabric.manhattan(pos, p)
                           for p in placed_producers)
                crowd = cell_load.get(pos, 0)
                jitter = rng.random() * 0.01
                return (crowd * 2 + wire + jitter, wire)

            chosen = min(candidates, key=cost).position
            placement[node_id] = chosen
            cell_load[chosen] = cell_load.get(chosen, 0) + 1
        return placement

    def _route_all(self, dfg: Dfg, placement: dict[int, Coord],
                   state: _PlacementState,
                   ) -> dict[tuple[int, int, int], list[Coord]]:
        routes: dict[tuple[int, int, int], list[Coord]] = {}
        for index, edge in enumerate(dfg.edges):
            src = placement.get(edge.src)
            dst = placement.get(edge.dst)
            if src is None or dst is None:
                continue  # constant endpoints have no physical route
            path = self._route_one(src, dst, state)
            routes[(edge.src, edge.dst, index)] = path
            state.bump_links(path)
        return routes

    def _route_one(self, src: Coord, dst: Coord,
                   state: _PlacementState) -> list[Coord]:
        """Congestion-aware shortest path (Dijkstra on the mesh)."""
        if src == dst:
            return [src]
        dist: dict[Coord, float] = {src: 0.0}
        prev: dict[Coord, Coord] = {}
        heap: list[tuple[float, int, Coord]] = [(0.0, 0, src)]
        seq = 0
        while heap:
            cost, _tie, pos = heapq.heappop(heap)
            if pos == dst:
                break
            if cost > dist.get(pos, float("inf")):
                continue
            for nxt in self.fabric.neighbors(pos):
                congestion = state.link_use.get((pos, nxt), 0)
                cand = cost + 1.0 + congestion * 0.75
                if cand < dist.get(nxt, float("inf")):
                    dist[nxt] = cand
                    prev[nxt] = pos
                    seq += 1
                    heapq.heappush(heap, (cand, seq, nxt))
        if dst not in prev and src != dst:
            raise MappingError(f"no route from {src} to {dst}")
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path
