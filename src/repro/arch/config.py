"""Architecture parameter dataclasses.

One :class:`MachineConfig` describes everything needed to instantiate either
the Delta accelerator or the static-parallel baseline: both share lanes,
NoC, scratchpads and DRAM; they differ only in the task-hardware features
enabled (:class:`FeatureFlags`) and the scheduling model.

Defaults approximate a modest 8-lane reconfigurable dataflow accelerator in
the style the paper evaluates: each lane a 5x5 CGRA with banked scratchpad,
lanes joined by a mesh NoC to a memory controller and a task dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.faults import FaultPlan
from repro.util.validate import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
)


@dataclass(frozen=True)
class FabricConfig:
    """Geometry and FU mix of one lane's CGRA fabric.

    ``mul_ratio``/``mem_ratio`` give the fraction of grid cells whose FU can
    execute multiply-class / memory-class operations (all cells execute
    ALU-class ops). The mapper uses these capabilities when placing DFG
    nodes.
    """

    rows: int = 5
    cols: int = 5
    mul_ratio: float = 0.5
    mem_ratio: float = 0.25
    switch_latency: int = 1

    def __post_init__(self) -> None:
        check_positive("fabric.rows", self.rows)
        check_positive("fabric.cols", self.cols)
        check_in_range("fabric.mul_ratio", self.mul_ratio, 0.0, 1.0)
        check_in_range("fabric.mem_ratio", self.mem_ratio, 0.0, 1.0)
        check_non_negative("fabric.switch_latency", self.switch_latency)

    @property
    def cells(self) -> int:
        """Total grid cells."""
        return self.rows * self.cols


@dataclass(frozen=True)
class LaneConfig:
    """One accelerator lane: fabric + scratchpad + stream engines."""

    fabric: FabricConfig = field(default_factory=FabricConfig)
    spad_bytes: int = 64 * 1024
    spad_banks: int = 8
    spad_bank_bytes_per_cycle: float = 8.0
    input_ports: int = 4
    output_ports: int = 2
    config_cycles: int = 64
    config_cache_entries: int = 4
    stream_chunk_bytes: int = 256
    #: Fixed cycles charged at every task start before any streams issue.
    #: Zero for hardware task management; the software-runtime baseline
    #: sets this to the cost of a software dequeue + closure call.
    task_overhead_cycles: int = 0

    def __post_init__(self) -> None:
        check_positive("lane.spad_bytes", self.spad_bytes)
        check_power_of_two("lane.spad_banks", self.spad_banks)
        check_positive("lane.spad_bank_bytes_per_cycle",
                       self.spad_bank_bytes_per_cycle)
        check_positive("lane.input_ports", self.input_ports)
        check_positive("lane.output_ports", self.output_ports)
        check_non_negative("lane.config_cycles", self.config_cycles)
        check_positive("lane.config_cache_entries", self.config_cache_entries)
        check_positive("lane.stream_chunk_bytes", self.stream_chunk_bytes)
        check_non_negative("lane.task_overhead_cycles",
                           self.task_overhead_cycles)

    @property
    def spad_bytes_per_cycle(self) -> float:
        """Aggregate scratchpad bandwidth across banks."""
        return self.spad_banks * self.spad_bank_bytes_per_cycle


@dataclass(frozen=True)
class NocConfig:
    """Mesh NoC joining lanes, the memory controller, and the dispatcher."""

    link_bytes_per_cycle: float = 16.0
    hop_latency: int = 2
    multicast: bool = True
    header_bytes: int = 8

    def __post_init__(self) -> None:
        check_positive("noc.link_bytes_per_cycle", self.link_bytes_per_cycle)
        check_non_negative("noc.hop_latency", self.hop_latency)
        check_non_negative("noc.header_bytes", self.header_bytes)


@dataclass(frozen=True)
class DramConfig:
    """Main memory: aggregate bandwidth plus a row-locality penalty knob.

    The default of 16 B/cycle against eight lanes of 64 B/cycle aggregate
    scratchpad bandwidth gives the ~1:30 off-chip:on-chip ratio typical of
    accelerator systems — the regime where TaskStream's traffic-saving
    mechanisms (multicast, stream forwarding) convert into performance.
    """

    bytes_per_cycle: float = 16.0
    latency: int = 60
    random_penalty: float = 1.5

    def __post_init__(self) -> None:
        check_positive("dram.bytes_per_cycle", self.bytes_per_cycle)
        check_non_negative("dram.latency", self.latency)
        check_in_range("dram.random_penalty", self.random_penalty, 1.0, 16.0)


@dataclass(frozen=True)
class DispatchConfig:
    """The hardware task dispatcher (TaskStream's new structure).

    ``policy`` names a :class:`~repro.sched.api.SchedulingPolicy` from
    the registry (:func:`repro.sched.policy_names` is the single source
    of truth — the CLI ``--policy`` choices derive from the same list).
    Built-ins: ``work-aware`` (TaskStream's work-aware least-loaded
    default), ``round-robin``, ``random``, ``steal``, plus the tournament
    family ``critical-path``, ``streaming-depth-first``,
    ``block-partition``, and ``steal-tuned`` — see
    :mod:`repro.sched.policies` and ``docs/scheduling.md``.
    """

    policy: str = "work-aware"
    dispatch_cycles: int = 4
    queue_depth: int = 16
    steal_cycles: int = 48
    #: Fixed per-task cost (config/stream fill) the work estimator adds to
    #: each task's hint, so a lane holding many tiny tasks is correctly
    #: seen as loaded even when the sum of hints is small.
    work_overhead: float = 96.0
    #: Record the opt-in ``sched.*`` counter group (pool peak, steal
    #: attempts/hits, priority inversions). Off by default: counters feed
    #: run fingerprints, so observability must be armed explicitly — the
    #: same contract as ``MachineConfig.sanitize``/``faults``.
    sched_stats: bool = False

    def __post_init__(self) -> None:
        # Resolved lazily: repro.sched sits above repro.arch in the layer
        # order, and the registry import pulls in the built-in policies.
        from repro.sched.api import policy_names

        names = policy_names()
        if self.policy not in names:
            raise ValueError(
                f"dispatch.policy must be one of {names}, "
                f"got {self.policy!r}")
        check_non_negative("dispatch.dispatch_cycles", self.dispatch_cycles)
        check_positive("dispatch.queue_depth", self.queue_depth)
        check_non_negative("dispatch.steal_cycles", self.steal_cycles)
        check_non_negative("dispatch.work_overhead", self.work_overhead)


@dataclass(frozen=True)
class FeatureFlags:
    """Which TaskStream mechanisms are active (for ablation studies).

    The first three are the paper's mechanisms (on by default). The last
    two are *extensions* in the paper's future-work direction (off by
    default): ``config_affinity`` biases the dispatcher toward lanes that
    already hold a task's fabric configuration, and ``prefetch`` starts
    the next queued task's private input streams while the current task
    computes (double buffering).
    """

    work_aware_lb: bool = True
    pipelining: bool = True
    multicast: bool = True
    config_affinity: bool = False
    prefetch: bool = False

    def label(self) -> str:
        """Short label for ablation tables, e.g. ``+lb+pipe+mcast``."""
        parts = []
        if self.work_aware_lb:
            parts.append("+lb")
        if self.pipelining:
            parts.append("+pipe")
        if self.multicast:
            parts.append("+mcast")
        if self.config_affinity:
            parts.append("+affinity")
        if self.prefetch:
            parts.append("+prefetch")
        return "".join(parts) or "base"


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine."""

    lanes: int = 8
    lane: LaneConfig = field(default_factory=LaneConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    dispatch: DispatchConfig = field(default_factory=DispatchConfig)
    features: FeatureFlags = field(default_factory=FeatureFlags)
    element_bytes: int = 4
    seed: int = 0
    #: Multicast coalescing window in cycles; None derives it from the
    #: dispatch rate (``max(16, lanes * dispatch_cycles)``).
    mcast_window: Optional[int] = None
    #: Run with the model sanitizer attached (runtime invariant checking;
    #: see :mod:`repro.sim.sanitize`). Purely observational: results are
    #: bit-identical with it on or off — it can only raise.
    sanitize: bool = False
    #: Optional fault-injection plan (see :mod:`repro.sim.faults`). None
    #: (or an empty plan) runs fault-free and bit-identical to a build
    #: without the fault machinery; a non-empty plan arms the injector
    #: and the runtimes' recovery policies.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        check_positive("machine.lanes", self.lanes)
        check_positive("machine.element_bytes", self.element_bytes)
        if self.mcast_window is not None:
            check_non_negative("machine.mcast_window", self.mcast_window)

    def effective_mcast_window(self) -> int:
        """The coalescing window the multicast manager should use."""
        if self.mcast_window is not None:
            return self.mcast_window
        return max(16, self.lanes * self.dispatch.dispatch_cycles)

    def with_lanes(self, lanes: int) -> "MachineConfig":
        """Copy with a different lane count (scaling sweeps)."""
        return replace(self, lanes=lanes)

    def with_features(self, features: FeatureFlags) -> "MachineConfig":
        """Copy with different TaskStream feature flags (ablations)."""
        return replace(self, features=features)

    def with_policy(self, policy: str) -> "MachineConfig":
        """Copy with a different dispatch policy (sensitivity)."""
        return replace(self, dispatch=replace(self.dispatch, policy=policy))

    def with_sanitize(self, sanitize: bool = True) -> "MachineConfig":
        """Copy with runtime invariant checking on (or off)."""
        return replace(self, sanitize=sanitize)

    def with_sched_stats(self, sched_stats: bool = True) -> "MachineConfig":
        """Copy with the opt-in ``sched.*`` counter group armed (or not)."""
        return replace(self,
                       dispatch=replace(self.dispatch,
                                        sched_stats=sched_stats))

    def with_faults(self, faults: Optional[FaultPlan]) -> "MachineConfig":
        """Copy with a fault-injection plan attached (or removed)."""
        return replace(self, faults=faults)


def default_delta_config(lanes: int = 8,
                         seed: int = 0,
                         features: Optional[FeatureFlags] = None,
                         ) -> MachineConfig:
    """The Delta configuration used throughout the evaluation."""
    return MachineConfig(lanes=lanes, seed=seed,
                         features=features or FeatureFlags())


def default_baseline_config(lanes: int = 8, seed: int = 0) -> MachineConfig:
    """The equivalent static-parallel configuration.

    Identical datapath resources; all TaskStream features off. The baseline
    runner additionally replaces dynamic dispatch with static partitioning.
    """
    return MachineConfig(
        lanes=lanes, seed=seed,
        features=FeatureFlags(work_aware_lb=False, pipelining=False,
                              multicast=False))
