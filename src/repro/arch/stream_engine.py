"""Stream engines: the data movers between DRAM, NoC, scratchpad and fabric.

A *stream* is a bulk transfer broken into chunks. Chunks flow through the
stage pipeline (DRAM channel -> NoC links -> scratchpad banks), and each
stage is a FIFO bandwidth server, so the stream's steady-state rate is set
by the slowest stage while other streams contend naturally.

Pipelining is modeled by decoupling issue from delivery: the pump process
waits for the DRAM stage of chunk *k*, then hands the downstream stages to
a detached delivery process and immediately issues chunk *k+1*. In-flight
chunks are bounded by a credit :class:`~repro.sim.Resource`, so downstream
backpressure (a slow consumer of ``dest_store``) throttles DRAM issue —
exactly the behaviour hardware credit-based streams have.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.arch.dram import Dram
from repro.arch.noc import MEM_NODE, Noc
from repro.arch.spad import Scratchpad
from repro.sim import Counters, Environment, Event, Process, Resource, Store


class StreamEngine:
    """All stream data movement for one lane."""

    def __init__(self, env: Environment, counters: Counters, lane_name: str,
                 noc: Noc, dram: Dram, spad: Scratchpad, chunk_bytes: int,
                 max_inflight_chunks: int = 4) -> None:
        self.env = env
        self.counters = counters
        self.lane_name = lane_name
        self.noc = noc
        self.dram = dram
        self.spad = spad
        self.chunk_bytes = chunk_bytes
        self.max_inflight_chunks = max_inflight_chunks
        self._in_key = f"{lane_name}.stream_in_bytes"
        self._resident_key = f"{lane_name}.resident_read_bytes"
        self._out_key = f"{lane_name}.stream_out_bytes"
        self._credits_name = f"{lane_name}.in_credits"

    # -- helpers -----------------------------------------------------------

    def chunks_of(self, nbytes: float) -> list[int]:
        """Split a transfer into chunk sizes (last chunk may be short)."""
        if nbytes <= 0:
            return []
        full = int(nbytes // self.chunk_bytes)
        sizes = [self.chunk_bytes] * full
        rem = int(nbytes - full * self.chunk_bytes)
        if rem:
            sizes.append(rem)
        return sizes

    def chunk_count(self, nbytes: float) -> int:
        """Number of chunks for a transfer of ``nbytes``."""
        return max(0, math.ceil(nbytes / self.chunk_bytes)) if nbytes > 0 else 0

    # -- memory -> lane ----------------------------------------------------

    def stream_in(self, nbytes: float, locality: float = 1.0,
                  dest_store: Optional[Store] = None,
                  close_dest: bool = False) -> Process:
        """Stream ``nbytes`` from DRAM into this lane's scratchpad.

        If ``dest_store`` is given, a token is put per delivered chunk so a
        compute process can consume data as it arrives. The returned
        process completes when the final chunk has landed.
        """
        if self.env.fast:
            return self._stream_in_fast(nbytes, locality, dest_store,
                                        close_dest)
        return self.env.process(
            self._pump_from_dram(nbytes, locality, dest_store, close_dest),
            name=f"{self.lane_name}.stream_in")

    def _pump_from_dram(self, nbytes: float, locality: float,
                        dest_store: Optional[Store], close_dest: bool,
                        ) -> Generator:
        credits = Resource(self.env, self.max_inflight_chunks,
                           name=self._credits_name)
        tails = []
        for size in self.chunks_of(nbytes):
            yield credits.acquire()
            yield self.dram.fetch(size, locality)
            tails.append(self.env.process(
                self._deliver_chunk(size, dest_store, credits)))
        yield self.env.all_of(tails)
        self.counters.add(self._in_key, nbytes)
        if dest_store is not None and close_dest:
            dest_store.close()

    def _stream_in_fast(self, nbytes: float, locality: float,
                        dest_store: Optional[Store],
                        close_dest: bool) -> Event:
        """Callback-chain form of :meth:`_pump_from_dram` (fast kernel).

        Stage code runs in exactly the slots the generator version's
        resumes would occupy (callbacks fire synchronously inside the
        awaited event's slot), so both forms are schedule-identical.
        """
        env = self.env
        complete = Event(env, "stream_in")
        credits = Resource(env, self.max_inflight_chunks,
                           name=self._credits_name)
        sizes = self.chunks_of(nbytes)
        tails: list[Event] = []
        idx = [0]

        def final(_ev: object) -> None:
            self.counters.add(self._in_key, nbytes)
            if dest_store is not None and close_dest:
                dest_store.close()
            complete.succeed()

        def after_fetch(_ev: object) -> None:
            tails.append(self._deliver_chunk_fast(
                sizes[idx[0]], dest_store, credits))
            idx[0] += 1
            next_chunk(None)

        def after_grant(_ev: object) -> None:
            self.dram.fetch(sizes[idx[0]],
                            locality).add_callback(after_fetch)

        def next_chunk(_arg: object) -> None:
            if idx[0] == len(sizes):
                env.all_of(tails).add_callback(final)
            else:
                credits.acquire().add_callback(after_grant)

        env._schedule_call(next_chunk, complete)
        return complete

    def _deliver_chunk(self, size: int, dest_store: Optional[Store],
                       credits: Resource) -> Generator:
        yield self.noc.unicast(MEM_NODE, self.lane_name, size)
        yield self.spad.access(size, is_write=True)
        if dest_store is not None:
            yield dest_store.put(size)
        credits.release()

    def _deliver_chunk_fast(self, size: int, dest_store: Optional[Store],
                            credits: Resource) -> Event:
        """Callback-chain form of :meth:`_deliver_chunk` (fast kernel).

        Each stage runs in exactly the queue slot where the generator
        version's ``Process._resume`` would run it — callbacks fire
        synchronously inside the awaited event's slot, just like a process
        resume does — so the two forms are schedule-identical while this
        one skips the generator frame, the Process object, and four
        ``send`` round-trips per chunk.
        """
        env = self.env
        complete = Event(env, "deliver_chunk")

        def finish(_ev: object) -> None:
            credits.release()
            complete.succeed()

        def after_spad(_ev: object) -> None:
            if dest_store is not None:
                dest_store.put(size).add_callback(finish)
            else:
                finish(None)

        def after_noc(_ev: object) -> None:
            self.spad.access(size, is_write=True).add_callback(after_spad)

        def start(_arg: object) -> None:
            self.noc.unicast(MEM_NODE, self.lane_name,
                             size).add_callback(after_noc)

        # Same bootstrap slot a freshly spawned process would occupy.
        env._schedule_call(start, complete)
        return complete

    # -- resident scratchpad data -> fabric --------------------------------

    def read_resident(self, nbytes: float,
                      dest_store: Optional[Store] = None,
                      close_dest: bool = False) -> Process:
        """Feed on-chip (multicast-resident) data to the fabric.

        No DRAM or NoC traffic — only scratchpad bank reads. This is the
        payoff of read-sharing recovery.
        """
        if self.env.fast:
            return self._read_resident_fast(nbytes, dest_store, close_dest)
        return self.env.process(
            self._pump_resident(nbytes, dest_store, close_dest),
            name=f"{self.lane_name}.read_resident")

    def _pump_resident(self, nbytes: float, dest_store: Optional[Store],
                       close_dest: bool) -> Generator:
        for size in self.chunks_of(nbytes):
            yield self.spad.access(size, is_write=False)
            if dest_store is not None:
                yield dest_store.put(size)
        self.counters.add(self._resident_key, nbytes)
        if dest_store is not None and close_dest:
            dest_store.close()

    def _read_resident_fast(self, nbytes: float,
                            dest_store: Optional[Store],
                            close_dest: bool) -> Event:
        """Callback-chain form of :meth:`_pump_resident` (fast kernel)."""
        env = self.env
        complete = Event(env, "read_resident")
        sizes = self.chunks_of(nbytes)
        idx = [0]

        def final() -> None:
            self.counters.add(self._resident_key, nbytes)
            if dest_store is not None and close_dest:
                dest_store.close()
            complete.succeed()

        def after_put(_ev: object) -> None:
            idx[0] += 1
            step(None)

        def after_access(_ev: object) -> None:
            if dest_store is not None:
                dest_store.put(sizes[idx[0]]).add_callback(after_put)
            else:
                after_put(None)

        def step(_arg: object) -> None:
            if idx[0] == len(sizes):
                final()
            else:
                self.spad.access(sizes[idx[0]],
                                 is_write=False).add_callback(after_access)

        env._schedule_call(step, complete)
        return complete

    # -- lane -> memory ----------------------------------------------------

    def stream_out(self, nbytes: float, locality: float = 1.0,
                   src_store: Optional[Store] = None) -> Process:
        """Stream ``nbytes`` of results back to DRAM.

        With ``src_store``, chunks are drained as compute produces them
        (tokens put by the compute process); otherwise the whole transfer
        is issued immediately (end-of-task writeback).
        """
        if self.env.fast:
            return self._stream_out_fast(nbytes, locality, src_store)
        return self.env.process(
            self._pump_to_dram(nbytes, locality, src_store),
            name=f"{self.lane_name}.stream_out")

    def _pump_to_dram(self, nbytes: float, locality: float,
                      src_store: Optional[Store]) -> Generator:
        if src_store is None:
            for size in self.chunks_of(nbytes):
                yield from self._writeback_chunk(size, locality)
        else:
            # Consume *every* compute token (or the producer would block on
            # a full store), writing back at most ``nbytes`` total; any
            # bytes left after the stream closes go out as a trailing burst.
            remaining = float(nbytes)
            while True:
                token = yield src_store.get()
                if token is Store.END:
                    break
                size = min(self.chunk_bytes, remaining)
                if size > 0:
                    yield from self._writeback_chunk(size, locality)
                    remaining -= size
            while remaining > 0:
                size = min(self.chunk_bytes, remaining)
                yield from self._writeback_chunk(size, locality)
                remaining -= size
        self.counters.add(self._out_key, nbytes)

    def _writeback_chunk(self, size: float, locality: float) -> Generator:
        yield self.spad.access(size, is_write=False)
        yield self.noc.unicast(self.lane_name, MEM_NODE, size)
        yield self.dram.writeback(size, locality)

    def _stream_out_fast(self, nbytes: float, locality: float,
                         src_store: Optional[Store]) -> Event:
        """Callback-chain form of :meth:`_pump_to_dram` (fast kernel)."""
        env = self.env
        complete = Event(env, "stream_out")
        remaining = [float(nbytes)]

        def writeback(size: float, then) -> None:
            # spad read -> NoC to MEM -> DRAM writeback, like
            # _writeback_chunk, each stage in its awaited event's slot.
            def after_noc(_ev: object) -> None:
                self.dram.writeback(size, locality).add_callback(then)

            def after_spad(_ev: object) -> None:
                self.noc.unicast(self.lane_name, MEM_NODE,
                                 size).add_callback(after_noc)

            self.spad.access(size, is_write=False).add_callback(after_spad)

        def final() -> None:
            self.counters.add(self._out_key, nbytes)
            complete.succeed()

        if src_store is None:
            sizes = self.chunks_of(nbytes)
            idx = [0]

            def step(_arg: object) -> None:
                if idx[0] == len(sizes):
                    final()
                else:
                    def done(_ev: object) -> None:
                        idx[0] += 1
                        step(None)

                    writeback(sizes[idx[0]], done)

            env._schedule_call(step, complete)
            return complete

        def trailing(_arg: object) -> None:
            if remaining[0] > 0:
                size = min(self.chunk_bytes, remaining[0])

                def done(_ev: object) -> None:
                    remaining[0] -= size
                    trailing(None)

                writeback(size, done)
            else:
                final()

        def on_token(ev: Event) -> None:
            if ev.value is Store.END:
                trailing(None)
                return
            size = min(self.chunk_bytes, remaining[0])
            if size > 0:
                def done(_ev: object) -> None:
                    remaining[0] -= size
                    get_next(None)

                writeback(size, done)
            else:
                get_next(None)

        def get_next(_arg: object) -> None:
            src_store.get().add_callback(on_token)

        env._schedule_call(get_next, complete)
        return complete

    # -- lane -> lane (pipelined inter-task dependences) --------------------

    def forward(self, dst_lane: str, nbytes: float,
                src_store: Store, dest_store: Store,
                close_dest: bool = True) -> Process:
        """Forward a produced stream directly to a consumer lane.

        Used when TaskStream recovers a pipelined inter-task dependence:
        the producer's output bypasses DRAM entirely and lands in the
        consumer's scratchpad, chunk by chunk, with backpressure carried
        through the bounded stores.
        """
        return self.env.process(
            self._pump_forward(dst_lane, nbytes, src_store, dest_store,
                               close_dest),
            name=f"{self.lane_name}->{dst_lane}.forward")

    def _pump_forward(self, dst_lane: str, nbytes: float, src_store: Store,
                      dest_store: Store, close_dest: bool) -> Generator:
        moved = 0.0
        while True:
            token = yield src_store.get()
            if token is Store.END:
                break
            size = token if isinstance(token, (int, float)) else self.chunk_bytes
            yield self.spad.access(size, is_write=False)
            if dst_lane != self.lane_name:
                yield self.noc.unicast(self.lane_name, dst_lane, size)
            yield dest_store.put(size)
            moved += size
        self.counters.add(f"{self.lane_name}.forward_bytes", moved)
        self.counters.add("noc.forwarded_stream_bytes", moved)
        if close_dest:
            dest_store.close()
