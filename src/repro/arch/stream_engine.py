"""Stream engines: the data movers between DRAM, NoC, scratchpad and fabric.

A *stream* is a bulk transfer broken into chunks. Chunks flow through the
stage pipeline (DRAM channel -> NoC links -> scratchpad banks), and each
stage is a FIFO bandwidth server, so the stream's steady-state rate is set
by the slowest stage while other streams contend naturally.

Pipelining is modeled by decoupling issue from delivery: the pump process
waits for the DRAM stage of chunk *k*, then hands the downstream stages to
a detached delivery process and immediately issues chunk *k+1*. In-flight
chunks are bounded by a credit :class:`~repro.sim.Resource`, so downstream
backpressure (a slow consumer of ``dest_store``) throttles DRAM issue —
exactly the behaviour hardware credit-based streams have.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.arch.dram import Dram
from repro.arch.noc import MEM_NODE, Noc
from repro.arch.spad import Scratchpad
from repro.sim import Counters, Environment, Process, Resource, Store


class StreamEngine:
    """All stream data movement for one lane."""

    def __init__(self, env: Environment, counters: Counters, lane_name: str,
                 noc: Noc, dram: Dram, spad: Scratchpad, chunk_bytes: int,
                 max_inflight_chunks: int = 4) -> None:
        self.env = env
        self.counters = counters
        self.lane_name = lane_name
        self.noc = noc
        self.dram = dram
        self.spad = spad
        self.chunk_bytes = chunk_bytes
        self.max_inflight_chunks = max_inflight_chunks

    # -- helpers -----------------------------------------------------------

    def chunks_of(self, nbytes: float) -> list[int]:
        """Split a transfer into chunk sizes (last chunk may be short)."""
        if nbytes <= 0:
            return []
        full = int(nbytes // self.chunk_bytes)
        sizes = [self.chunk_bytes] * full
        rem = int(nbytes - full * self.chunk_bytes)
        if rem:
            sizes.append(rem)
        return sizes

    def chunk_count(self, nbytes: float) -> int:
        """Number of chunks for a transfer of ``nbytes``."""
        return max(0, math.ceil(nbytes / self.chunk_bytes)) if nbytes > 0 else 0

    # -- memory -> lane ----------------------------------------------------

    def stream_in(self, nbytes: float, locality: float = 1.0,
                  dest_store: Optional[Store] = None,
                  close_dest: bool = False) -> Process:
        """Stream ``nbytes`` from DRAM into this lane's scratchpad.

        If ``dest_store`` is given, a token is put per delivered chunk so a
        compute process can consume data as it arrives. The returned
        process completes when the final chunk has landed.
        """
        return self.env.process(
            self._pump_from_dram(nbytes, locality, dest_store, close_dest),
            name=f"{self.lane_name}.stream_in")

    def _pump_from_dram(self, nbytes: float, locality: float,
                        dest_store: Optional[Store], close_dest: bool,
                        ) -> Generator:
        credits = Resource(self.env, self.max_inflight_chunks,
                           name=f"{self.lane_name}.in_credits")
        tails = []
        for size in self.chunks_of(nbytes):
            yield credits.acquire()
            yield self.dram.fetch(size, locality)
            tails.append(self.env.process(
                self._deliver_chunk(size, dest_store, credits)))
        yield self.env.all_of(tails)
        self.counters.add(f"{self.lane_name}.stream_in_bytes", nbytes)
        if dest_store is not None and close_dest:
            dest_store.close()

    def _deliver_chunk(self, size: int, dest_store: Optional[Store],
                       credits: Resource) -> Generator:
        yield self.noc.unicast(MEM_NODE, self.lane_name, size)
        yield self.spad.access(size, is_write=True)
        if dest_store is not None:
            yield dest_store.put(size)
        credits.release()

    # -- resident scratchpad data -> fabric --------------------------------

    def read_resident(self, nbytes: float,
                      dest_store: Optional[Store] = None,
                      close_dest: bool = False) -> Process:
        """Feed on-chip (multicast-resident) data to the fabric.

        No DRAM or NoC traffic — only scratchpad bank reads. This is the
        payoff of read-sharing recovery.
        """
        return self.env.process(
            self._pump_resident(nbytes, dest_store, close_dest),
            name=f"{self.lane_name}.read_resident")

    def _pump_resident(self, nbytes: float, dest_store: Optional[Store],
                       close_dest: bool) -> Generator:
        for size in self.chunks_of(nbytes):
            yield self.spad.access(size, is_write=False)
            if dest_store is not None:
                yield dest_store.put(size)
        self.counters.add(f"{self.lane_name}.resident_read_bytes", nbytes)
        if dest_store is not None and close_dest:
            dest_store.close()

    # -- lane -> memory ----------------------------------------------------

    def stream_out(self, nbytes: float, locality: float = 1.0,
                   src_store: Optional[Store] = None) -> Process:
        """Stream ``nbytes`` of results back to DRAM.

        With ``src_store``, chunks are drained as compute produces them
        (tokens put by the compute process); otherwise the whole transfer
        is issued immediately (end-of-task writeback).
        """
        return self.env.process(
            self._pump_to_dram(nbytes, locality, src_store),
            name=f"{self.lane_name}.stream_out")

    def _pump_to_dram(self, nbytes: float, locality: float,
                      src_store: Optional[Store]) -> Generator:
        if src_store is None:
            for size in self.chunks_of(nbytes):
                yield from self._writeback_chunk(size, locality)
        else:
            # Consume *every* compute token (or the producer would block on
            # a full store), writing back at most ``nbytes`` total; any
            # bytes left after the stream closes go out as a trailing burst.
            remaining = float(nbytes)
            while True:
                token = yield src_store.get()
                if token is Store.END:
                    break
                size = min(self.chunk_bytes, remaining)
                if size > 0:
                    yield from self._writeback_chunk(size, locality)
                    remaining -= size
            while remaining > 0:
                size = min(self.chunk_bytes, remaining)
                yield from self._writeback_chunk(size, locality)
                remaining -= size
        self.counters.add(f"{self.lane_name}.stream_out_bytes", nbytes)

    def _writeback_chunk(self, size: float, locality: float) -> Generator:
        yield self.spad.access(size, is_write=False)
        yield self.noc.unicast(self.lane_name, MEM_NODE, size)
        yield self.dram.writeback(size, locality)

    # -- lane -> lane (pipelined inter-task dependences) --------------------

    def forward(self, dst_lane: str, nbytes: float,
                src_store: Store, dest_store: Store,
                close_dest: bool = True) -> Process:
        """Forward a produced stream directly to a consumer lane.

        Used when TaskStream recovers a pipelined inter-task dependence:
        the producer's output bypasses DRAM entirely and lands in the
        consumer's scratchpad, chunk by chunk, with backpressure carried
        through the bounded stores.
        """
        return self.env.process(
            self._pump_forward(dst_lane, nbytes, src_store, dest_store,
                               close_dest),
            name=f"{self.lane_name}->{dst_lane}.forward")

    def _pump_forward(self, dst_lane: str, nbytes: float, src_store: Store,
                      dest_store: Store, close_dest: bool) -> Generator:
        moved = 0.0
        while True:
            token = yield src_store.get()
            if token is Store.END:
                break
            size = token if isinstance(token, (int, float)) else self.chunk_bytes
            yield self.spad.access(size, is_write=False)
            if dst_lane != self.lane_name:
                yield self.noc.unicast(self.lane_name, dst_lane, size)
            yield dest_store.put(size)
            moved += size
        self.counters.add(f"{self.lane_name}.forward_bytes", moved)
        self.counters.add("noc.forwarded_stream_bytes", moved)
        if close_dest:
            dest_store.close()
