"""One accelerator lane: CGRA fabric + scratchpad + stream engines.

The lane owns the pieces a task touches while executing: the configuration
cache (reconfiguring the fabric costs cycles on a miss), the scratchpad,
the stream engines, and a busy-time tracker used by the load-imbalance
metrics.

The lane is execution-model agnostic — both the Delta runtime and the
static-parallel baseline drive lanes through the same interface, which is
what makes the comparison "equivalent" in the paper's sense.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.arch.config import LaneConfig
from repro.arch.dfg import Dfg
from repro.arch.dram import Dram
from repro.arch.mapper import Mapper, Mapping
from repro.arch.noc import Noc
from repro.arch.spad import Scratchpad
from repro.arch.stream_engine import StreamEngine
from repro.sim import Counters, Environment, Store, UtilizationTracker
from repro.sim.sanitize import NULL_SANITIZER, Sanitizer


class Lane:
    """A single lane of the accelerator."""

    def __init__(self, env: Environment, counters: Counters, lane_id: int,
                 config: LaneConfig, noc: Noc, dram: Dram,
                 mapper: Mapper, element_bytes: int = 4,
                 sanitizer: Optional[Sanitizer] = None) -> None:
        self.env = env
        self.counters = counters
        self.sanitizer = sanitizer or NULL_SANITIZER
        self.lane_id = lane_id
        self.config = config
        self.element_bytes = element_bytes
        self.name = f"lane{lane_id}"
        self.noc = noc
        self.dram = dram
        self.mapper = mapper
        self.spad = Scratchpad(
            env, counters, f"{self.name}.spad", config.spad_bytes,
            config.spad_banks, config.spad_bank_bytes_per_cycle)
        self.streams = StreamEngine(
            env, counters, self.name, noc, dram, self.spad,
            config.stream_chunk_bytes)
        self.tracker = UtilizationTracker(env, counters, self.name)
        self._config_cache: OrderedDict[tuple, Mapping] = OrderedDict()
        self._trips_key = f"{self.name}.trips"
        self._hits_key = f"{self.name}.config_hits"
        self._misses_key = f"{self.name}.config_misses"
        self._config_cycles_key = f"{self.name}.config_cycles"

    # -- configuration -----------------------------------------------------

    def configure(self, dfg: Dfg) -> Generator:
        """Ensure the fabric is configured for ``dfg``; yields config time.

        A small on-lane configuration cache holds recently used bitstreams;
        hits are free, misses cost ``config_cycles`` (fetching and loading
        the configuration). Returns the mapping.
        """
        key = dfg.signature()
        cached = self._config_cache.get(key)
        if cached is not None:
            self._config_cache.move_to_end(key)
            self.counters.add(self._hits_key)
            return cached
        mapping = self.mapper.map(dfg)
        if self.config.config_cycles:
            yield self.env.timeout(self.config.config_cycles)
        self.counters.add(self._misses_key)
        self.counters.add(self._config_cycles_key,
                          self.config.config_cycles)
        self._config_cache[key] = mapping
        while len(self._config_cache) > self.config.config_cache_entries:
            self._config_cache.popitem(last=False)
        return mapping

    def configured_for(self, dfg: Dfg) -> bool:
        """True if the lane already holds this DFG's configuration."""
        return dfg.signature() in self._config_cache

    # -- compute -----------------------------------------------------------

    def run_pipeline(self, mapping: Mapping, trips: int,
                     in_streams: Optional[list[tuple[Store, int]]] = None,
                     out_stores: Optional[list[Store]] = None,
                     close_outputs: bool = True) -> Generator:
        """Execute the configured pipeline for ``trips`` loop iterations.

        ``in_streams`` pairs each input store with its expected total chunk
        count. The compute consumes tokens *proportionally*: by the time a
        fraction f of the trips has executed, a fraction f of each input
        stream must have arrived. This paces long streams one token per
        step while a short stream (e.g. a one-chunk boundary row from a
        neighbouring task) gates only the step it logically feeds — not the
        whole pipeline.

        Each step advances the clock by ``II * step_trips`` cycles and
        emits one token per output store. Busy time accrues only for
        fabric-active cycles, not input stalls.
        """
        in_streams = in_streams or []
        out_stores = out_stores or []
        if trips <= 0:
            for store in out_stores:
                if close_outputs:
                    store.close()
            return
        chunk_elems = max(
            1, self.config.stream_chunk_bytes // self.element_bytes)
        steps = -(-trips // chunk_elems)  # ceil
        consumed = [0] * len(in_streams)
        live = [total > 0 for _store, total in in_streams]
        done_trips = 0
        # Pipeline fill: depth cycles before the first result emerges.
        yield self.env.timeout(mapping.depth)
        self.tracker.busy(mapping.depth)
        self.sanitizer.lane_busy(self.lane_id, mapping.depth, self.env.now)
        for step in range(steps):
            step_trips = min(chunk_elems, trips - done_trips)
            for idx, (store, total) in enumerate(in_streams):
                if not live[idx]:
                    continue
                target = min(total, -(-(step + 1) * total // steps))
                while consumed[idx] < target:
                    token = yield store.get()
                    if token is Store.END:
                        # Producer finished early (e.g. filtered stream);
                        # remaining trips run on data already resident.
                        live[idx] = False
                        break
                    consumed[idx] += 1
            active = mapping.ii * step_trips
            yield self.env.timeout(active)
            self.tracker.busy(active)
            self.sanitizer.lane_busy(self.lane_id, active, self.env.now)
            done_trips += step_trips
            for store in out_stores:
                yield store.put(step_trips)
        self.counters.add(self._trips_key, trips)
        for store in out_stores:
            if close_outputs:
                store.close()

    # -- reporting ---------------------------------------------------------

    @property
    def busy_cycles(self) -> float:
        """Total fabric-busy cycles so far."""
        return self.tracker.busy_cycles

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fabric busy fraction."""
        return self.tracker.utilization(elapsed)
