"""Main-memory model: a shared bandwidth channel with a locality knob.

All lanes share one DRAM channel (the usual accelerator configuration at
this scale). A request's *effective* size is inflated by the row-locality
penalty: fully sequential streams (locality 1.0) move at peak bandwidth,
fully random gathers (locality 0.0) pay ``random_penalty``x. The channel is
a FIFO server, so cross-lane bandwidth contention is emergent.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import BandwidthServer, Counters, Environment, Event
from repro.sim.engine import SimulationError
from repro.sim.faults import NULL_INJECTOR, FaultInjector


class Dram:
    """One shared memory channel."""

    def __init__(self, env: Environment, counters: Counters,
                 bytes_per_cycle: float, latency: float,
                 random_penalty: float,
                 injector: Optional[FaultInjector] = None) -> None:
        if random_penalty < 1.0:
            raise SimulationError(
                f"random_penalty must be >= 1, got {random_penalty}")
        self.env = env
        self.counters = counters
        self.injector = injector or NULL_INJECTOR
        self.channel = BandwidthServer(env, bytes_per_cycle, latency,
                                       name="dram")
        self.random_penalty = random_penalty

    def fetch(self, nbytes: float, locality: float = 1.0) -> Event:
        """Read ``nbytes``; ``locality`` in [0, 1] scales the row penalty."""
        return self._request(nbytes, locality, "read")

    def writeback(self, nbytes: float, locality: float = 1.0) -> Event:
        """Write ``nbytes`` to memory."""
        return self._request(nbytes, locality, "write")

    def _request(self, nbytes: float, locality: float, kind: str) -> Event:
        if not 0.0 <= locality <= 1.0:
            raise SimulationError(f"locality must be in [0,1]: {locality}")
        if nbytes < 0:
            raise SimulationError(f"negative request size: {nbytes}")
        penalty = self.random_penalty - (self.random_penalty - 1.0) * locality
        effective = nbytes * penalty
        self.counters.add(f"dram.{kind}_bytes", nbytes)
        self.counters.add(f"dram.{kind}_effective_bytes", effective)
        self.counters.add("dram.requests")
        served = self.channel.transfer(effective)
        if self.injector.enabled:
            spike = self.injector.dram_spike(self.env.now)
            if spike > 0.0:
                return self._spiked(served, spike)
        return served

    def _spiked(self, served: Event, spike: float) -> Event:
        """Delay one response by a spike; the requester simply waits —
        the watchdog bound lives in the injector (``dram-timeout``)."""
        self.counters.add("faults.injected")
        self.counters.add("faults.dram_spikes")
        self.counters.add("faults.dram_spike_cycles", spike)
        self.counters.add("recovery.absorbed_spike_cycles", spike)
        done = self.env.event(name="dram-spike")
        served.add_callback(
            lambda _ev: self.env.timeout(spike).add_callback(
                lambda _t: done.succeed()))
        return done

    @property
    def total_bytes(self) -> float:
        """Actual data bytes moved (without penalty inflation)."""
        return (self.counters.get("dram.read_bytes")
                + self.counters.get("dram.write_bytes"))

    def utilization(self) -> float:
        """Channel busy fraction so far."""
        return self.channel.utilization()
