"""Main-memory model: a shared bandwidth channel with a locality knob.

All lanes share one DRAM channel (the usual accelerator configuration at
this scale). A request's *effective* size is inflated by the row-locality
penalty: fully sequential streams (locality 1.0) move at peak bandwidth,
fully random gathers (locality 0.0) pay ``random_penalty``x. The channel is
a FIFO server, so cross-lane bandwidth contention is emergent.
"""

from __future__ import annotations

from repro.sim import BandwidthServer, Counters, Environment, Event
from repro.sim.engine import SimulationError


class Dram:
    """One shared memory channel."""

    def __init__(self, env: Environment, counters: Counters,
                 bytes_per_cycle: float, latency: float,
                 random_penalty: float) -> None:
        if random_penalty < 1.0:
            raise SimulationError(
                f"random_penalty must be >= 1, got {random_penalty}")
        self.env = env
        self.counters = counters
        self.channel = BandwidthServer(env, bytes_per_cycle, latency,
                                       name="dram")
        self.random_penalty = random_penalty

    def fetch(self, nbytes: float, locality: float = 1.0) -> Event:
        """Read ``nbytes``; ``locality`` in [0, 1] scales the row penalty."""
        return self._request(nbytes, locality, "read")

    def writeback(self, nbytes: float, locality: float = 1.0) -> Event:
        """Write ``nbytes`` to memory."""
        return self._request(nbytes, locality, "write")

    def _request(self, nbytes: float, locality: float, kind: str) -> Event:
        if not 0.0 <= locality <= 1.0:
            raise SimulationError(f"locality must be in [0,1]: {locality}")
        if nbytes < 0:
            raise SimulationError(f"negative request size: {nbytes}")
        penalty = self.random_penalty - (self.random_penalty - 1.0) * locality
        effective = nbytes * penalty
        self.counters.add(f"dram.{kind}_bytes", nbytes)
        self.counters.add(f"dram.{kind}_effective_bytes", effective)
        self.counters.add("dram.requests")
        return self.channel.transfer(effective)

    @property
    def total_bytes(self) -> float:
        """Actual data bytes moved (without penalty inflation)."""
        return (self.counters.get("dram.read_bytes")
                + self.counters.get("dram.write_bytes"))

    def utilization(self) -> float:
        """Channel busy fraction so far."""
        return self.channel.utilization()
