"""Analytical area model for the overhead table (T3).

The paper's claim is qualitative at this fidelity: the task hardware that
TaskStream adds (task queues, dependence-annotation tables, the work-aware
dispatcher, multicast routing state) is a small single-digit percentage of
an accelerator lane dominated by FUs, scratchpad SRAM and stream engines.

Per-structure costs below are rough 28nm-class numbers (mm^2) assembled
from published CGRA and accelerator papers; they are inputs to a *ratio*,
so only relative magnitudes matter. All values are exposed as dataclass
fields so sensitivity can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import MachineConfig


@dataclass(frozen=True)
class AreaParameters:
    """Unit areas in mm^2 (28nm-class, order-of-magnitude calibrated)."""

    alu_fu: float = 0.0016
    mul_fu: float = 0.0060
    mem_fu: float = 0.0030
    switch: float = 0.0014
    sram_per_kib: float = 0.0055
    stream_engine: float = 0.0080
    config_store_per_entry: float = 0.0020
    # TaskStream additions:
    task_queue_per_entry: float = 0.00035
    annotation_table_per_entry: float = 0.00030
    work_estimator: float = 0.0024
    dispatcher_core: float = 0.0110
    multicast_table_per_lane: float = 0.00055


@dataclass(frozen=True)
class AreaBreakdown:
    """Computed areas, all in mm^2."""

    lane_compute: float
    lane_spad: float
    lane_streams: float
    lane_config: float
    lanes_total: float
    task_queues: float
    annotation_tables: float
    dispatcher: float
    multicast_support: float
    taskstream_total: float

    @property
    def machine_total(self) -> float:
        """Baseline machine area plus TaskStream additions."""
        return self.lanes_total + self.taskstream_total

    @property
    def overhead_fraction(self) -> float:
        """TaskStream hardware as a fraction of the baseline machine."""
        return self.taskstream_total / self.lanes_total

    def rows(self) -> list[tuple[str, float]]:
        """(label, mm^2) rows for the report table."""
        return [
            ("lane compute (FUs + switches)", self.lane_compute),
            ("lane scratchpad SRAM", self.lane_spad),
            ("lane stream engines", self.lane_streams),
            ("lane config store", self.lane_config),
            ("all lanes (baseline total)", self.lanes_total),
            ("task queues", self.task_queues),
            ("annotation tables", self.annotation_tables),
            ("work-aware dispatcher", self.dispatcher),
            ("multicast routing state", self.multicast_support),
            ("TaskStream additions total", self.taskstream_total),
        ]


def estimate_area(machine: MachineConfig,
                  params: AreaParameters = AreaParameters()) -> AreaBreakdown:
    """Compute the area breakdown for a machine configuration."""
    fabric = machine.lane.fabric
    cells = fabric.cells
    mul_cells = round(fabric.mul_ratio * cells)
    mem_cells = round(fabric.mem_ratio * cells)
    alu_only = cells  # every cell has an ALU datapath
    compute = (alu_only * params.alu_fu
               + mul_cells * params.mul_fu
               + mem_cells * params.mem_fu
               + cells * params.switch)
    spad = machine.lane.spad_bytes / 1024 * params.sram_per_kib
    streams = ((machine.lane.input_ports + machine.lane.output_ports)
               * params.stream_engine)
    config = machine.lane.config_cache_entries * params.config_store_per_entry
    lane_area = compute + spad + streams + config
    lanes_total = lane_area * machine.lanes

    task_queues = (machine.dispatch.queue_depth * machine.lanes
                   * params.task_queue_per_entry)
    annotation_tables = (machine.dispatch.queue_depth * machine.lanes
                         * params.annotation_table_per_entry)
    dispatcher = (params.dispatcher_core
                  + machine.lanes * params.work_estimator / 8)
    multicast = machine.lanes * params.multicast_table_per_lane
    ts_total = task_queues + annotation_tables + dispatcher + multicast

    return AreaBreakdown(
        lane_compute=compute,
        lane_spad=spad,
        lane_streams=streams,
        lane_config=config,
        lanes_total=lanes_total,
        task_queues=task_queues,
        annotation_tables=annotation_tables,
        dispatcher=dispatcher,
        multicast_support=multicast,
        taskstream_total=ts_total,
    )
