"""The spatial fabric: a grid of functional units joined by switches.

Each grid cell holds one functional unit (FU) and one switch. Every FU
executes ALU-class ops; a configurable fraction additionally execute
MUL-class ops, and another fraction MEM-class ops (stream interfaces). The
switch network is a 4-neighbour mesh; edge routes consume switch hops.

The fabric itself is purely structural — mapping DFGs onto it is the job of
:mod:`repro.arch.mapper`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import FabricConfig
from repro.arch.dfg import FuClass


@dataclass(frozen=True)
class Cell:
    """One grid position with its FU capability set."""

    row: int
    col: int
    capabilities: frozenset[FuClass]

    def supports(self, fu_class: FuClass) -> bool:
        """Whether this cell's FU can run ops of the given class."""
        if fu_class is FuClass.NONE:
            return True
        return fu_class in self.capabilities

    @property
    def position(self) -> tuple[int, int]:
        """(row, col) coordinate."""
        return (self.row, self.col)


class Fabric:
    """A concrete CGRA instance built from a :class:`FabricConfig`.

    Capability placement is deterministic: cells are ranked in a diagonal
    interleave and the first ``mul_ratio`` fraction get MUL capability, the
    first ``mem_ratio`` of a different interleave get MEM. Determinism keeps
    mapping results (and thus all timing) reproducible for a given config.
    """

    def __init__(self, config: FabricConfig) -> None:
        self.config = config
        self.cells: dict[tuple[int, int], Cell] = {}
        positions = [(r, c) for r in range(config.rows)
                     for c in range(config.cols)]
        n = len(positions)
        mul_count = round(config.mul_ratio * n)
        mem_count = round(config.mem_ratio * n)
        # Diagonal interleaves spread capabilities across the grid.
        mul_rank = sorted(positions, key=lambda rc: ((rc[0] + rc[1]) % 3,
                                                     rc[0], rc[1]))
        mem_rank = sorted(positions, key=lambda rc: ((rc[0] * 2 + rc[1]) % 5,
                                                     rc[1], rc[0]))
        mul_cells = set(mul_rank[:mul_count])
        mem_cells = set(mem_rank[:mem_count])
        for pos in positions:
            caps = {FuClass.ALU}
            if pos in mul_cells:
                caps.add(FuClass.MUL)
            if pos in mem_cells:
                caps.add(FuClass.MEM)
            self.cells[pos] = Cell(pos[0], pos[1], frozenset(caps))

    @property
    def positions(self) -> list[tuple[int, int]]:
        """All cell coordinates in row-major order."""
        return sorted(self.cells)

    def cells_supporting(self, fu_class: FuClass) -> list[Cell]:
        """Cells whose FU can execute the given class, row-major order."""
        return [self.cells[p] for p in self.positions
                if self.cells[p].supports(fu_class)]

    def count_supporting(self, fu_class: FuClass) -> int:
        """Number of cells supporting the class."""
        return len(self.cells_supporting(fu_class))

    def neighbors(self, pos: tuple[int, int]) -> list[tuple[int, int]]:
        """4-neighbour mesh adjacency."""
        row, col = pos
        out = []
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            cand = (row + dr, col + dc)
            if cand in self.cells:
                out.append(cand)
        return out

    @staticmethod
    def manhattan(a: tuple[int, int], b: tuple[int, int]) -> int:
        """Grid distance between two coordinates."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def resource_mii(self, op_histogram: dict[FuClass, int]) -> int:
        """Minimum II from FU counts: ``max ceil(ops_c / fus_c)``.

        Raises :class:`FabricCapacityError` if a class has demand but no
        supporting cells at all.
        """
        mii = 1
        for fu_class, demand in op_histogram.items():
            supply = self.count_supporting(fu_class)
            if supply == 0:
                raise FabricCapacityError(
                    f"fabric has no {fu_class.value} cells but the DFG "
                    f"needs {demand}")
            mii = max(mii, -(-demand // supply))  # ceil division
        return mii


class FabricCapacityError(RuntimeError):
    """The fabric cannot host a DFG (missing capability or too few cells)."""
