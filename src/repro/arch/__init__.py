"""Hardware substrate models for the Delta accelerator and its baseline.

Subpackages model the pieces of a reconfigurable dataflow accelerator at
cycle-approximate fidelity:

- :mod:`repro.arch.config` — architecture parameter dataclasses.
- :mod:`repro.arch.dfg` — dataflow-graph IR describing task compute.
- :mod:`repro.arch.cgra` — the spatial fabric (grid of FUs + switches).
- :mod:`repro.arch.mapper` — place-and-route of DFGs onto the fabric,
  yielding the achieved initiation interval (II).
- :mod:`repro.arch.spad` — banked scratchpad memories.
- :mod:`repro.arch.noc` — mesh network-on-chip with multicast trees.
- :mod:`repro.arch.dram` — main-memory bandwidth/latency model.
- :mod:`repro.arch.stream_engine` — stream engines moving data between
  memory, the NoC, scratchpads and the fabric.
- :mod:`repro.arch.lane` — one accelerator lane (fabric + spad + streams).
- :mod:`repro.arch.area` — analytical area model for the overhead table.
"""

from repro.arch.config import (
    FabricConfig,
    LaneConfig,
    NocConfig,
    DramConfig,
    DispatchConfig,
    MachineConfig,
    FeatureFlags,
)

__all__ = [
    "FabricConfig",
    "LaneConfig",
    "NocConfig",
    "DramConfig",
    "DispatchConfig",
    "MachineConfig",
    "FeatureFlags",
]
