"""Banked scratchpad memory local to one lane.

The scratchpad serves stream-engine reads/writes. Transfers are striped
across banks at chunk granularity; each bank is a fixed-rate FIFO server,
so bank conflicts (two streams hammering the same bank) show up as queueing
delay rather than an assumed penalty factor.

The scratchpad also tracks *resident regions* — named data (e.g. a
multicast payload) currently held on-chip. Residency is what lets the
multicast mechanism skip redundant DRAM fetches: a task whose SharedRead
region is already resident reads it at scratchpad bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import BandwidthServer, Counters, Environment, Event
from repro.sim.engine import SimulationError


class CapacityError(RuntimeError):
    """A region does not fit in the scratchpad."""


class Scratchpad:
    """Banked SRAM with region residency tracking."""

    def __init__(self, env: Environment, counters: Counters, name: str,
                 capacity_bytes: int, banks: int,
                 bank_bytes_per_cycle: float) -> None:
        if capacity_bytes <= 0:
            raise SimulationError("scratchpad capacity must be positive")
        self.env = env
        self.counters = counters
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.banks = [
            BandwidthServer(env, bank_bytes_per_cycle,
                            name=f"{name}.bank{i}")
            for i in range(banks)
        ]
        self._read_key = f"{name}.read_bytes"
        self._write_key = f"{name}.write_bytes"
        self._regions: dict[str, int] = {}
        self._used = 0
        self._rr = 0  # round-robin bank pointer for striping

    # -- bandwidth ---------------------------------------------------------

    def access(self, nbytes: float, is_write: bool) -> Event:
        """Move ``nbytes`` through the banks (striped round-robin).

        Returns an event firing when the access completes. One call models
        one chunk; the stream engine issues chunks back-to-back so bank
        contention between concurrent streams is emergent.
        """
        bank = self.banks[self._rr]
        self._rr = (self._rr + 1) % len(self.banks)
        self.counters.add(self._write_key if is_write else self._read_key,
                          nbytes)
        return bank.transfer(nbytes)

    # -- residency ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated to resident regions."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used

    def is_resident(self, region: str) -> bool:
        """Whether a named region is currently held on-chip."""
        return region in self._regions

    def allocate(self, region: str, nbytes: int) -> None:
        """Pin a region; raises :class:`CapacityError` if it cannot fit.

        Allocating an already-resident region is a no-op (idempotent so a
        multicast landing twice — e.g. two task groups sharing a region —
        does not double-count).
        """
        if region in self._regions:
            return
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"{self.name}: region {region!r} ({nbytes} B) exceeds free "
                f"space ({self.free_bytes} B of {self.capacity_bytes} B)")
        self._regions[region] = nbytes
        self._used += nbytes
        self.counters.set_max(f"{self.name}.peak_used_bytes", self._used)

    def release(self, region: str) -> None:
        """Unpin a region; unknown regions are ignored (already evicted)."""
        nbytes = self._regions.pop(region, None)
        if nbytes is not None:
            self._used -= nbytes

    def evict_lru_until(self, needed: int) -> list[str]:
        """Evict regions (insertion order ~ LRU) until ``needed`` bytes fit.

        Returns the evicted region names. Raises :class:`CapacityError` if
        even a fully empty scratchpad could not fit the request.
        """
        if needed > self.capacity_bytes:
            raise CapacityError(
                f"{self.name}: request of {needed} B exceeds total "
                f"capacity {self.capacity_bytes} B")
        evicted = []
        while self.free_bytes < needed and self._regions:
            region = next(iter(self._regions))
            self.release(region)
            evicted.append(region)
            self.counters.add(f"{self.name}.evictions")
        return evicted

    def resident_regions(self) -> list[str]:
        """Names of resident regions, oldest first."""
        return list(self._regions)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean bank busy fraction."""
        if not self.banks:
            return 0.0
        return sum(b.utilization(elapsed) for b in self.banks) / len(self.banks)
