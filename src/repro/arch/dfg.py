"""Dataflow-graph IR describing a task's inner compute loop.

A :class:`Dfg` is the unit of configuration for one CGRA lane: nodes are
operations bound to functional-unit classes, edges are value flows. Edges
may carry a *dependence distance* (> 0 for loop-carried values), which makes
the graph a cyclic dependence graph in the usual modulo-scheduling sense.

Two quantities drive the timing model:

- **recurrence MII** — the minimum initiation interval imposed by cycles,
  ``max over cycles (sum latency / sum distance)``, computed exactly with
  Lawler's binary search over Bellman-Ford feasibility.
- **resource MII** — ``max over FU classes ceil(#ops / #FUs)``, computed by
  the mapper against a concrete fabric.

The achieved II of a mapping is at least the max of both, plus congestion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class Op(enum.Enum):
    """Operation classes, grouped by the FU capability they require."""

    # ALU class (every FU supports these).
    ADD = "add"
    SUB = "sub"
    CMP = "cmp"
    SELECT = "select"
    LOGIC = "logic"
    SHIFT = "shift"
    PHI = "phi"
    # MUL class.
    MUL = "mul"
    MAC = "mac"
    DIV = "div"
    SQRT = "sqrt"
    # MEM class (stream interface nodes).
    INPUT = "input"
    OUTPUT = "output"
    GATHER = "gather"
    SCATTER = "scatter"
    # Free (constants fold into FU configuration).
    CONST = "const"


class FuClass(enum.Enum):
    """Functional-unit capability classes present in the fabric."""

    ALU = "alu"
    MUL = "mul"
    MEM = "mem"
    NONE = "none"  # consumes no FU (constants)


#: Which FU class each op needs.
OP_FU_CLASS: dict[Op, FuClass] = {
    Op.ADD: FuClass.ALU,
    Op.SUB: FuClass.ALU,
    Op.CMP: FuClass.ALU,
    Op.SELECT: FuClass.ALU,
    Op.LOGIC: FuClass.ALU,
    Op.SHIFT: FuClass.ALU,
    Op.PHI: FuClass.ALU,
    Op.MUL: FuClass.MUL,
    Op.MAC: FuClass.MUL,
    Op.DIV: FuClass.MUL,
    Op.SQRT: FuClass.MUL,
    Op.INPUT: FuClass.MEM,
    Op.OUTPUT: FuClass.MEM,
    Op.GATHER: FuClass.MEM,
    Op.SCATTER: FuClass.MEM,
    Op.CONST: FuClass.NONE,
}

#: Pipeline latency (cycles) of each op on its FU.
OP_LATENCY: dict[Op, int] = {
    Op.ADD: 1, Op.SUB: 1, Op.CMP: 1, Op.SELECT: 1, Op.LOGIC: 1,
    Op.SHIFT: 1, Op.PHI: 1,
    Op.MUL: 3, Op.MAC: 3, Op.DIV: 8, Op.SQRT: 8,
    Op.INPUT: 1, Op.OUTPUT: 1, Op.GATHER: 2, Op.SCATTER: 2,
    Op.CONST: 0,
}


class DfgError(ValueError):
    """Raised for malformed dataflow graphs."""


@dataclass(frozen=True)
class Node:
    """One operation in the graph."""

    node_id: int
    op: Op
    name: str = ""

    @property
    def fu_class(self) -> FuClass:
        """The FU capability class this op requires."""
        return OP_FU_CLASS[self.op]

    @property
    def latency(self) -> int:
        """Pipeline latency in cycles."""
        return OP_LATENCY[self.op]


@dataclass(frozen=True)
class Edge:
    """A value flow ``src -> dst``; ``distance`` > 0 marks loop-carried."""

    src: int
    dst: int
    distance: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise DfgError(f"edge distance must be >= 0, got {self.distance}")


@dataclass
class Dfg:
    """A dataflow graph plus derived properties used by the mapper.

    Build with :meth:`add` / :meth:`connect`, then call :meth:`validate`
    (or use :class:`DfgBuilder` which validates on ``build``).
    """

    name: str
    nodes: dict[int, Node] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    _next_id: int = 0

    # -- construction ------------------------------------------------------

    def add(self, op: Op, name: str = "") -> int:
        """Add a node; returns its id."""
        node_id = self._next_id
        self._next_id += 1
        self.nodes[node_id] = Node(node_id, op, name or f"{op.value}{node_id}")
        return node_id

    def connect(self, src: int, dst: int, distance: int = 0) -> None:
        """Add an edge from ``src`` to ``dst``."""
        if src not in self.nodes or dst not in self.nodes:
            raise DfgError(f"edge references unknown node: {src}->{dst}")
        self.edges.append(Edge(src, dst, distance))

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of operation nodes."""
        return len(self.nodes)

    def inputs(self) -> list[Node]:
        """All INPUT/GATHER nodes, in id order."""
        return [n for n in self._ordered_nodes()
                if n.op in (Op.INPUT, Op.GATHER)]

    def outputs(self) -> list[Node]:
        """All OUTPUT/SCATTER nodes, in id order."""
        return [n for n in self._ordered_nodes()
                if n.op in (Op.OUTPUT, Op.SCATTER)]

    def op_histogram(self) -> dict[FuClass, int]:
        """Count of nodes per FU class (excluding NONE)."""
        hist: dict[FuClass, int] = {}
        for node in self.nodes.values():
            cls = node.fu_class
            if cls is FuClass.NONE:
                continue
            hist[cls] = hist.get(cls, 0) + 1
        return hist

    def _ordered_nodes(self) -> list[Node]:
        return [self.nodes[i] for i in sorted(self.nodes)]

    def successors(self) -> dict[int, list[Edge]]:
        """Adjacency: node id -> outgoing edges."""
        adj: dict[int, list[Edge]] = {i: [] for i in self.nodes}
        for edge in self.edges:
            adj[edge.src].append(edge)
        return adj

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`DfgError` on failure.

        Invariants: at least one node; every zero-distance subgraph is
        acyclic (cycles must carry distance); OUTPUT nodes have no
        zero-distance successors; INPUT nodes have no predecessors.
        """
        if not self.nodes:
            raise DfgError(f"dfg {self.name!r} has no nodes")
        preds: dict[int, int] = {i: 0 for i in self.nodes}
        for edge in self.edges:
            if edge.distance == 0:
                preds[edge.dst] += 1
            if edge.distance == 0 and self.nodes[edge.src].op is Op.OUTPUT:
                raise DfgError(
                    f"{self.name}: OUTPUT node {edge.src} feeds {edge.dst}")
        for edge in self.edges:
            if self.nodes[edge.dst].op in (Op.INPUT,) and edge.distance == 0:
                raise DfgError(
                    f"{self.name}: INPUT node {edge.dst} has a predecessor")
        # Kahn's algorithm over zero-distance edges only.
        ready = [i for i, c in preds.items() if c == 0]
        seen = 0
        adj = self.successors()
        while ready:
            node = ready.pop()
            seen += 1
            for edge in adj[node]:
                if edge.distance != 0:
                    continue
                preds[edge.dst] -= 1
                if preds[edge.dst] == 0:
                    ready.append(edge.dst)
        if seen != len(self.nodes):
            raise DfgError(
                f"{self.name}: zero-distance cycle detected "
                f"(loop-carried edges must declare distance > 0)")

    # -- analysis ----------------------------------------------------------

    def critical_path(self) -> int:
        """Longest latency path over zero-distance edges (pipeline depth)."""
        self.validate()
        order = self._topo_order_zero_distance()
        dist = {i: self.nodes[i].latency for i in self.nodes}
        adj = self.successors()
        for node in order:
            for edge in adj[node]:
                if edge.distance != 0:
                    continue
                cand = dist[node] + self.nodes[edge.dst].latency
                if cand > dist[edge.dst]:
                    dist[edge.dst] = cand
        return max(dist.values())

    def recurrence_mii(self) -> float:
        """Minimum II imposed by loop-carried cycles (max cycle ratio).

        Uses Lawler's scheme: binary-search the ratio ``r``; a cycle with
        positive weight under ``w(e) = latency(src) - r * distance(e)``
        means ``r`` is below the max cycle ratio. Positive-cycle detection
        is Bellman-Ford from a virtual source. Acyclic graphs return 1.0
        (an II of one: fully pipelined).
        """
        self.validate()
        if not any(e.distance > 0 for e in self.edges):
            return 1.0
        lo, hi = 1.0, float(sum(n.latency for n in self.nodes.values()) + 1)
        for _ in range(48):  # ~1e-14 relative precision, plenty for IIs
            mid = (lo + hi) / 2
            if self._has_positive_cycle(mid):
                lo = mid
            else:
                hi = mid
        return hi

    def _has_positive_cycle(self, ratio: float) -> bool:
        ids = list(self.nodes)
        dist = {i: 0.0 for i in ids}
        for _ in range(len(ids)):
            changed = False
            for edge in self.edges:
                weight = self.nodes[edge.src].latency - ratio * edge.distance
                cand = dist[edge.src] + weight
                if cand > dist[edge.dst] + 1e-12:
                    dist[edge.dst] = cand
                    changed = True
            if not changed:
                return False
        return True

    def _topo_order_zero_distance(self) -> list[int]:
        preds = {i: 0 for i in self.nodes}
        for edge in self.edges:
            if edge.distance == 0:
                preds[edge.dst] += 1
        ready = sorted(i for i, c in preds.items() if c == 0)
        order = []
        adj = self.successors()
        while ready:
            node = ready.pop(0)
            order.append(node)
            for edge in adj[node]:
                if edge.distance != 0:
                    continue
                preds[edge.dst] -= 1
                if preds[edge.dst] == 0:
                    ready.append(edge.dst)
        return order

    def signature(self) -> tuple:
        """Hashable identity used by lane config caches."""
        return (self.name, len(self.nodes),
                tuple(sorted((n.node_id, n.op.value)
                             for n in self.nodes.values())),
                tuple(sorted((e.src, e.dst, e.distance) for e in self.edges)))


class DfgBuilder:
    """Fluent builder producing validated graphs.

    Example::

        dfg = (DfgBuilder("dot")
               .input("a").input("b")
               .op(Op.MUL, "prod", after=("a", "b"))
               .accumulate(Op.ADD, "sum", after=("prod",))
               .output("out", after=("sum",))
               .build())
    """

    def __init__(self, name: str) -> None:
        self._dfg = Dfg(name)
        self._by_name: dict[str, int] = {}

    def _register(self, name: str, node_id: int) -> None:
        if name in self._by_name:
            raise DfgError(f"duplicate node name {name!r}")
        self._by_name[name] = node_id

    def input(self, name: str) -> "DfgBuilder":
        """Add a stream-input node."""
        self._register(name, self._dfg.add(Op.INPUT, name))
        return self

    def output(self, name: str, after: Iterable[str]) -> "DfgBuilder":
        """Add a stream-output node fed by ``after``."""
        node_id = self._dfg.add(Op.OUTPUT, name)
        self._register(name, node_id)
        for producer in after:
            self._dfg.connect(self._by_name[producer], node_id)
        return self

    def op(self, op: Op, name: str, after: Iterable[str] = ()) -> "DfgBuilder":
        """Add a compute node fed by ``after``."""
        node_id = self._dfg.add(op, name)
        self._register(name, node_id)
        for producer in after:
            self._dfg.connect(self._by_name[producer], node_id)
        return self

    def accumulate(self, op: Op, name: str,
                   after: Iterable[str] = (),
                   distance: int = 1) -> "DfgBuilder":
        """Add a self-recurrent node (e.g. a running sum)."""
        node_id = self._dfg.add(op, name)
        self._register(name, node_id)
        for producer in after:
            self._dfg.connect(self._by_name[producer], node_id)
        self._dfg.connect(node_id, node_id, distance=distance)
        return self

    def connect(self, src: str, dst: str, distance: int = 0) -> "DfgBuilder":
        """Add an explicit edge between named nodes."""
        self._dfg.connect(self._by_name[src], self._by_name[dst], distance)
        return self

    def build(self) -> Dfg:
        """Validate and return the graph."""
        self._dfg.validate()
        return self._dfg


# ---------------------------------------------------------------------------
# A small library of kernel graphs reused by the workloads.
# ---------------------------------------------------------------------------

def dot_product_dfg(name: str = "dot") -> Dfg:
    """Multiply-accumulate over two input streams."""
    return (DfgBuilder(name)
            .input("a").input("b")
            .op(Op.MUL, "prod", after=("a", "b"))
            .accumulate(Op.ADD, "acc", after=("prod",))
            .output("out", after=("acc",))
            .build())


def axpy_dfg(name: str = "axpy") -> Dfg:
    """Elementwise multiply-add: out = alpha * x + y."""
    return (DfgBuilder(name)
            .input("x").input("y")
            .op(Op.CONST, "alpha")
            .op(Op.MUL, "ax", after=("x", "alpha"))
            .op(Op.ADD, "sum", after=("ax", "y"))
            .output("out", after=("sum",))
            .build())


def merge_dfg(name: str = "merge") -> Dfg:
    """Two-way sorted-stream merge (compare/select with recurrence)."""
    return (DfgBuilder(name)
            .input("a").input("b")
            .op(Op.CMP, "cmp", after=("a", "b"))
            .accumulate(Op.SELECT, "sel", after=("cmp",))
            .output("out", after=("sel",))
            .build())


def compare_count_dfg(name: str = "cmpcount") -> Dfg:
    """Stream intersection / comparison counting (triangle counting)."""
    return (DfgBuilder(name)
            .input("a").input("b")
            .op(Op.CMP, "eq", after=("a", "b"))
            .op(Op.LOGIC, "mask", after=("eq",))
            .accumulate(Op.ADD, "count", after=("mask",))
            .output("out", after=("count",))
            .build())


def stencil5_dfg(name: str = "stencil5") -> Dfg:
    """Five-point stencil over one input stream (shifted taps)."""
    b = DfgBuilder(name).input("center")
    b.op(Op.CONST, "w0").op(Op.CONST, "w1")
    b.op(Op.MUL, "c0", after=("center", "w0"))
    # Shifted taps come through PHI chains (register delays on the fabric).
    b.op(Op.PHI, "n", after=("center",))
    b.op(Op.PHI, "s", after=("center",))
    b.op(Op.PHI, "e", after=("center",))
    b.op(Op.PHI, "w", after=("center",))
    b.op(Op.ADD, "ns", after=("n", "s"))
    b.op(Op.ADD, "ew", after=("e", "w"))
    b.op(Op.ADD, "nsew", after=("ns", "ew"))
    b.op(Op.MUL, "c1", after=("nsew", "w1"))
    b.op(Op.ADD, "out_sum", after=("c0", "c1"))
    b.output("out", after=("out_sum",))
    return b.build()


def smith_waterman_dfg(name: str = "swcell") -> Dfg:
    """Smith-Waterman inner cell: max of three neighbours plus score."""
    return (DfgBuilder(name)
            .input("above").input("left").input("diag").input("score")
            .op(Op.ADD, "dscore", after=("diag", "score"))
            .op(Op.CMP, "m1", after=("above", "left"))
            .op(Op.SELECT, "best_al", after=("m1",))
            .op(Op.CMP, "m2", after=("best_al", "dscore"))
            .op(Op.SELECT, "best", after=("m2",))
            .output("out", after=("best",))
            .build())


def histogram_dfg(name: str = "hist") -> Dfg:
    """Histogram update: gather bin, increment, scatter back."""
    return (DfgBuilder(name)
            .input("keys")
            .op(Op.SHIFT, "bin", after=("keys",))
            .op(Op.GATHER, "old", after=("bin",))
            .accumulate(Op.ADD, "inc", after=("old",))
            .op(Op.SCATTER, "store", after=("inc", "bin"))
            .output("out", after=("store",))
            .build())


def cholesky_update_dfg(name: str = "trsm_gemm") -> Dfg:
    """Tile update kernel for Cholesky (MAC-heavy with divide)."""
    return (DfgBuilder(name)
            .input("a").input("l")
            .op(Op.MUL, "p1", after=("a", "l"))
            .op(Op.MAC, "p2", after=("p1", "l"))
            .accumulate(Op.ADD, "acc", after=("p2",))
            .op(Op.DIV, "scaled", after=("acc",))
            .output("out", after=("scaled",))
            .build())


def distance_dfg(name: str = "l2dist") -> Dfg:
    """Squared L2 distance between two streams (kNN kernel)."""
    return (DfgBuilder(name)
            .input("q").input("c")
            .op(Op.SUB, "diff", after=("q", "c"))
            .op(Op.MUL, "sq", after=("diff", "diff"))
            .accumulate(Op.ADD, "acc", after=("sq",))
            .output("out", after=("acc",))
            .build())


def edge_expand_dfg(name: str = "bfs_expand") -> Dfg:
    """BFS frontier expansion: gather neighbour, test visited, emit."""
    return (DfgBuilder(name)
            .input("edges")
            .op(Op.GATHER, "visited", after=("edges",))
            .op(Op.CMP, "fresh", after=("visited",))
            .op(Op.SELECT, "emit", after=("fresh", "edges"))
            .op(Op.SCATTER, "mark", after=("emit",))
            .output("out", after=("mark",))
            .build())
