"""TaskStream / Delta reproduction.

A Python reproduction of *TaskStream: accelerating task-parallel workloads
by recovering program structure* (Dadu & Nowatzki, ASPLOS 2022): a task
execution model for reconfigurable dataflow accelerators, applied to a
cycle-approximate model of the Delta accelerator and an equivalent
static-parallel baseline.

Quick start::

    from repro import Delta, StaticParallel, default_delta_config
    from repro.workloads import get_workload

    workload = get_workload("spmv")
    delta = Delta(default_delta_config(lanes=8)).run(workload.build_program())
    workload.check(delta.state)          # functional verification
    print(delta.cycles, delta.dram_bytes)

Public surface:

- :class:`~repro.core.delta.Delta`, :class:`~repro.baseline.static.
  StaticParallel` — the two machines.
- :mod:`repro.arch.config` — machine configuration dataclasses.
- :class:`~repro.core.task.TaskType` / :class:`~repro.core.program.
  Program` + :mod:`repro.core.annotations` — the programming model.
- :mod:`repro.workloads` — the evaluation suite and microbenchmarks.
- :mod:`repro.eval` — experiment harness reproducing every table/figure.
"""

from repro.arch.config import (
    DispatchConfig,
    DramConfig,
    FabricConfig,
    FeatureFlags,
    LaneConfig,
    MachineConfig,
    NocConfig,
    default_baseline_config,
    default_delta_config,
)
from repro.baseline import StaticParallel
from repro.core import (
    Delta,
    Program,
    ReadSpec,
    RunResult,
    Task,
    TaskContext,
    TaskType,
    WorkHint,
    WriteSpec,
)

__version__ = "0.1.0"

__all__ = [
    "Delta",
    "StaticParallel",
    "Program",
    "Task",
    "TaskType",
    "TaskContext",
    "ReadSpec",
    "WriteSpec",
    "WorkHint",
    "RunResult",
    "MachineConfig",
    "FabricConfig",
    "LaneConfig",
    "NocConfig",
    "DramConfig",
    "DispatchConfig",
    "FeatureFlags",
    "default_delta_config",
    "default_baseline_config",
    "__version__",
]
