"""``repro serve`` — the async multi-tenant sweep server.

Layering: serve sits *above* the evaluation harness (``repro.eval``),
the store, and the metrics bus, and *below* only the CLI. Nothing in the
simulation stack may import it (enforced by ``tools/check_layering.py``).
"""

from repro.serve.app import Server
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobSpec,
    QuotaExceeded,
    ServeError,
    SpecError,
    UnknownJob,
    parse_job_spec,
)
from repro.serve.queue import JobQueue

__all__ = [
    "PROTOCOL_VERSION",
    "JobQueue",
    "JobSpec",
    "QuotaExceeded",
    "ServeError",
    "Server",
    "SpecError",
    "UnknownJob",
    "parse_job_spec",
]
