"""``repro serve`` — the long-running multi-tenant sweep server.

One :class:`Server` composes the whole subsystem:

- an ``asyncio`` socket front-end (:mod:`repro.serve.http`) exposing
  ``POST /jobs``, ``GET /jobs/<id>/events`` (NDJSON stream),
  ``DELETE /jobs/<id>``, and ``GET /healthz``;
- the persistent :class:`~repro.serve.queue.JobQueue` (jobs survive
  restarts in the shared store's ``jobs`` namespace; priorities, tenant
  quotas, fair-share draining);
- the :class:`~repro.serve.executor.JobExecutor`, which fans each claimed
  job out through :mod:`repro.eval.parallel` in a small worker-thread
  pool, coalescing duplicate in-flight sweeps;
- a **watchdog task** that enforces job leases (a crashed or wedged
  worker's job is requeued with backoff, then failed typed once its
  retry budget is spent) and ages terminal job history out of the store;
- one :class:`~repro.machine.metrics.MetricsBus` whose ``cache.*`` group
  is wired into the store/eval-cache, whose ``serve.*`` group counts
  the server's own activity (including ``lease_*`` and ``shed``), and
  whose ``eval.*`` group counts worker-pool health — all reported by
  ``/healthz``.

Threading model: the event loop owns every job's event log (worker
threads publish points via ``call_soon_threadsafe``), the queue is
internally locked, and job computation happens in worker threads so the
loop never blocks on a simulation.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional

from repro.eval.cache import EvalCache
from repro.machine.metrics import MetricsBus
from repro.serve.executor import JobExecutor
from repro.serve.http import Responder, read_request
from repro.serve.protocol import ServeError, UnknownJob
from repro.serve.queue import TERMINAL, Job, JobQueue
from repro.store import open_store

#: How long an idle scheduler/streamer waits before re-polling, seconds.
#: Wake events make the common path prompt; the poll is the safety net.
_POLL_S = 0.1


class Server:
    """The sweep server: queue + executor + HTTP front-end + metrics."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 root: Optional[Path] = None,
                 cache_max_mb: Optional[float] = None,
                 no_cache: bool = False,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 max_active_per_tenant: int = 8,
                 max_concurrent_jobs: int = 2,
                 lease_s: float = 15.0,
                 max_lease_attempts: int = 3,
                 max_queued: Optional[int] = None,
                 max_backlog_per_tenant: Optional[int] = None,
                 job_ttl_s: float = 24 * 3600.0,
                 watchdog_interval_s: float = 0.5,
                 start_paused: bool = False) -> None:
        self.host = host
        self.port = port
        self.bus = MetricsBus()
        self.store = open_store(root, max_mb=cache_max_mb,
                                metrics=self.bus.cache)
        self.queue = JobQueue(store=self.store,
                              max_active_per_tenant=max_active_per_tenant,
                              lease_s=lease_s,
                              max_lease_attempts=max_lease_attempts,
                              max_queued=max_queued,
                              max_backlog_per_tenant=max_backlog_per_tenant,
                              metrics=self.bus.serve)
        self.cache = None if no_cache else EvalCache(store=self.store)
        self.executor = JobExecutor(self.cache, jobs=jobs, timeout=timeout,
                                    heartbeat=self.queue.heartbeat,
                                    job_alive=self.queue.job_alive,
                                    store_metrics=self.bus.cache,
                                    serve_metrics=self.bus.serve,
                                    eval_metrics=self.bus.eval)
        self.max_concurrent_jobs = max_concurrent_jobs
        self.job_ttl_s = job_ttl_s
        self.watchdog_interval_s = watchdog_interval_s
        self.start_paused = start_paused
        #: Set once the socket is bound and ``port`` holds the real port —
        #: a ``threading.Event`` so background-thread servers are awaitable
        #: from the launching thread.
        self.ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: Optional[ThreadPoolExecutor] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._watchdog: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._changed: dict[str, asyncio.Event] = {}
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, replay persisted jobs, start scheduling."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stop_requested = asyncio.Event()
        self._workers = ThreadPoolExecutor(
            max_workers=self.max_concurrent_jobs,
            thread_name_prefix="repro-serve-job")
        self.queue.recover()
        self._server = await asyncio.start_server(self._handle,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if not self.start_paused:
            self._scheduler = self._loop.create_task(self._schedule_loop())
        self._watchdog = self._loop.create_task(self._watchdog_loop())
        self.ready.set()

    def resume(self) -> None:
        """Start claiming jobs on a server created ``start_paused`` —
        thread-safe, so tests drive paused servers from outside the loop."""
        def _go() -> None:
            if self._scheduler is None:
                self._scheduler = self._loop.create_task(
                    self._schedule_loop())
        self._loop.call_soon_threadsafe(_go)

    async def stop(self) -> None:
        """Stop accepting, stop claiming, interrupt running jobs.

        Running jobs get their cancel event but are *not* finished:
        their persisted state stays ``running``, so the next server's
        :meth:`~repro.serve.queue.JobQueue.recover` re-queues them —
        interrupted work is replayed, never lost.
        """
        self._stopping = True
        for attr in ("_scheduler", "_watchdog"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        for job in self.queue.jobs():
            if job.state == "running":
                job.cancel.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._workers is not None:
            # Worker threads see their cancel events within one poll
            # slice; cancel_futures covers claims that never started.
            self._workers.shutdown(wait=True, cancel_futures=True)
            self._workers = None
        self.ready.clear()

    def shutdown(self) -> None:
        """Request a stop from any thread (the test/CLI-facing handle)."""
        if self._loop is not None and self._stop_requested is not None:
            self._loop.call_soon_threadsafe(self._stop_requested.set)

    async def _main(self) -> None:
        await self.start()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(sig, self._stop_requested.set)
            except (NotImplementedError, RuntimeError, ValueError):
                break  # not the main thread (tests) or no signal support
        try:
            await self._stop_requested.wait()
        finally:
            await self.stop()

    def run(self) -> None:
        """Blocking entry point: serve until :meth:`shutdown` (or signal).

        This is what a background test thread and ``repro serve`` both
        call; the CLI additionally installs SIGINT/SIGTERM handlers that
        call :meth:`shutdown`.
        """
        asyncio.run(self._main())

    # -- scheduling ------------------------------------------------------

    async def _schedule_loop(self) -> None:
        slots = asyncio.Semaphore(self.max_concurrent_jobs)
        while True:
            await slots.acquire()
            job = self.queue.claim_next()
            while job is None:
                slots.release()
                try:
                    await asyncio.wait_for(self._wake.wait(), _POLL_S)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
                await slots.acquire()
                job = self.queue.claim_next()
            self._notify(job.id)
            self._loop.create_task(self._run_job(job, slots))

    async def _run_job(self, job: Job, slots: asyncio.Semaphore) -> None:
        # Pin the claim incarnation: if the watchdog revokes this lease
        # and requeues the job while we compute, the stale owner token
        # makes our eventual finish a discarded zombie, not a double
        # completion.
        owner = job.owner
        try:
            def emit(event: dict) -> None:
                # Worker thread -> loop: the loop owns every event log.
                self._loop.call_soon_threadsafe(self._publish, job, event)

            state, error = await self._loop.run_in_executor(
                self._workers, self.executor.run_job, job, emit)
            if not self._stopping:
                self.queue.finish(job.id, state, error, owner=owner)
                self._notify(job.id)
        finally:
            slots.release()
            self._wake.set()

    async def _watchdog_loop(self) -> None:
        """Lease enforcement + terminal-history GC, on one timer.

        Every tick, expired leases are requeued (or retired — see
        :meth:`~repro.serve.queue.JobQueue.expire_leases`); much less
        often, terminal jobs past their TTL are dropped from memory and
        disk. GC cadence is coarse (half the TTL, capped at a minute) —
        the sweep walks the jobs namespace, so it must not run per tick.
        """
        gc_every = max(self.watchdog_interval_s,
                       min(60.0, self.job_ttl_s / 2))
        next_gc = self._loop.time() + gc_every
        while True:
            await asyncio.sleep(self.watchdog_interval_s)
            affected = self.queue.expire_leases()
            for job in affected:
                self._notify(job.id)
            if affected:
                self._wake.set()  # requeued work is claimable now
            if self._loop.time() >= next_gc:
                await self._loop.run_in_executor(
                    None, self.queue.gc_terminal, self.job_ttl_s)
                next_gc = self._loop.time() + gc_every

    def _publish(self, job: Job, event: dict) -> None:
        job.events.append(event)
        self._notify(job.id)

    def _notify(self, job_id: str) -> None:
        changed = self._changed.get(job_id)
        if changed is not None:
            changed.set()

    # -- HTTP ------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        responder = Responder(writer, metrics=self.bus.serve)
        try:
            request = await read_request(reader)
            if request is not None:
                await self._route(request, responder)
        except ServeError as exc:
            if not responder.started:
                await responder.send_error(exc)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            if not responder.started:
                await responder.send_json(
                    500, {"error": {"code": "internal",
                                    "message": f"{type(exc).__name__}: "
                                               f"{exc}"}})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, request, responder: Responder) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                raise ServeError("healthz is GET-only",
                                 code="method-not-allowed")
            await responder.send_json(200, self.healthz())
            return
        if path == "/jobs":
            if method == "POST":
                job = self.queue.submit(request.json())
                self._wake.set()
                await responder.send_json(
                    201, {"job": job.id, "state": job.state,
                          "events": f"/jobs/{job.id}/events"})
                return
            if method == "GET":
                await responder.send_json(
                    200, {"jobs": [j.to_json() for j in self.queue.jobs()]})
                return
            raise ServeError("jobs is GET/POST-only",
                             code="method-not-allowed")
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            job_id = parts[0]
            if len(parts) == 2 and parts[1] == "events" and method == "GET":
                await self._stream_events(job_id, responder)
                return
            if len(parts) == 1 and method == "GET":
                await responder.send_json(200,
                                          self.queue.get(job_id).to_json())
                return
            if len(parts) == 1 and method == "DELETE":
                job = self.queue.request_cancel(job_id)
                self._notify(job.id)
                await responder.send_json(
                    202, {"job": job.id, "state": job.state,
                          "cancel_requested": job.cancel_requested})
                return
        raise UnknownJob(f"no route {method} {request.path}")

    async def _stream_events(self, job_id: str,
                             responder: Responder) -> None:
        """Replay a job's event log, then follow it to the terminal event."""
        job = self.queue.get(job_id)
        changed = self._changed.setdefault(job_id, asyncio.Event())
        await responder.start_stream()
        cursor = 0
        while True:
            while cursor < len(job.events):
                await responder.send_line(job.events[cursor])
                cursor += 1
            if job.state in TERMINAL and cursor >= len(job.events):
                return
            try:
                await asyncio.wait_for(changed.wait(), _POLL_S)
            except asyncio.TimeoutError:
                pass
            changed.clear()

    # -- health ----------------------------------------------------------

    def healthz(self) -> dict:
        """The ``/healthz`` body: queue depths, tenants, cache hit rates."""
        cache = self.bus.cache
        return {
            "status": "ok",
            "queue": self.queue.counts(),
            "tenants": self.queue.tenant_usage(),
            "conservation_ok": self.queue.conservation_ok(),
            "inflight_sweeps": self.executor.coalescer.inflight(),
            "cache": {
                "hits": cache.hits, "misses": cache.misses,
                "stores": cache.stores, "evictions": cache.evictions,
                "coalesced": cache.coalesced, "corrupt": cache.corrupt,
                "lock_waits": cache.lock_waits,
                "hit_rate": cache.hit_rate(),
            },
            "serve": {
                **{name: self.bus.serve.get(name)
                   for name in ("submitted", "started", "completed",
                                "cancelled", "rejected", "failed",
                                "replayed", "coalesced_sweeps", "points",
                                "stream_stalls", "lease_renewals",
                                "lease_expired", "lease_requeued",
                                "lease_failed", "lease_zombie", "shed",
                                "gc_jobs")},
                "queue_wait_s": self.bus.serve.queue_wait_s,
                "mean_queue_wait_s": self.bus.serve.mean_queue_wait_s(),
            },
            "eval": {name: self.bus.eval.get(name)
                     for name in ("worker_deaths", "pool_rebuilds",
                                  "retried_points", "lost_worker_points")},
            "overload": {
                "max_queued": self.queue.max_queued,
                "max_backlog_per_tenant":
                    self.queue.max_backlog_per_tenant,
                "retry_after_s": self.queue.retry_after_s(),
            },
        }
