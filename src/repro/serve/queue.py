"""The persistent, multi-tenant job queue behind ``repro serve``.

One :class:`JobQueue` owns every job the server knows about and is the
single source of truth for the job state machine::

    submit ─┬─> queued ──claim──> running ──finish──> completed | failed
            │      │                  │
            │      └──cancel──────────┴──────────────> cancelled
            └─(quota)────────────────────────────────> rejected

Rejected submissions never enter the queue; cancelling a *queued* job is
immediate, cancelling a *running* job sets its cooperative
``threading.Event`` (the executor propagates it into the in-flight
:mod:`repro.eval.parallel` points) and the job reaches ``cancelled`` when
the worker acknowledges.

**Conservation** is the queue's core invariant, checked under the lock on
every transition and surfaced by ``/healthz``::

    submitted == queued + running + completed + cancelled + failed
                 + rejected

(``submitted`` counts every submission *attempt*, so quota rejections
balance too.) The Hypothesis property test in ``tests/test_serve.py``
drives random submit/claim/cancel/finish interleavings against exactly
this check.

**Scheduling** is priority-first with fair-share draining: the next job
claimed is from the highest priority band with queued work; within the
band, tenants with fewer running jobs win, ties going to the tenant
served least recently, and each tenant's own jobs drain FIFO. A greedy
tenant can saturate its quota, never the queue.

**Persistence**: every accepted job is pickled into the shared
:class:`repro.store.ShardedStore` under the ``jobs`` namespace on each
state transition, so queued work survives a server restart.
:meth:`JobQueue.recover` re-queues persisted ``queued`` *and* ``running``
jobs (a running job at recovery time was interrupted mid-flight) and
keeps terminal jobs loadable for event replay.
"""

from __future__ import annotations

import pickle
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.protocol import (
    JobSpec,
    QuotaExceeded,
    UnknownJob,
    job_event,
    parse_job_spec,
)
from repro.store import ShardedStore
from repro.store.metrics import NULL_METRICS

#: The store namespace persisted jobs live in (alongside eval/structure).
JOBS_NAMESPACE = "jobs"

# Job states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
CANCELLED = "cancelled"
FAILED = "failed"
TERMINAL = frozenset({COMPLETED, CANCELLED, FAILED})


@dataclass
class Job:
    """One tracked job: its spec, its state, and its event log.

    ``cancel`` is the cooperative cancellation handle shared with the
    executor; ``events`` is the NDJSON log streamers replay (appended only
    from the server's event loop, so streamers read it without locking).
    """

    id: str
    spec: JobSpec
    state: str = QUEUED
    error: Optional[str] = None
    cancel_requested: bool = False
    submitted_at: float = 0.0
    events: list = field(default_factory=list)
    cancel: threading.Event = field(default_factory=threading.Event,
                                    repr=False, compare=False)

    def to_json(self) -> dict:
        """The ``GET /jobs/<id>`` body."""
        return {"job": self.id, "state": self.state,
                "cancel_requested": self.cancel_requested,
                "error": self.error, "spec": self.spec.to_json(),
                "events": len(self.events)}


class JobQueue:
    """Thread-safe job registry + scheduler + persistence + accounting."""

    def __init__(self, store: Optional[ShardedStore] = None, *,
                 max_active_per_tenant: int = 8,
                 metrics=NULL_METRICS) -> None:
        self.store = store
        self.max_active_per_tenant = max_active_per_tenant
        self.metrics = metrics
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: FIFO order within a tenant: monotonically increasing per submit.
        self._order: dict[str, int] = {}
        self._seq = 0
        #: Fair-share recency: tenant -> seq of its last claimed job.
        self._served: dict[str, int] = {}
        # The conservation counters (ints, mutated under the lock only).
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.cancelled = 0
        self.failed = 0
        self.replayed = 0

    # -- submission ------------------------------------------------------

    def submit(self, payload: object) -> Job:
        """Validate and enqueue one job; returns the queued :class:`Job`.

        Raises a typed error instead of enqueueing when the spec is
        invalid (:class:`SpecError` — not counted as a submission) or the
        tenant is at its active quota (:class:`QuotaExceeded` — counted
        ``submitted`` *and* ``rejected``, preserving conservation).
        """
        spec = payload if isinstance(payload, JobSpec) \
            else parse_job_spec(payload)
        with self._lock:
            self.submitted += 1
            self.metrics.add("submitted")
            active = self._tenant_active(spec.tenant)
            if active >= self.max_active_per_tenant:
                self.rejected += 1
                self.metrics.add("rejected")
                self._check_conservation()
                raise QuotaExceeded(
                    f"tenant {spec.tenant!r} has {active} active job(s), "
                    f"at its quota of {self.max_active_per_tenant}")
            job = Job(id=uuid.uuid4().hex, spec=spec,
                      submitted_at=time.monotonic())
            self._seq += 1
            self._order[job.id] = self._seq
            self._jobs[job.id] = job
            job.events.append(job_event("queued", job.id, QUEUED,
                                        spec=spec.to_json()))
            self._persist(job)
            self._check_conservation()
            return job

    # -- scheduling ------------------------------------------------------

    def claim_next(self) -> Optional[Job]:
        """Move the next job to ``running`` and return it (None if idle).

        Priority band first; within the band the tenant with the fewest
        running jobs wins, ties broken by least-recently-served, then the
        tenant's own jobs drain FIFO.
        """
        with self._lock:
            queued = [j for j in self._jobs.values() if j.state == QUEUED]
            if not queued:
                return None
            top = max(j.spec.priority for j in queued)
            band = [j for j in queued if j.spec.priority == top]
            running = self._running_by_tenant()
            job = min(band, key=lambda j: (
                running.get(j.spec.tenant, 0),
                self._served.get(j.spec.tenant, -1),
                self._order[j.id]))
            job.state = RUNNING
            self._served[job.spec.tenant] = self._seq
            wait_s = max(time.monotonic() - job.submitted_at, 0.0)
            self.metrics.add("started")
            self.metrics.add("queue_wait_s", wait_s)
            job.events.append(job_event("started", job.id, RUNNING,
                                        queue_wait_s=round(wait_s, 6)))
            self._persist(job)
            self._check_conservation()
            return job

    # -- cancellation ----------------------------------------------------

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a job cooperatively; returns its (possibly new) state.

        Queued jobs cancel immediately; running jobs get their cancel
        event set and transition when the executor acknowledges via
        :meth:`finish`. Cancelling a terminal job is a no-op (idempotent
        DELETE). Unknown ids raise :class:`UnknownJob`.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJob(f"no job {job_id!r}")
            if job.state == QUEUED:
                job.state = CANCELLED
                job.cancel_requested = True
                job.cancel.set()
                self.cancelled += 1
                self.metrics.add("cancelled")
                job.events.append(job_event("done", job.id, CANCELLED))
                self._persist(job)
            elif job.state == RUNNING:
                job.cancel_requested = True
                job.cancel.set()
                self._persist(job)
            self._check_conservation()
            return job

    # -- completion ------------------------------------------------------

    def finish(self, job_id: str, state: str,
               error: Optional[str] = None) -> Job:
        """Retire a running job to a terminal state (executor callback)."""
        assert state in TERMINAL, state
        with self._lock:
            job = self._jobs[job_id]
            assert job.state == RUNNING, (job.state, state)
            job.state = state
            job.error = error
            if state == COMPLETED:
                self.completed += 1
            elif state == CANCELLED:
                self.cancelled += 1
            else:
                self.failed += 1
            self.metrics.add(state)
            event = job_event("done", job.id, state)
            if error is not None:
                event["error"] = error
            job.events.append(event)
            self._persist(job)
            self._check_conservation()
            return job

    # -- lookup / accounting ---------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"no job {job_id!r}")
        return job

    def _tenant_active(self, tenant: str) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.spec.tenant == tenant
                   and j.state in (QUEUED, RUNNING))

    def _running_by_tenant(self) -> dict[str, int]:
        running: dict[str, int] = {}
        for job in self._jobs.values():
            if job.state == RUNNING:
                tenant = job.spec.tenant
                running[tenant] = running.get(tenant, 0) + 1
        return running

    def counts(self) -> dict[str, int]:
        """Every conservation term, as one snapshot under the lock."""
        with self._lock:
            return self._counts_locked()

    def _counts_locked(self) -> dict[str, int]:
        by_state = {QUEUED: 0, RUNNING: 0}
        for job in self._jobs.values():
            if job.state in by_state:
                by_state[job.state] += 1
        return {"submitted": self.submitted, "queued": by_state[QUEUED],
                "running": by_state[RUNNING], "completed": self.completed,
                "cancelled": self.cancelled, "failed": self.failed,
                "rejected": self.rejected, "replayed": self.replayed}

    def tenant_usage(self) -> dict[str, dict[str, int]]:
        """Live per-tenant queue usage for ``/healthz``."""
        with self._lock:
            usage: dict[str, dict[str, int]] = {}
            for job in self._jobs.values():
                if job.state not in (QUEUED, RUNNING):
                    continue
                entry = usage.setdefault(job.spec.tenant,
                                         {"queued": 0, "running": 0})
                entry[job.state] += 1
            for entry in usage.values():
                entry["active"] = entry["queued"] + entry["running"]
            return usage

    def conservation_ok(self) -> bool:
        """``submitted == queued+running+completed+cancelled+failed+rejected``."""
        counts = self.counts()
        return counts["submitted"] == (
            counts["queued"] + counts["running"] + counts["completed"]
            + counts["cancelled"] + counts["failed"] + counts["rejected"])

    def _check_conservation(self) -> None:
        counts = self._counts_locked()
        settled = (counts["queued"] + counts["running"]
                   + counts["completed"] + counts["cancelled"]
                   + counts["failed"] + counts["rejected"])
        assert counts["submitted"] == settled, counts

    # -- persistence -----------------------------------------------------

    def _persist(self, job: Job) -> None:
        if self.store is None:
            return
        payload = pickle.dumps(
            {"id": job.id, "spec": job.spec, "state": job.state,
             "error": job.error, "events": list(job.events)},
            protocol=pickle.HIGHEST_PROTOCOL)
        self.store.write(JOBS_NAMESPACE, job.id, payload)

    def recover(self) -> int:
        """Replay the persisted ``jobs`` namespace after a restart.

        Queued and running records re-enter the queue (a job persisted as
        ``running`` was interrupted mid-flight — it restarts from
        scratch); terminal records stay loadable so clients can still
        stream their event logs. Corrupt records are discarded through the
        store's never-raise path. Returns how many jobs were re-queued.
        """
        if self.store is None:
            return 0
        requeued = 0
        for key, payload in self.store.items(JOBS_NAMESPACE):
            try:
                record = pickle.loads(payload)
                job = Job(id=record["id"], spec=record["spec"],
                          state=record["state"], error=record["error"],
                          events=list(record["events"]))
            except Exception as exc:
                self.store.discard_corrupt(JOBS_NAMESPACE, key, repr(exc))
                continue
            with self._lock:
                if job.id in self._jobs:
                    continue
                if job.state in TERMINAL:
                    # Loadable history; deliberately outside the live
                    # conservation accounting (it balanced last run).
                    self._jobs[job.id] = job
                    continue
                job.state = QUEUED
                job.error = None
                job.submitted_at = time.monotonic()
                job.events.append(job_event("requeued", job.id, QUEUED))
                self.submitted += 1
                self.replayed += 1
                self._seq += 1
                self._order[job.id] = self._seq
                self._jobs[job.id] = job
                self.metrics.add("submitted")
                self.metrics.add("replayed")
                self._persist(job)
                self._check_conservation()
            requeued += 1
        return requeued

    def jobs(self) -> list[Job]:
        """Every known job, newest submission first."""
        with self._lock:
            return sorted(self._jobs.values(),
                          key=lambda j: -self._order.get(j.id, 0))
