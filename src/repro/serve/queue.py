"""The persistent, multi-tenant job queue behind ``repro serve``.

One :class:`JobQueue` owns every job the server knows about and is the
single source of truth for the job state machine::

    submit ─┬─> queued ──claim──> running ──finish──> completed | failed
            │      ▲                  │
            │      ├──cancel──────────┴──────────────> cancelled
            │      └──lease expired (requeue, bounded)─┘
            └─(quota/overload)───────────────────────> rejected

Rejected submissions never enter the queue; cancelling a *queued* job is
immediate, cancelling a *running* job sets its cooperative
``threading.Event`` (the executor propagates it into the in-flight
:mod:`repro.eval.parallel` points) and the job reaches ``cancelled`` when
the worker acknowledges — or when its lease expires, whichever first.

**Leases** make ``running`` crash-safe. Claiming a job stamps it with a
fresh owner token and a lease deadline; the executor heartbeats while it
computes, renewing the lease. A worker that dies (or wedges) stops
heartbeating, the watchdog's :meth:`JobQueue.expire_leases` notices the
deadline pass and requeues the job with exponential, jittered backoff
(``attempts``/``next_eligible_at`` on the record), failing it with a
typed ``lease-expired`` error once the retry budget is spent. Owner
tokens are per-*claim*: a zombie worker finishing after its lease was
revoked presents a stale token and its result is discarded
(``serve.lease_zombie``), never double-counted.

**Conservation** is the queue's core invariant, checked under the lock on
every transition and surfaced by ``/healthz``::

    submitted == queued + running + completed + cancelled + failed
                 + rejected

(``submitted`` counts every submission *attempt*, so quota rejections and
overload sheds balance too.) The Hypothesis property tests in
``tests/test_serve.py`` and ``tests/test_chaos.py`` drive random
submit/claim/cancel/expire/finish interleavings against exactly this
check.

**Overload control**: beyond the per-tenant active quota, an optional
global queue-depth cap and per-tenant backlog cap shed submissions with a
typed 503 (:class:`~repro.serve.protocol.QueueOverloaded`) whose
``Retry-After`` is estimated from the recent drain rate — the queue
refuses to grow without bound instead of absorbing a burst it cannot
serve.

**Scheduling** is priority-first with fair-share draining: the next job
claimed is from the highest priority band with *eligible* queued work
(backoff makes a requeued job temporarily ineligible); within the band,
tenants with fewer running jobs win, ties going to the tenant served
least recently, and each tenant's own jobs drain FIFO. A greedy tenant
can saturate its quota, never the queue.

**Persistence**: every accepted job is pickled into the shared
:class:`repro.store.ShardedStore` under the ``jobs`` namespace on each
state transition, so queued work survives a server restart.
:meth:`JobQueue.recover` re-queues persisted ``queued`` *and* ``running``
jobs (a running job at recovery time was interrupted mid-flight; the
interruption consumes one lease attempt, so a crash *loop* exhausts the
same retry budget a wedged worker would) and keeps terminal jobs loadable
for event replay until :meth:`JobQueue.gc_terminal` ages them out.
"""

from __future__ import annotations

import pickle
import random
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.serve.protocol import (
    JobSpec,
    QueueOverloaded,
    QuotaExceeded,
    UnknownJob,
    job_event,
    parse_job_spec,
)
from repro.store import ShardedStore
from repro.store.metrics import NULL_METRICS

#: The store namespace persisted jobs live in (alongside eval/structure).
JOBS_NAMESPACE = "jobs"

#: Typed error code a job fails with when its retry budget is spent.
LEASE_EXPIRED = "lease-expired"

# Job states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
CANCELLED = "cancelled"
FAILED = "failed"
TERMINAL = frozenset({COMPLETED, CANCELLED, FAILED})

#: Lease-requeue backoff: base * 2^(attempt-1), jittered ±50%, capped.
BACKOFF_BASE_S = 0.5
BACKOFF_CAP_S = 10.0


@dataclass
class Job:
    """One tracked job: its spec, its state, and its event log.

    ``cancel`` is the cooperative cancellation handle shared with the
    executor; ``events`` is the NDJSON log streamers replay (appended only
    from the server's event loop, so streamers read it without locking).
    ``owner`` identifies the current claim *incarnation* — a fresh token
    per claim, so results from a revoked lease are recognisably stale.
    """

    id: str
    spec: JobSpec
    state: str = QUEUED
    error: Optional[str] = None
    error_code: Optional[str] = None
    cancel_requested: bool = False
    submitted_at: float = 0.0
    #: Current lease: claim token + deadline on the queue's clock.
    owner: Optional[str] = None
    lease_expires_at: float = 0.0
    #: How many claims this job has consumed (lease losses + crash
    #: recoveries count; a clean first claim is attempt 0).
    attempts: int = 0
    #: Backoff gate: claim_next skips the job until the clock passes this.
    next_eligible_at: float = 0.0
    #: Wall-clock terminal timestamp, for TTL garbage collection.
    finished_at: Optional[float] = None
    events: list = field(default_factory=list)
    cancel: threading.Event = field(default_factory=threading.Event,
                                    repr=False, compare=False)

    def to_json(self) -> dict:
        """The ``GET /jobs/<id>`` body."""
        return {"job": self.id, "state": self.state,
                "cancel_requested": self.cancel_requested,
                "error": self.error, "error_code": self.error_code,
                "attempts": self.attempts,
                "spec": self.spec.to_json(),
                "events": len(self.events)}


class JobQueue:
    """Thread-safe job registry + scheduler + persistence + accounting."""

    def __init__(self, store: Optional[ShardedStore] = None, *,
                 max_active_per_tenant: int = 8,
                 lease_s: float = 15.0,
                 max_lease_attempts: int = 3,
                 max_queued: Optional[int] = None,
                 max_backlog_per_tenant: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic,
                 metrics=NULL_METRICS) -> None:
        self.store = store
        self.max_active_per_tenant = max_active_per_tenant
        self.lease_s = lease_s
        self.max_lease_attempts = max_lease_attempts
        self.max_queued = max_queued
        self.max_backlog_per_tenant = max_backlog_per_tenant
        #: Injectable monotonic clock — tests drive lease expiry without
        #: sleeping. Persisted timestamps use wall time instead, so GC
        #: works across restarts.
        self.clock = clock
        self.metrics = metrics
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: FIFO order within a tenant: monotonically increasing per submit.
        self._order: dict[str, int] = {}
        self._seq = 0
        #: Fair-share recency: tenant -> seq of its last claimed job.
        self._served: dict[str, int] = {}
        #: Recent terminal-transition times (clock), for drain-rate
        #: estimation behind Retry-After.
        self._finish_times: deque = deque(maxlen=32)
        self._rng = random.Random()
        # The conservation counters (ints, mutated under the lock only).
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.cancelled = 0
        self.failed = 0
        self.replayed = 0

    # -- submission ------------------------------------------------------

    def submit(self, payload: object) -> Job:
        """Validate and enqueue one job; returns the queued :class:`Job`.

        Raises a typed error instead of enqueueing when the spec is
        invalid (:class:`SpecError` — not counted as a submission), the
        tenant is at its active quota (:class:`QuotaExceeded`, 429), or
        the queue/tenant backlog is at capacity
        (:class:`QueueOverloaded`, 503 with a drain-rate ``Retry-After``).
        Quota and overload rejections count ``submitted`` *and*
        ``rejected``, preserving conservation.
        """
        spec = payload if isinstance(payload, JobSpec) \
            else parse_job_spec(payload)
        with self._lock:
            self.submitted += 1
            self.metrics.add("submitted")
            shed = self._overload_reason(spec.tenant)
            if shed is not None:
                self.rejected += 1
                self.metrics.add("rejected")
                self.metrics.add("shed")
                retry_s = self._retry_after_locked()
                self._check_conservation()
                raise QueueOverloaded(shed, retry_after_s=retry_s)
            active = self._tenant_active(spec.tenant)
            if active >= self.max_active_per_tenant:
                self.rejected += 1
                self.metrics.add("rejected")
                self._check_conservation()
                raise QuotaExceeded(
                    f"tenant {spec.tenant!r} has {active} active job(s), "
                    f"at its quota of {self.max_active_per_tenant}")
            job = Job(id=uuid.uuid4().hex, spec=spec,
                      submitted_at=self.clock())
            self._seq += 1
            self._order[job.id] = self._seq
            self._jobs[job.id] = job
            job.events.append(job_event("queued", job.id, QUEUED,
                                        spec=spec.to_json()))
            self._persist(job)
            self._check_conservation()
            return job

    def _overload_reason(self, tenant: str) -> Optional[str]:
        """Why this submission must shed, or None to accept (lock held)."""
        queued = sum(1 for j in self._jobs.values() if j.state == QUEUED)
        if self.max_queued is not None and queued >= self.max_queued:
            return (f"queue is at capacity ({queued} queued, "
                    f"cap {self.max_queued}); retry later")
        if self.max_backlog_per_tenant is not None:
            backlog = sum(1 for j in self._jobs.values()
                          if j.state == QUEUED and j.spec.tenant == tenant)
            if backlog >= self.max_backlog_per_tenant:
                return (f"tenant {tenant!r} backlog is at capacity "
                        f"({backlog} queued, cap "
                        f"{self.max_backlog_per_tenant}); retry later")
        return None

    def _retry_after_locked(self) -> int:
        """Seconds until the queue has likely drained one slot.

        Estimated from the recent terminal-transition rate: with ``n``
        finishes spanning ``dt`` seconds, one more job drains in about
        ``dt/(n-1)`` seconds per queued slot ahead. Clamped to [1, 60];
        5 s when there is no drain history yet.
        """
        if len(self._finish_times) < 2:
            return 5
        span = self._finish_times[-1] - self._finish_times[0]
        if span <= 0:
            return 1
        per_job = span / (len(self._finish_times) - 1)
        depth = sum(1 for j in self._jobs.values() if j.state == QUEUED)
        estimate = per_job * max(depth, 1)
        return max(1, min(60, int(estimate + 0.999)))

    def retry_after_s(self) -> int:
        """Public drain-rate estimate (for ``/healthz`` and tests)."""
        with self._lock:
            return self._retry_after_locked()

    # -- scheduling ------------------------------------------------------

    def claim_next(self, worker: str = "worker") -> Optional[Job]:
        """Move the next job to ``running`` under a fresh lease.

        Returns None when idle (including when every queued job is inside
        its requeue backoff window). Priority band first; within the band
        the tenant with the fewest running jobs wins, ties broken by
        least-recently-served, then the tenant's own jobs drain FIFO.

        The claimed job carries a new ``owner`` token — pass it back to
        :meth:`heartbeat` and :meth:`finish` so a lease revocation makes
        this claim's results recognisably stale.
        """
        with self._lock:
            now = self.clock()
            queued = [j for j in self._jobs.values()
                      if j.state == QUEUED and j.next_eligible_at <= now]
            if not queued:
                return None
            top = max(j.spec.priority for j in queued)
            band = [j for j in queued if j.spec.priority == top]
            running = self._running_by_tenant()
            job = min(band, key=lambda j: (
                running.get(j.spec.tenant, 0),
                self._served.get(j.spec.tenant, -1),
                self._order[j.id]))
            job.state = RUNNING
            job.owner = f"{worker}:{uuid.uuid4().hex[:12]}"
            job.lease_expires_at = now + self.lease_s
            self._served[job.spec.tenant] = self._seq
            wait_s = max(now - job.submitted_at, 0.0)
            self.metrics.add("started")
            self.metrics.add("queue_wait_s", wait_s)
            job.events.append(job_event("started", job.id, RUNNING,
                                        queue_wait_s=round(wait_s, 6),
                                        attempt=job.attempts))
            self._persist(job)
            self._check_conservation()
            return job

    # -- leases ----------------------------------------------------------

    def heartbeat(self, job_id: str, owner: Optional[str]) -> bool:
        """Renew a running job's lease; False if the lease is not ours.

        Thread-safe and event-loop-free: the executor's worker thread
        calls this directly while it computes. A False return tells the
        worker its lease was revoked (expired and requeued, or the job
        was re-claimed) — it should stop; anything it produces now will
        be discarded as a zombie result.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != RUNNING or job.owner != owner:
                return False
            job.lease_expires_at = self.clock() + self.lease_s
            self.metrics.add("lease_renewals")
            return True

    def job_alive(self, job_id: str, owner: Optional[str]) -> bool:
        """Is this claim incarnation still the live owner of the job?

        The coalescer's followers poll this about their leader: once the
        leader's process dies (its lease expires, or the job is requeued
        under a new owner) this flips False and a follower takes over.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            return (job is not None and job.state == RUNNING
                    and job.owner == owner)

    def expire_leases(self) -> list[Job]:
        """Requeue (or retire) every running job whose lease lapsed.

        Called periodically by the server's watchdog. For each expired
        lease: a job whose cancel was already requested retires
        ``cancelled`` (the worker that would have acknowledged is gone);
        a job past the retry budget fails with a typed ``lease-expired``
        error; otherwise the job re-enters the queue with exponential,
        jittered backoff. The stale incarnation's cancel event is set (a
        merely-wedged worker sees it and aborts) and replaced with a
        fresh one for the next claim. Returns the affected jobs so the
        caller can publish their new events.
        """
        affected: list[Job] = []
        with self._lock:
            now = self.clock()
            for job in self._jobs.values():
                if job.state != RUNNING or job.lease_expires_at > now:
                    continue
                self.metrics.add("lease_expired")
                # Stop the (possibly still breathing) stale incarnation.
                stale = job.cancel
                stale.set()
                job.owner = None
                if job.cancel_requested:
                    self._retire_locked(job, CANCELLED)
                    job.events.append(job_event("done", job.id, CANCELLED,
                                                reason=LEASE_EXPIRED))
                elif job.attempts >= self.max_lease_attempts:
                    self.metrics.add("lease_failed")
                    self._retire_locked(
                        job, FAILED,
                        error=(f"lease expired {job.attempts + 1} times; "
                               f"retry budget "
                               f"({self.max_lease_attempts}) spent"),
                        error_code=LEASE_EXPIRED)
                    event = job_event("done", job.id, FAILED,
                                      error=job.error,
                                      error_code=LEASE_EXPIRED)
                    job.events.append(event)
                else:
                    job.attempts += 1
                    backoff = min(BACKOFF_CAP_S,
                                  BACKOFF_BASE_S * 2 ** (job.attempts - 1))
                    backoff *= self._rng.uniform(0.5, 1.5)
                    job.state = QUEUED
                    job.next_eligible_at = now + backoff
                    job.cancel = threading.Event()
                    self.metrics.add("lease_requeued")
                    job.events.append(job_event(
                        "requeued", job.id, QUEUED, reason=LEASE_EXPIRED,
                        attempt=job.attempts, backoff_s=round(backoff, 3)))
                self._persist(job)
                self._check_conservation()
                affected.append(job)
        return affected

    # -- cancellation ----------------------------------------------------

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a job cooperatively; returns its (possibly new) state.

        Queued jobs cancel immediately; running jobs get their cancel
        event set and transition when the executor acknowledges via
        :meth:`finish` — or when the lease expires, if the executor died.
        Cancelling a terminal job is a no-op (idempotent DELETE). Unknown
        ids raise :class:`UnknownJob`.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJob(f"no job {job_id!r}")
            if job.state == QUEUED:
                job.cancel_requested = True
                job.cancel.set()
                self._retire_locked(job, CANCELLED)
                job.events.append(job_event("done", job.id, CANCELLED))
                self._persist(job)
            elif job.state == RUNNING:
                job.cancel_requested = True
                job.cancel.set()
                self._persist(job)
            self._check_conservation()
            return job

    # -- completion ------------------------------------------------------

    def finish(self, job_id: str, state: str, error: Optional[str] = None,
               *, owner: Optional[str] = None,
               error_code: Optional[str] = None) -> Optional[Job]:
        """Retire a running job to a terminal state (executor callback).

        With ``owner`` given, the call only lands if that claim still
        holds the lease; a stale token (the job was requeued or already
        retired by the watchdog) is discarded and counted
        ``serve.lease_zombie`` — the crash-recovery path has taken over
        and this result must not double-count. Returns the job, or None
        for a discarded zombie completion.
        """
        assert state in TERMINAL, state
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != RUNNING or \
                    (owner is not None and job.owner != owner):
                self.metrics.add("lease_zombie")
                return None
            job.owner = None
            self._retire_locked(job, state, error=error,
                                error_code=error_code)
            event = job_event("done", job.id, state)
            if error is not None:
                event["error"] = error
            if error_code is not None:
                event["error_code"] = error_code
            job.events.append(event)
            self._persist(job)
            self._check_conservation()
            return job

    def _retire_locked(self, job: Job, state: str,
                       error: Optional[str] = None,
                       error_code: Optional[str] = None) -> None:
        """Common terminal bookkeeping (lock held, event appended by
        caller so each path can shape its own fields)."""
        job.state = state
        job.error = error
        job.error_code = error_code
        job.finished_at = time.time()
        if state == COMPLETED:
            self.completed += 1
        elif state == CANCELLED:
            self.cancelled += 1
        else:
            self.failed += 1
        self.metrics.add(state)
        self._finish_times.append(self.clock())

    # -- lookup / accounting ---------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"no job {job_id!r}")
        return job

    def _tenant_active(self, tenant: str) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.spec.tenant == tenant
                   and j.state in (QUEUED, RUNNING))

    def _running_by_tenant(self) -> dict[str, int]:
        running: dict[str, int] = {}
        for job in self._jobs.values():
            if job.state == RUNNING:
                tenant = job.spec.tenant
                running[tenant] = running.get(tenant, 0) + 1
        return running

    def counts(self) -> dict[str, int]:
        """Every conservation term, as one snapshot under the lock."""
        with self._lock:
            return self._counts_locked()

    def _counts_locked(self) -> dict[str, int]:
        by_state = {QUEUED: 0, RUNNING: 0}
        for job in self._jobs.values():
            if job.state in by_state:
                by_state[job.state] += 1
        return {"submitted": self.submitted, "queued": by_state[QUEUED],
                "running": by_state[RUNNING], "completed": self.completed,
                "cancelled": self.cancelled, "failed": self.failed,
                "rejected": self.rejected, "replayed": self.replayed}

    def tenant_usage(self) -> dict[str, dict[str, int]]:
        """Live per-tenant queue usage for ``/healthz``."""
        with self._lock:
            usage: dict[str, dict[str, int]] = {}
            for job in self._jobs.values():
                if job.state not in (QUEUED, RUNNING):
                    continue
                entry = usage.setdefault(job.spec.tenant,
                                         {"queued": 0, "running": 0})
                entry[job.state] += 1
            for entry in usage.values():
                entry["active"] = entry["queued"] + entry["running"]
            return usage

    def conservation_ok(self) -> bool:
        """``submitted == queued+running+completed+cancelled+failed+rejected``."""
        counts = self.counts()
        return counts["submitted"] == (
            counts["queued"] + counts["running"] + counts["completed"]
            + counts["cancelled"] + counts["failed"] + counts["rejected"])

    def _check_conservation(self) -> None:
        counts = self._counts_locked()
        settled = (counts["queued"] + counts["running"]
                   + counts["completed"] + counts["cancelled"]
                   + counts["failed"] + counts["rejected"])
        assert counts["submitted"] == settled, counts

    # -- persistence -----------------------------------------------------

    def _persist(self, job: Job) -> None:
        if self.store is None:
            return
        payload = pickle.dumps(
            {"id": job.id, "spec": job.spec, "state": job.state,
             "error": job.error, "error_code": job.error_code,
             "attempts": job.attempts, "finished_at": job.finished_at,
             "events": list(job.events)},
            protocol=pickle.HIGHEST_PROTOCOL)
        self.store.write(JOBS_NAMESPACE, job.id, payload)

    def recover(self) -> int:
        """Replay the persisted ``jobs`` namespace after a restart.

        Queued and running records re-enter the queue; terminal records
        stay loadable so clients can still stream their event logs. A
        record persisted as ``running`` was interrupted mid-flight — the
        interruption consumes one lease attempt, so a server that crash-
        loops on the same job eventually retires it ``failed`` with the
        same typed ``lease-expired`` error a wedged worker earns, instead
        of recomputing it forever. Corrupt records are discarded through
        the store's never-raise path. Returns how many jobs re-entered
        the live queue (including ones retired on arrival).
        """
        if self.store is None:
            return 0
        requeued = 0
        for key, payload in self.store.items(JOBS_NAMESPACE):
            try:
                record = pickle.loads(payload)
                job = Job(id=record["id"], spec=record["spec"],
                          state=record["state"], error=record["error"],
                          error_code=record.get("error_code"),
                          attempts=record.get("attempts", 0),
                          finished_at=record.get("finished_at"),
                          events=list(record["events"]))
            except Exception as exc:
                self.store.discard_corrupt(JOBS_NAMESPACE, key, repr(exc))
                continue
            with self._lock:
                if job.id in self._jobs:
                    continue
                if job.state in TERMINAL:
                    # Loadable history; deliberately outside the live
                    # conservation accounting (it balanced last run).
                    if job.finished_at is None:
                        job.finished_at = time.time()
                    self._jobs[job.id] = job
                    continue
                interrupted = job.state == RUNNING
                if interrupted:
                    job.attempts += 1
                job.error = None
                job.error_code = None
                job.owner = None
                job.submitted_at = self.clock()
                self.submitted += 1
                self.replayed += 1
                self._seq += 1
                self._order[job.id] = self._seq
                self._jobs[job.id] = job
                self.metrics.add("submitted")
                self.metrics.add("replayed")
                if interrupted and job.attempts > self.max_lease_attempts:
                    # The crash loop spent the whole retry budget.
                    self.metrics.add("lease_failed")
                    self._retire_locked(
                        job, FAILED,
                        error=(f"interrupted {job.attempts} times; retry "
                               f"budget ({self.max_lease_attempts}) "
                               "spent"),
                        error_code=LEASE_EXPIRED)
                    job.events.append(job_event("done", job.id, FAILED,
                                                error=job.error,
                                                error_code=LEASE_EXPIRED))
                else:
                    job.state = QUEUED
                    job.events.append(job_event(
                        "requeued", job.id, QUEUED,
                        reason="recovered", attempt=job.attempts))
                self._persist(job)
                self._check_conservation()
            requeued += 1
        return requeued

    # -- garbage collection ----------------------------------------------

    def gc_terminal(self, ttl_s: float) -> int:
        """Drop terminal jobs older than ``ttl_s`` (memory *and* store).

        Live (queued/running) records are never touched — they are also
        exempt from the store's LRU budget sweep — so history TTL is the
        only way job records leave disk. Returns how many in-memory
        records were dropped; the on-disk sweep runs through
        :meth:`ShardedStore.sweep_aged` with live ids shielded.
        """
        cutoff = time.time() - ttl_s
        with self._lock:
            dead = [j.id for j in self._jobs.values()
                    if j.state in TERMINAL
                    and (j.finished_at or 0.0) < cutoff]
            for job_id in dead:
                del self._jobs[job_id]
                self._order.pop(job_id, None)
            if dead:
                self.metrics.add("gc_jobs", len(dead))
            live = {j.id for j in self._jobs.values()
                    if j.state not in TERMINAL}
        if self.store is not None:
            self.store.sweep_aged(ttl_s, namespace=JOBS_NAMESPACE,
                                  exempt=live)
        return len(dead)

    def jobs(self) -> list[Job]:
        """Every known job, newest submission first."""
        with self._lock:
            return sorted(self._jobs.values(),
                          key=lambda j: -self._order.get(j.id, 0))


# -- offline inspection (no server required) -----------------------------

def scan_jobs(store: ShardedStore) -> Iterator[dict]:
    """Yield a summary dict per persisted job record, corrupt ones skipped.

    Powers ``repro jobs list`` — reads the ``jobs`` namespace directly, so
    operators can inspect (and then prune) history while the server is
    down.
    """
    for key, payload in store.items(JOBS_NAMESPACE):
        try:
            record = pickle.loads(payload)
            spec: JobSpec = record["spec"]
            yield {"job": record["id"], "state": record["state"],
                   "tenant": spec.tenant, "kind": spec.kind,
                   "workloads": list(spec.workloads),
                   "attempts": record.get("attempts", 0),
                   "error": record["error"],
                   "error_code": record.get("error_code"),
                   "finished_at": record.get("finished_at"),
                   "events": len(record["events"])}
        except Exception:
            yield {"job": key, "state": "corrupt", "tenant": None,
                   "kind": None, "workloads": [], "attempts": 0,
                   "error": "unreadable record", "error_code": "corrupt",
                   "finished_at": None, "events": 0}


def gc_jobs(store: ShardedStore, older_than_s: float) -> int:
    """Prune terminal job records older than the cutoff; returns count.

    Live (queued/running) records are shielded regardless of age — a
    server may be down for longer than the TTL and still owes its clients
    that queued work on the next start.
    """
    live = set()
    for summary in scan_jobs(store):
        if summary["state"] in (QUEUED, RUNNING):
            live.add(summary["job"])
    return store.sweep_aged(older_than_s, namespace=JOBS_NAMESPACE,
                            exempt=live)
