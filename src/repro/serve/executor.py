"""Runs one job's sweep through the evaluation harness, streaming points.

The executor is the bridge between the server's job model and the PR 1-8
harness stack:

- each point runs through :func:`repro.eval.parallel.run_suite_parallel`
  — the same multiprocessing fan-out, per-point timeouts, and on-disk
  :class:`~repro.eval.cache.EvalCache` the CLI uses — with the job's
  cooperative cancel event and a progress callback that emits one NDJSON
  ``point`` event as each point lands;
- *duplicate in-flight sweeps* coalesce through one shared
  :class:`repro.store.Coalescer` keyed by :meth:`JobSpec.sweep_key`: the
  first job computes, concurrent identical jobs block on the leader and
  replay its per-point results with outcome ``"coalesced"`` — exactly one
  computation per distinct sweep reaches the pool, proven by the
  ``cache.coalesced`` counter;
- a leader that is *cancelled* mid-flight poisons its followers with
  :class:`SweepCancelled`; a follower that was not itself cancelled
  retries (becoming the new leader), so one tenant's DELETE can never
  cancel another tenant's identical job.

The executor runs in worker threads (the server's event loop stays free
for sockets); ``emit`` callbacks must therefore be thread-safe — the
server passes a ``loop.call_soon_threadsafe`` trampoline.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.arch.config import default_delta_config
from repro.eval.cache import EvalCache
from repro.eval.parallel import run_suite_parallel
from repro.serve.protocol import point_event
from repro.serve.queue import CANCELLED, COMPLETED, FAILED, Job
from repro.store import Coalescer
from repro.store.metrics import NULL_METRICS


class SweepCancelled(Exception):
    """The sweep's leader was cancelled before finishing.

    Raised out of the leader's compute so the :class:`~repro.store
    .Coalescer` propagates it to every follower of the same sweep key;
    followers that are still alive retry as the new leader.
    """


class JobExecutor:
    """Executes jobs against the harness; shared by all worker threads."""

    def __init__(self, cache: Optional[EvalCache] = None, *,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 store_metrics=NULL_METRICS,
                 serve_metrics=NULL_METRICS) -> None:
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        self.serve_metrics = serve_metrics
        #: Sweep-level single flight: identical in-flight jobs share one
        #: computation (counted on the shared ``cache.coalesced`` metric).
        self.coalescer = Coalescer(metrics=store_metrics)

    def run_job(self, job: Job,
                emit: Callable[[dict], None]) -> tuple[str, Optional[str]]:
        """Run one claimed job to a terminal state; returns (state, error).

        Never raises: simulation failures become ``("failed", message)``
        so the server's scheduler loop cannot be killed by a bad spec or
        a workload that fails verification.
        """
        while True:
            try:
                leader_id, events = self.coalescer.run(
                    job.spec.sweep_key(),
                    lambda: self._compute_sweep(job, emit))
            except SweepCancelled:
                if job.cancel.is_set():
                    return CANCELLED, None
                # Our leader died cancelled but *we* were not cancelled:
                # go round again and compute the sweep ourselves.
                continue
            except Exception as exc:  # noqa: BLE001 - the job, not us
                return FAILED, f"{type(exc).__name__}: {exc}"
            if leader_id == job.id:
                # We were the leader; events already streamed live.
                return COMPLETED, None
            if job.cancel.is_set():
                return CANCELLED, None
            # Follower: replay the leader's per-point results under the
            # coalesced outcome — same numbers, zero simulations.
            self.serve_metrics.add("coalesced_sweeps")
            for event in events:
                replay = dict(event)
                if replay.get("outcome") != "cancelled":
                    replay["outcome"] = "coalesced"
                emit(replay)
                self.serve_metrics.add("points")
            return COMPLETED, None

    def _compute_sweep(self, job: Job,
                       emit: Callable[[dict], None]) -> tuple[str, list]:
        """Leader path: actually run the sweep, emitting live points.

        Returns ``(leader job id, point events)`` so followers can both
        recognise they coalesced and replay the event log.
        """
        from repro.workloads import get_workload

        spec = job.spec
        workloads = [get_workload(name) for name in spec.workloads]
        delta_config = default_delta_config(lanes=spec.lanes,
                                            seed=spec.seed)
        delta_config = delta_config.with_policy(spec.policy)
        events: list = []

        def on_result(index: int, comparison, outcome: str) -> None:
            event = point_event(index, comparison, outcome)
            events.append(event)
            emit(event)
            self.serve_metrics.add("points")

        run_suite_parallel(lanes=spec.lanes, workloads=workloads,
                           jobs=self.jobs, verify=spec.verify,
                           timeout=self.timeout, cache=self.cache,
                           delta_config=delta_config,
                           sanitize=spec.sanitize,
                           cancel=job.cancel, on_result=on_result)
        if job.cancel.is_set():
            raise SweepCancelled(job.id)
        return job.id, events
