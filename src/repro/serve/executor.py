"""Runs one job's sweep through the evaluation harness, streaming points.

The executor is the bridge between the server's job model and the PR 1-8
harness stack:

- each point runs through :func:`repro.eval.parallel.run_suite_parallel`
  — the same multiprocessing fan-out, per-point timeouts, and on-disk
  :class:`~repro.eval.cache.EvalCache` the CLI uses — with the job's
  cooperative cancel event and a progress callback that emits one NDJSON
  ``point`` event as each point lands;
- *duplicate in-flight sweeps* coalesce through one shared
  :class:`repro.store.Coalescer` keyed by :meth:`JobSpec.sweep_key`: the
  first job computes, concurrent identical jobs block on the leader and
  replay its per-point results with outcome ``"coalesced"`` — exactly one
  computation per distinct sweep reaches the pool, proven by the
  ``cache.coalesced`` counter;
- a leader that is *cancelled* mid-flight poisons its followers with
  :class:`SweepCancelled`; a follower that was not itself cancelled
  retries (becoming the new leader), so one tenant's DELETE can never
  cancel another tenant's identical job;
- a leader that *dies* (worker thread wedged, lease revoked) is detected
  through the queue's lease machinery: followers poll
  ``job_alive(leader_job, leader_owner)`` while they wait, and once the
  leader's lease lapses a follower unseats it in the coalescer and
  computes the sweep itself — no follower ever waits forever on a corpse.

While computing (and while waiting as a follower) the executor heartbeats
the job's lease through the ``heartbeat`` hook, so only a genuinely dead
or wedged worker loses its claim.

The executor runs in worker threads (the server's event loop stays free
for sockets); ``emit`` callbacks must therefore be thread-safe — the
server passes a ``loop.call_soon_threadsafe`` trampoline.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.arch.config import default_delta_config
from repro.eval.cache import EvalCache
from repro.eval.parallel import run_suite_parallel
from repro.serve.protocol import point_event
from repro.serve.queue import CANCELLED, COMPLETED, FAILED, Job
from repro.store import Coalescer
from repro.store.metrics import NULL_METRICS

#: How often a coalesced follower re-checks its leader's pulse, seconds.
FOLLOWER_POLL_S = 0.25


class SweepCancelled(Exception):
    """The sweep's leader was cancelled before finishing.

    Raised out of the leader's compute so the :class:`~repro.store
    .Coalescer` propagates it to every follower of the same sweep key;
    followers that are still alive retry as the new leader.
    """


class JobExecutor:
    """Executes jobs against the harness; shared by all worker threads."""

    def __init__(self, cache: Optional[EvalCache] = None, *,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 heartbeat: Optional[Callable[[str, Optional[str]],
                                              bool]] = None,
                 job_alive: Optional[Callable[[str, Optional[str]],
                                              bool]] = None,
                 follower_poll_s: float = FOLLOWER_POLL_S,
                 store_metrics=NULL_METRICS,
                 serve_metrics=NULL_METRICS,
                 eval_metrics=NULL_METRICS) -> None:
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        #: Lease hooks, wired to the server's queue (None standalone):
        #: ``heartbeat(job_id, owner)`` renews our claim while we work;
        #: ``job_alive(job_id, owner)`` asks whether a *leader's* claim
        #: still stands, bounding how long followers wait on it.
        self.heartbeat = heartbeat
        self.job_alive = job_alive
        self.follower_poll_s = follower_poll_s
        self.serve_metrics = serve_metrics
        self.eval_metrics = eval_metrics
        #: Sweep-level single flight: identical in-flight jobs share one
        #: computation (counted on the shared ``cache.coalesced`` metric).
        self.coalescer = Coalescer(metrics=store_metrics)
        #: sweep_key -> (job id, owner token) of the current leader, so
        #: followers know whose lease to watch.
        self._leaders: dict[str, tuple[str, Optional[str]]] = {}
        self._leaders_lock = threading.Lock()

    def run_job(self, job: Job,
                emit: Callable[[dict], None]) -> tuple[str, Optional[str]]:
        """Run one claimed job to a terminal state; returns (state, error).

        Never raises: simulation failures become ``("failed", message)``
        so the server's scheduler loop cannot be killed by a bad spec or
        a workload that fails verification.
        """
        # Pin this claim incarnation. A lease revocation swaps the Job's
        # cancel event for a fresh one; we must keep acting on *ours* so
        # the new incarnation is undisturbed by its zombie predecessor.
        cancel = job.cancel
        owner = job.owner
        key = job.spec.sweep_key()

        def pulse() -> None:
            if self.heartbeat is not None:
                self.heartbeat(job.id, owner)

        def leader_abandoned() -> bool:
            # Runs once per follower poll slice: keep our own lease warm,
            # bail out if we were cancelled, and take over if the
            # leader's claim is gone.
            pulse()
            if cancel.is_set():
                return True
            if self.job_alive is None:
                return False
            with self._leaders_lock:
                leader = self._leaders.get(key)
            if leader is None or leader[0] == job.id:
                return False
            return not self.job_alive(*leader)

        while True:
            try:
                leader_id, events = self.coalescer.run(
                    key,
                    lambda: self._compute_sweep(job, owner, cancel, emit),
                    poll_s=self.follower_poll_s,
                    abandoned=leader_abandoned)
            except SweepCancelled:
                if cancel.is_set():
                    return CANCELLED, None
                # Our leader died cancelled but *we* were not cancelled:
                # go round again and compute the sweep ourselves.
                continue
            except Exception as exc:  # noqa: BLE001 - the job, not us
                return FAILED, f"{type(exc).__name__}: {exc}"
            if leader_id == job.id:
                # We were the leader; events already streamed live.
                return COMPLETED, None
            if cancel.is_set():
                return CANCELLED, None
            # Follower: replay the leader's per-point results under the
            # coalesced outcome — same numbers, zero simulations.
            self.serve_metrics.add("coalesced_sweeps")
            for event in events:
                replay = dict(event)
                if replay.get("outcome") != "cancelled":
                    replay["outcome"] = "coalesced"
                emit(replay)
                self.serve_metrics.add("points")
            return COMPLETED, None

    def _compute_sweep(self, job: Job, owner: Optional[str],
                       cancel: threading.Event,
                       emit: Callable[[dict], None]) -> tuple[str, list]:
        """Leader path: actually run the sweep, emitting live points.

        Returns ``(leader job id, point events)`` so followers can both
        recognise they coalesced and replay the event log.
        """
        from repro.workloads import get_workload

        spec = job.spec
        key = spec.sweep_key()
        with self._leaders_lock:
            self._leaders[key] = (job.id, owner)
        try:
            workloads = [get_workload(name) for name in spec.workloads]
            delta_config = default_delta_config(lanes=spec.lanes,
                                                seed=spec.seed)
            delta_config = delta_config.with_policy(spec.policy)
            events: list = []

            def on_result(index: int, comparison, outcome: str) -> None:
                event = point_event(index, comparison, outcome)
                events.append(event)
                emit(event)
                self.serve_metrics.add("points")

            def pulse() -> None:
                if self.heartbeat is not None:
                    self.heartbeat(job.id, owner)

            run_suite_parallel(lanes=spec.lanes, workloads=workloads,
                               jobs=self.jobs, verify=spec.verify,
                               timeout=self.timeout, cache=self.cache,
                               delta_config=delta_config,
                               sanitize=spec.sanitize,
                               cancel=cancel, on_result=on_result,
                               heartbeat=pulse,
                               metrics=self.eval_metrics)
            if cancel.is_set():
                raise SweepCancelled(job.id)
            return job.id, events
        finally:
            with self._leaders_lock:
                # A takeover may have installed a new leader while we
                # wedged; never evict a successor's registration.
                if self._leaders.get(key) == (job.id, owner):
                    del self._leaders[key]
