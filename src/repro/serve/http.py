"""A deliberately small HTTP/1.1 layer over ``asyncio`` streams.

``repro serve`` speaks just enough HTTP for its four endpoints — no
third-party framework, no stdlib ``http.server`` (it is thread-per-
connection and cannot stream from an event loop). One request per
connection: every response carries ``Connection: close``, which keeps the
parser trivial and makes NDJSON streaming natural (the stream ends when
the socket closes — any HTTP client can consume it).

The module knows nothing about jobs: it parses :class:`Request` objects,
and writes JSON or NDJSON responses through :class:`Responder`. Routing
lives in :mod:`repro.serve.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.protocol import ServeError
from repro.store.metrics import NULL_METRICS

#: Refuse absurd request bodies before buffering them (1 MiB is roomy for
#: a sweep spec; a million-point sweep is a workloads list, not a payload).
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {200: "OK", 201: "Created", 202: "Accepted",
            400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class ProtocolError(ServeError):
    """The request never parsed as HTTP (or blew a size limit)."""

    code = "bad-request"
    status = 400


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON, as a typed error on failure."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}",
                                code="bad-json") from None


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; None on a cleanly closed socket.

    Raises :class:`ProtocolError` on garbage — the caller answers 400 and
    closes, which is all a one-request-per-connection server owes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client connected and went away: not an error
        raise ProtocolError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError("request body too large",
                                code="body-too-large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError("truncated request body") from None
    return Request(method=method, path=path, headers=headers, body=body)


class Responder:
    """Writes exactly one response (JSON document or NDJSON stream)."""

    def __init__(self, writer: asyncio.StreamWriter,
                 metrics=NULL_METRICS) -> None:
        self.writer = writer
        self.metrics = metrics
        self.started = False

    def _head(self, status: int, content_type: str) -> bytes:
        self.started = True
        return (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")

    async def send_json(self, status: int, payload: object,
                        headers: Optional[dict[str, str]] = None) -> None:
        """One complete JSON response."""
        body = (json.dumps(payload) + "\n").encode("utf-8")
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in (headers or {}).items())
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n").encode("latin-1")
        self.started = True
        self.writer.write(head + body)
        await self.writer.drain()

    async def send_error(self, error: ServeError) -> None:
        headers = None
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            headers = {"Retry-After": str(int(retry_after))}
        await self.send_json(error.status, error.to_json(), headers=headers)

    async def start_stream(self, status: int = 200) -> None:
        """Open an NDJSON stream (ends when the connection closes)."""
        self.writer.write(self._head(status, "application/x-ndjson"))
        await self.writer.drain()

    async def send_line(self, event: dict) -> None:
        """One NDJSON line, with backpressure accounting.

        ``drain()`` suspends when the client reads slower than points
        land; a write that finds the previous one still buffered counts a
        ``serve.stream_stalls`` metric before waiting it out.
        """
        transport = self.writer.transport
        if transport is not None and transport.get_write_buffer_size() > 0:
            self.metrics.add("stream_stalls")
        self.writer.write((json.dumps(event) + "\n").encode("utf-8"))
        await self.writer.drain()
