"""The sweep server's wire schema: job specs, typed errors, event shapes.

Everything that crosses the socket is JSON. A *job spec* is what a client
POSTs to ``/jobs``; this module validates it into a frozen
:class:`JobSpec` whose :meth:`JobSpec.sweep_key` identifies the
*computation* (workloads × machine configuration), deliberately excluding
tenant and priority so two tenants submitting the same sweep coalesce
onto one execution.

Errors the server must reject are :class:`ServeError` instances carrying
a stable machine-readable ``code`` and the HTTP status the front-end maps
them to — clients branch on the code, humans read the message.

Events are plain dicts streamed as NDJSON (one JSON object per line) from
``GET /jobs/<id>/events``; the builders here are the single source of
their field names, shared by the executor (which emits them) and the test
battery (which asserts them). See ``docs/serving.md`` for the schema.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional

from repro.store import stable_hash

#: Bump when the persisted job layout or the event schema changes.
#: v2: job records grew lease fields (owner, attempts, next_eligible_at,
#: finished_at) and typed error codes on ``failed`` events.
PROTOCOL_VERSION = 2


# -- typed errors -----------------------------------------------------------

class ServeError(ValueError):
    """A request the server refuses, with a stable machine-readable code."""

    #: Machine-readable error identifier (kebab-case, stable across PRs).
    code = "bad-request"
    #: HTTP status the front-end responds with.
    status = 400

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code

    def to_json(self) -> dict:
        """The typed error body every non-2xx response carries."""
        return {"error": {"code": self.code, "message": str(self)}}


class SpecError(ServeError):
    """The job spec failed validation (malformed JSON, unknown workload)."""

    code = "bad-spec"
    status = 400


class QuotaExceeded(ServeError):
    """The tenant is at its active-job quota; the submission was rejected."""

    code = "quota-exceeded"
    status = 429


class QueueOverloaded(ServeError):
    """The server is shedding load: the global queue (or this tenant's
    backlog) is at capacity. Carries a ``Retry-After`` hint, in seconds,
    derived from the queue's recent drain rate."""

    code = "overloaded"
    status = 503

    def __init__(self, message: str, retry_after_s: int = 5) -> None:
        super().__init__(message)
        self.retry_after_s = max(1, int(retry_after_s))

    def to_json(self) -> dict:
        body = super().to_json()
        body["error"]["retry_after_s"] = self.retry_after_s
        return body


class UnknownJob(ServeError):
    """No job with the requested id (live or persisted)."""

    code = "unknown-job"
    status = 404


# -- job specs --------------------------------------------------------------

def _sanitize_default() -> bool:
    """Honour ``REPRO_SANITIZE`` like the CLI does (without importing the
    simulation stack — serve sits above it only through the harness)."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on")


@dataclass(frozen=True)
class JobSpec:
    """One validated sweep/compare request.

    ``kind`` is ``"sweep"`` (a list of workloads) or ``"compare"`` (one
    workload) — both run through the same per-point machinery; the kinds
    exist so clients can say what they mean. Tenant and priority describe
    *who* is asking and how urgently, never *what* is computed.
    """

    kind: str
    workloads: tuple[str, ...]
    lanes: int = 8
    policy: str = "work-aware"
    seed: int = 0
    verify: bool = True
    sanitize: bool = False
    tenant: str = "default"
    priority: int = 0

    def sweep_key(self) -> str:
        """Identity of the computation, for in-flight sweep coalescing.

        Excludes tenant and priority: identical sweeps from different
        tenants are the same work and must compute once.
        """
        return stable_hash("serve-sweep", PROTOCOL_VERSION, self.workloads,
                           self.lanes, self.policy, self.seed, self.verify,
                           self.sanitize)

    def to_json(self) -> dict:
        return {"kind": self.kind, "workloads": list(self.workloads),
                "lanes": self.lanes, "policy": self.policy,
                "seed": self.seed, "verify": self.verify,
                "sanitize": self.sanitize, "tenant": self.tenant,
                "priority": self.priority}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def parse_job_spec(payload: object) -> JobSpec:
    """Validate a decoded ``POST /jobs`` body into a :class:`JobSpec`.

    Raises :class:`SpecError` naming the offending field; unknown fields
    are rejected too, so a typoed option fails loudly instead of being
    silently ignored.
    """
    from repro.workloads.registry import workload_names

    _require(isinstance(payload, dict), "job spec must be a JSON object")
    known = {"kind", "workload", "workloads", "lanes", "policy", "seed",
             "verify", "sanitize", "tenant", "priority"}
    unknown = sorted(set(payload) - known)
    _require(not unknown, f"unknown spec field(s): {', '.join(unknown)}")

    kind = payload.get("kind", "sweep")
    _require(kind in ("sweep", "compare"),
             f"kind must be 'sweep' or 'compare', not {kind!r}")
    if kind == "compare":
        _require("workloads" not in payload,
                 "a compare spec names one 'workload', not 'workloads'")
        names = [payload.get("workload")]
    else:
        _require("workload" not in payload,
                 "a sweep spec names a 'workloads' list, not 'workload'")
        names = payload.get("workloads")
    _require(isinstance(names, list) and names,
             "spec must name at least one workload")
    _require(all(isinstance(n, str) for n in names),
             "workload names must be strings")
    registered = set(workload_names())
    missing = sorted(set(names) - registered)
    _require(not missing, f"unknown workload(s): {', '.join(missing)}")

    lanes = payload.get("lanes", 8)
    _require(isinstance(lanes, int) and not isinstance(lanes, bool)
             and lanes > 0, "lanes must be a positive integer")
    seed = payload.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             "seed must be an integer")
    priority = payload.get("priority", 0)
    _require(isinstance(priority, int) and not isinstance(priority, bool),
             "priority must be an integer")
    tenant = payload.get("tenant", "default")
    _require(isinstance(tenant, str) and tenant.strip(),
             "tenant must be a non-empty string")
    for flag in ("verify", "sanitize"):
        if flag in payload:
            _require(isinstance(payload[flag], bool),
                     f"{flag} must be a boolean")

    policy = payload.get("policy", "work-aware")
    _require(isinstance(policy, str), "policy must be a string")
    _validate_policy(policy)

    return JobSpec(kind=kind, workloads=tuple(names), lanes=lanes,
                   policy=policy, seed=seed,
                   verify=payload.get("verify", True),
                   sanitize=payload.get("sanitize", _sanitize_default()),
                   tenant=tenant.strip(), priority=priority)


def _validate_policy(policy: str) -> None:
    """Reject unknown dispatch policies with a typed error.

    Validation goes through :class:`~repro.arch.config.MachineConfig` so
    serve never imports the sched registry directly — the config layer's
    lazy registry lookup is the one sanctioned down-reference.
    """
    from repro.arch.config import default_delta_config

    try:
        default_delta_config().with_policy(policy)
    except ValueError as exc:
        raise SpecError(str(exc), code="unknown-policy") from None


# -- events -----------------------------------------------------------------

def _finite(value: float) -> Optional[float]:
    """JSON has no Infinity/NaN; report unbounded ratios as null."""
    return value if math.isfinite(value) else None


def job_event(kind: str, job_id: str, state: str, **fields) -> dict:
    """A job-lifecycle event line (``queued``/``started``/``done``...)."""
    event = {"event": kind, "job": job_id, "state": state}
    event.update(fields)
    return event


def point_event(index: int, comparison, outcome: str) -> dict:
    """One per-point NDJSON line: outcome plus the typed metrics clients
    chart without re-deriving them from raw counters.

    ``comparison`` is ``None`` for points that never computed (cancelled
    mid-flight); the line then carries only the index and outcome.
    """
    event: dict = {"event": "point", "index": index, "outcome": outcome}
    if comparison is None:
        return event
    event.update({
        "workload": comparison.workload,
        "delta_cycles": comparison.delta.cycles,
        "static_cycles": comparison.static.cycles,
        "speedup": _finite(comparison.speedup),
        "traffic_ratio": _finite(comparison.traffic_ratio),
        "lanes": comparison.lanes,
        "metrics": {
            "delta_dram_bytes": comparison.delta.dram_bytes,
            "static_dram_bytes": comparison.static.dram_bytes,
            "delta_noc_bytes": comparison.delta.noc_bytes,
            "static_noc_bytes": comparison.static.noc_bytes,
            "delta_imbalance_cv": comparison.delta.imbalance_cv,
            "static_imbalance_cv": comparison.static.imbalance_cv,
            "tasks_executed": comparison.delta.tasks_executed,
        },
    })
    return event
