"""Workload registry: name -> factory for the evaluation suite.

``all_workloads()`` returns the ten-paper-workload suite at "evaluation"
sizes (see DESIGN.md section 5). ``get_workload(name)`` builds one by name.
Synthetic microbenchmarks are registered too (prefixed ``micro-``) so the
sensitivity benches can use the same entry point.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Workload

_REGISTRY: dict[str, Callable[[], Workload]] = {}


def register(name: str, factory: Callable[[], Workload]) -> None:
    """Add a workload factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def get_workload(name: str) -> Workload:
    """Instantiate a registered workload."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def workload_names() -> list[str]:
    """All registered names, evaluation suite first."""
    return sorted(_REGISTRY)


def all_workloads() -> list[Workload]:
    """The paper-evaluation suite (excludes ``micro-*`` microbenchmarks
    and ``ext-*`` extended workloads, keeping F1 comparable across
    runs)."""
    return [factory() for name, factory in sorted(_REGISTRY.items())
            if not name.startswith(("micro-", "ext-"))]


def _register_builtin() -> None:
    from repro.workloads import synthetic

    register("micro-uniform", synthetic.UniformTasks)
    register("micro-skewed", synthetic.SkewedTasks)
    register("micro-shared", synthetic.SharedReadTasks)
    register("micro-chain", synthetic.ChainTasks)
    register("micro-tree", synthetic.SpawnTree)
    register("micro-thrash", synthetic.ConfigThrash)

    # Extended-suite workloads (beyond the core ten; see DESIGN.md).
    from repro.workloads.pagerank import PagerankWorkload
    from repro.workloads.spgemm import SpgemmWorkload

    register("ext-spgemm", SpgemmWorkload)
    register("ext-pagerank", PagerankWorkload)

    # The evaluation suite registers lazily so importing the registry does
    # not pull every workload module (and its input generators) eagerly.
    from repro.workloads import suite

    suite.register_all(register)


_register_builtin()
