"""Mergesort: a recursive task tree with pipelined merge stages.

Structure exercised: **task trees** (the classic task-parallel shape the
paper's intro motivates) and **pipelined inter-task dependences** — every
merge consumes its two children's output *streams*, so with TaskStream the
merge tree operates as a pipeline; the static design serializes it into
one barrier per tree level with a DRAM round trip at each.

The root kernel wires the whole sort/merge tree with ``stream_from`` edges
(sizes are known up front, so the tree shape is static even though the
runtime schedule is dynamic).
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import merge_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import Task, TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import random_int_array

_ELEM = 4


class MergesortWorkload(Workload):
    """Sort an integer array with a leaf-sort + merge-tree task graph."""

    name = "mergesort"

    def __init__(self, n: int = 4096, leaf: int = 256, seed: int = 0) -> None:
        if n % leaf != 0:
            raise ValueError("n must be a multiple of leaf size")
        self.n = n
        self.leaf = leaf
        self.data = random_int_array(n, 0, 1 << 20, seed=("msort", seed))

    def build_program(self) -> Program:
        leaf_size = self.leaf
        state = {"array": self.data.copy()}

        def leaf_kernel(ctx: TaskContext, args: dict) -> None:
            lo, hi = args["lo"], args["hi"]
            arr = ctx.state["array"]
            arr[lo:hi] = np.sort(arr[lo:hi])

        leaf_type = TaskType(
            name="leaf_sort",
            dfg=merge_dfg("leafsort"),
            kernel=leaf_kernel,
            # Leaf sorting is O(n log n) compare-select work on the fabric.
            trips=lambda args: (args["hi"] - args["lo"]) * max(
                1, (args["hi"] - args["lo"]).bit_length() - 1),
            reads=lambda args: (
                ReadSpec(nbytes=(args["hi"] - args["lo"]) * _ELEM),),
            writes=lambda args: (
                WriteSpec(nbytes=(args["hi"] - args["lo"]) * _ELEM),),
            work_hint=WorkHint(lambda args: args["hi"] - args["lo"]),
        )

        def merge_kernel(ctx: TaskContext, args: dict) -> None:
            lo, mid, hi = args["lo"], args["mid"], args["hi"]
            arr = ctx.state["array"]
            merged = np.concatenate((arr[lo:mid], arr[mid:hi]))
            merged.sort(kind="mergesort")
            arr[lo:hi] = merged

        merge_type = TaskType(
            name="merge",
            dfg=merge_dfg(),
            kernel=merge_kernel,
            trips=lambda args: args["hi"] - args["lo"],
            writes=lambda args: (
                WriteSpec(nbytes=(args["hi"] - args["lo"]) * _ELEM),),
            work_hint=WorkHint(lambda args: args["hi"] - args["lo"]),
        )

        def root_kernel(ctx: TaskContext, args: dict) -> None:
            def build(lo: int, hi: int) -> Task:
                if hi - lo <= leaf_size:
                    return ctx.spawn(leaf_type, {"lo": lo, "hi": hi})
                mid = (lo + hi) // 2
                left = build(lo, mid)
                right = build(mid, hi)
                return ctx.spawn(merge_type,
                                 {"lo": lo, "mid": mid, "hi": hi},
                                 stream_from=[left, right])
            build(0, args["n"])

        root_type = TaskType(
            name="sort_root",
            dfg=merge_dfg("root"),
            kernel=root_kernel,
            trips=lambda args: 1,
        )
        initial = [root_type.instantiate({"n": self.n})]
        return Program("mergesort", state, initial)

    def reference(self) -> np.ndarray:
        return np.sort(self.data)

    def check(self, state: dict) -> None:
        require(np.array_equal(state["array"], self.reference()),
                "mergesort output not sorted correctly")

    def describe(self) -> dict:
        leaves = self.n // self.leaf
        return {
            "name": self.name,
            "tasks": 2 * leaves,  # leaves + merges (+1 root)
            "mean_work": self.leaf,
            "cv_work": 1.0,  # merge sizes double per level
            "mechanisms": "spawning + pipelined merge tree",
        }
