"""Stencil-AMR: a 5-point stencil over irregularly refined tiles.

Structure exercised: **heterogeneous task sizes**. Adaptive mesh refinement
produces tiles whose areas span orders of magnitude; a task-count balancer
assigns equal tile *counts* per lane and loses badly to work-aware
balancing on the area skew.
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import stencil5_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import random_int_array, zipf_tile_sizes

_ELEM = 4


def _stencil(tile: np.ndarray, sweeps: int = 1) -> np.ndarray:
    """Jacobi-style 5-point sweeps with zero halo, integer arithmetic.

    Several sweeps per tile (the usual relaxation loop) raise the
    compute-per-byte ratio: the tile streams in once and is iterated
    on-chip.
    """
    out = tile
    for _ in range(sweeps):
        padded = np.pad(out, 1)
        center = padded[1:-1, 1:-1]
        neighbours = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                      + padded[1:-1, :-2] + padded[1:-1, 2:])
        out = 4 * center + neighbours
    return out


class StencilAmrWorkload(Workload):
    """Apply one stencil sweep to every refined tile."""

    name = "stencil-amr"

    def __init__(self, num_tiles: int = 40, min_side: int = 8,
                 max_side: int = 64, alpha: float = 1.1,
                 sweeps: int = 4, seed: int = 0) -> None:
        self.num_tiles = num_tiles
        self.sweeps = sweeps
        # Zipf over sides: most tiles are near ``min_side``, a few reach
        # ``max_side`` — and work scales with side^2, so the area skew is
        # severe (the AMR shape that breaks count-based balancing).
        self.sides = zipf_tile_sizes(num_tiles, alpha, min_side, max_side,
                                     seed=seed)
        self.tiles = []
        for index, side in enumerate(self.sides):
            flat = random_int_array(side * side, -8, 8,
                                    seed=("amr", seed, index))
            self.tiles.append(flat.reshape(side, side))

    def build_program(self) -> Program:
        tiles = self.tiles
        state = {"out": [None] * self.num_tiles}

        sweeps = self.sweeps

        def kernel(ctx: TaskContext, args: dict) -> None:
            index = args["index"]
            ctx.state["out"][index] = _stencil(tiles[index], sweeps)

        task_type = TaskType(
            name="amr_tile",
            dfg=stencil5_dfg(),
            kernel=kernel,
            trips=lambda args: sweeps * args["side"] ** 2,
            reads=lambda args: (
                ReadSpec(nbytes=args["side"] ** 2 * _ELEM),),
            writes=lambda args: (
                WriteSpec(nbytes=args["side"] ** 2 * _ELEM),),
            work_hint=WorkHint(lambda args: sweeps * args["side"] ** 2),
        )
        initial = [task_type.instantiate({"index": i, "side": side})
                   for i, side in enumerate(self.sides)]
        return Program("stencil-amr", state, initial)

    def reference(self) -> list[np.ndarray]:
        return [_stencil(t, self.sweeps) for t in self.tiles]

    def check(self, state: dict) -> None:
        expected = self.reference()
        for index, (got, want) in enumerate(zip(state["out"], expected)):
            require(got is not None, f"tile {index} never computed")
            require(np.array_equal(got, want), f"tile {index} mismatch")

    def describe(self) -> dict:
        areas = [s * s for s in self.sides]
        mean = sum(areas) / len(areas)
        var = sum((a - mean) ** 2 for a in areas) / len(areas)
        return {
            "name": self.name,
            "tasks": self.num_tiles,
            "mean_work": mean,
            "cv_work": (var ** 0.5) / mean,
            "mechanisms": "lb over heterogeneous tiles",
        }
