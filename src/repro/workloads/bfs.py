"""BFS: level-synchronous breadth-first search on a power-law graph.

Structure exercised: **dynamic task creation** (each level's coordinator
spawns chunk tasks once the frontier is known), **work-aware load
balancing** (chunk work = sum of member degrees, wildly skewed on
power-law graphs), and **pipelined level hand-off** (the next coordinator
streams from the chunk tasks rather than waiting on a global barrier plus
a memory round trip).
"""

from __future__ import annotations

from repro.arch.dfg import edge_expand_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import Graph, power_law_graph

_ELEM = 4


class BfsWorkload(Workload):
    """Single-source BFS computing hop distances."""

    name = "bfs"

    def __init__(self, num_vertices: int = 512, alpha: float = 1.5,
                 max_deg: int = 48, chunk_vertices: int = 16,
                 source: int = 0, seed: int = 0) -> None:
        self.num_vertices = num_vertices
        self.chunk_vertices = chunk_vertices
        self.source = source
        self.graph: Graph = power_law_graph(
            num_vertices, alpha=alpha, max_deg=max_deg, seed=seed)

    def build_program(self) -> Program:
        graph = self.graph
        chunk_size = self.chunk_vertices
        source = self.source
        state = {
            "dist": {source: 0},
            "next_frontier": set(),
            "levels": 0,
        }

        def expand_kernel(ctx: TaskContext, args: dict) -> None:
            level = args["level"]
            for vertex in args["chunk"]:
                for neighbor in graph.adjacency[vertex]:
                    if neighbor not in ctx.state["dist"]:
                        ctx.state["dist"][neighbor] = level + 1
                        ctx.state["next_frontier"].add(neighbor)

        expand_type = TaskType(
            name="bfs_expand",
            dfg=edge_expand_dfg(),
            kernel=expand_kernel,
            trips=lambda args: max(1, args["edges"]),
            reads=lambda args: (
                # Chunk's adjacency lists: random-ish gathers.
                ReadSpec(nbytes=max(1, args["edges"]) * _ELEM,
                         locality=0.3),
            ),
            writes=lambda args: (
                WriteSpec(nbytes=max(1, args["edges"]) * _ELEM,
                          locality=0.3),),
            work_hint=WorkHint(lambda args: max(1, args["edges"])),
        )

        def level_kernel(ctx: TaskContext, args: dict) -> None:
            level = args["level"]
            if level == 0:
                frontier = [source]
            else:
                frontier = sorted(ctx.state["next_frontier"])
                ctx.state["next_frontier"] = set()
            if not frontier:
                return
            ctx.state["levels"] = max(ctx.state["levels"], level + 1)
            chunks = [frontier[i:i + chunk_size]
                      for i in range(0, len(frontier), chunk_size)]
            expand_tasks = []
            for chunk in chunks:
                edges = sum(graph.degree(v) for v in chunk)
                expand_tasks.append(ctx.spawn(
                    expand_type,
                    {"level": level, "chunk": chunk, "edges": edges}))
            # The next level's coordinator streams the freshly produced
            # frontier out of the expand tasks (pipelined hand-off).
            ctx.spawn(level_type, {"level": level + 1},
                      stream_from=expand_tasks)

        level_type = TaskType(
            name="bfs_level",
            dfg=edge_expand_dfg(),
            kernel=level_kernel,
            trips=lambda args: 1,
            writes=lambda args: (),
        )

        initial = [level_type.instantiate({"level": 0})]
        return Program("bfs", state, initial)

    def reference(self) -> dict[int, int]:
        from collections import deque

        dist = {self.source: 0}
        queue = deque([self.source])
        while queue:
            vertex = queue.popleft()
            for neighbor in self.graph.adjacency[vertex]:
                if neighbor not in dist:
                    dist[neighbor] = dist[vertex] + 1
                    queue.append(neighbor)
        return dist

    def check(self, state: dict) -> None:
        expected = self.reference()
        require(state["dist"] == expected,
                f"bfs distances mismatch ({len(state['dist'])} vs "
                f"{len(expected)} reached)")

    def describe(self) -> dict:
        degrees = [self.graph.degree(v)
                   for v in range(self.graph.num_vertices)]
        mean_deg = sum(degrees) / len(degrees)
        return {
            "name": self.name,
            "tasks": "dynamic (per level)",
            "mean_work": mean_deg * self.chunk_vertices,
            "cv_work": (max(degrees) / mean_deg),
            "mechanisms": "lb + pipelined levels + spawning",
        }
