"""Triangle counting: neighbour-list intersections on a power-law graph.

Structure exercised: **work-aware load balancing** (per-vertex work is
proportional to the sum of neighbour degrees — extremely skewed) and
**read sharing** (every task intersects against the same adjacency
structure, annotated as a shared region → multicast).
"""

from __future__ import annotations

from repro.arch.dfg import compare_count_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import Graph, power_law_graph

_ELEM = 4


class TriangleWorkload(Workload):
    """Count triangles; one task per vertex chunk."""

    name = "triangle"

    def __init__(self, num_vertices: int = 256, alpha: float = 1.4,
                 max_deg: int = 32, vertices_per_task: int = 8,
                 seed: int = 0) -> None:
        self.num_vertices = num_vertices
        self.vertices_per_task = vertices_per_task
        self.graph: Graph = power_law_graph(
            num_vertices, alpha=alpha, max_deg=max_deg, seed=seed)

    def _chunk_work(self, start: int) -> int:
        end = min(start + self.vertices_per_task, self.num_vertices)
        work = 0
        for v in range(start, end):
            for u in self.graph.adjacency[v]:
                if u > v:
                    work += self.graph.degree(v) + self.graph.degree(u)
        return max(1, work)

    def build_program(self) -> Program:
        graph = self.graph
        per_task = self.vertices_per_task
        state = {"count": 0}
        adjacency_bytes = sum(
            len(a) + 1 for a in graph.adjacency) * _ELEM

        def kernel(ctx: TaskContext, args: dict) -> None:
            start = args["start"]
            end = min(start + per_task, graph.num_vertices)
            local = 0
            for v in range(start, end):
                nv = set(graph.adjacency[v])
                for u in graph.adjacency[v]:
                    if u > v:
                        for w in graph.adjacency[u]:
                            if w > u and w in nv:
                                local += 1
            ctx.state["count"] += local

        task_type = TaskType(
            name="tri_chunk",
            dfg=compare_count_dfg(),
            kernel=kernel,
            trips=lambda args: args["work"],
            reads=lambda args: (
                ReadSpec(nbytes=adjacency_bytes, region="adjacency",
                         shared=True, locality=0.5),
            ),
            writes=lambda args: (WriteSpec(nbytes=_ELEM),),
            work_hint=WorkHint(lambda args: args["work"]),
        )
        initial = []
        for start in range(0, self.num_vertices, per_task):
            initial.append(task_type.instantiate(
                {"start": start, "work": self._chunk_work(start)}))
        return Program("triangle", state, initial)

    def reference(self) -> int:
        count = 0
        adj = [set(a) for a in self.graph.adjacency]
        for v in range(self.num_vertices):
            for u in self.graph.adjacency[v]:
                if u > v:
                    for w in self.graph.adjacency[u]:
                        if w > u and w in adj[v]:
                            count += 1
        return count

    def check(self, state: dict) -> None:
        require(state["count"] == self.reference(),
                f"triangle count mismatch: {state['count']} != "
                f"{self.reference()}")

    def describe(self) -> dict:
        works = [self._chunk_work(s)
                 for s in range(0, self.num_vertices,
                                self.vertices_per_task)]
        mean = sum(works) / len(works)
        var = sum((w - mean) ** 2 for w in works) / len(works)
        return {
            "name": self.name,
            "tasks": len(works),
            "mean_work": mean,
            "cv_work": (var ** 0.5) / mean,
            "mechanisms": "lb + multicast(adjacency)",
        }
