"""k-nearest-neighbours: shared query set against database chunks.

Structure exercised: **read sharing** — every chunk task scores the same
query block (annotated shared → multicast) — plus a combining task that
merges per-chunk candidate lists. Chunk sizes are deliberately uneven so
load balancing matters too.
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import distance_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import random_int_array
from repro.util.rng import DeterministicRng

_ELEM = 4


class KnnWorkload(Workload):
    """Exact kNN by full scan, chunked across tasks."""

    name = "knn"

    def __init__(self, num_points: int = 2048, num_queries: int = 16,
                 dim: int = 8, k: int = 4, chunks: int = 24,
                 seed: int = 0) -> None:
        self.num_points = num_points
        self.num_queries = num_queries
        self.dim = dim
        self.k = k
        self.chunks = chunks
        flat = random_int_array(num_points * dim, -16, 16,
                                seed=("knn-db", seed))
        self.db = flat.reshape(num_points, dim)
        qflat = random_int_array(num_queries * dim, -16, 16,
                                 seed=("knn-q", seed))
        self.queries = qflat.reshape(num_queries, dim)
        # Uneven chunk boundaries: Zipf-ish sizes summing to num_points.
        rng = DeterministicRng("knn-chunks", num_points, chunks, seed)
        raw = rng.zipf_sizes(chunks, alpha=0.9, max_size=8)
        scale = num_points / sum(raw)
        bounds = [0]
        for r in raw[:-1]:
            bounds.append(min(num_points, bounds[-1] + max(8, int(r * scale))))
        bounds.append(num_points)
        self.bounds = bounds

    def build_program(self) -> Program:
        db, queries, k = self.db, self.queries, self.k
        bounds = self.bounds
        state = {"candidates": {}, "result": None}
        query_bytes = queries.size * _ELEM

        def scan_kernel(ctx: TaskContext, args: dict) -> None:
            index = args["index"]
            lo, hi = bounds[index], bounds[index + 1]
            block = db[lo:hi]
            # Squared L2 distances, all queries vs this block.
            diff = queries[:, None, :] - block[None, :, :]
            dists = (diff * diff).sum(axis=2)
            top = np.argsort(dists, axis=1, kind="stable")[:, :k]
            ctx.state["candidates"][index] = [
                [(int(dists[q, j]), int(lo + j)) for j in top[q]]
                for q in range(len(queries))
            ]

        scan_type = TaskType(
            name="knn_scan",
            dfg=distance_dfg(),
            kernel=scan_kernel,
            trips=lambda args: max(1, args["points"] * queries.shape[1]),
            reads=lambda args: (
                ReadSpec(nbytes=query_bytes, region="queries", shared=True),
                ReadSpec(nbytes=args["points"] * queries.shape[1] * _ELEM),
            ),
            writes=lambda args: (
                WriteSpec(nbytes=len(queries) * k * 2 * _ELEM),),
            work_hint=WorkHint(
                lambda args: args["points"] * queries.shape[1]),
        )

        def merge_kernel(ctx: TaskContext, args: dict) -> None:
            merged = []
            for q in range(len(queries)):
                pool = []
                for cand in ctx.state["candidates"].values():
                    pool.extend(cand[q])
                pool.sort()
                merged.append([idx for _dist, idx in pool[:k]])
            ctx.state["result"] = merged

        merge_type = TaskType(
            name="knn_merge",
            dfg=distance_dfg("knnmerge"),
            kernel=merge_kernel,
            trips=lambda args: len(bounds) * k * len(queries) // 4 + 1,
            writes=lambda args: (
                WriteSpec(nbytes=len(queries) * k * _ELEM),),
        )

        def root_kernel(ctx: TaskContext, args: dict) -> None:
            scans = []
            for i in range(len(bounds) - 1):
                scans.append(ctx.spawn(
                    scan_type,
                    {"index": i, "points": bounds[i + 1] - bounds[i]}))
            ctx.spawn(merge_type, {}, stream_from=scans)

        root_type = TaskType(
            name="knn_root", dfg=distance_dfg("knnroot"),
            kernel=root_kernel, trips=lambda args: 1)
        initial = [root_type.instantiate()]
        return Program("knn", state, initial)

    def reference(self) -> list[list[int]]:
        diff = self.queries[:, None, :] - self.db[None, :, :]
        dists = (diff * diff).sum(axis=2)
        out = []
        for q in range(self.num_queries):
            order = sorted(range(self.num_points),
                           key=lambda j: (int(dists[q, j]), j))
            out.append(order[:self.k])
        return out

    def check(self, state: dict) -> None:
        require(state["result"] is not None, "knn never merged")
        require(state["result"] == self.reference(), "knn result mismatch")

    def describe(self) -> dict:
        sizes = [self.bounds[i + 1] - self.bounds[i]
                 for i in range(len(self.bounds) - 1)]
        mean = sum(sizes) / len(sizes)
        var = sum((s - mean) ** 2 for s in sizes) / len(sizes)
        return {
            "name": self.name,
            "tasks": len(sizes) + 1,
            "mean_work": mean * self.num_queries,
            "cv_work": (var ** 0.5) / mean,
            "mechanisms": "multicast(queries) + lb + merge stream",
        }
