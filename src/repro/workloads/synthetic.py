"""Synthetic microbenchmarks isolating each TaskStream mechanism.

These are the controlled-structure programs used by unit tests, the
quickstart example, and the granularity/policy sensitivity figures:

- :class:`UniformTasks` — N independent equal-sized tasks (baseline shape).
- :class:`SkewedTasks` — N independent tasks with Zipf-skewed work; the
  work-aware load balancer's best case.
- :class:`SharedReadTasks` — N tasks that all read one shared region; the
  multicast mechanism's best case.
- :class:`ChainTasks` — a linear producer→consumer stream chain; the
  pipelining mechanism's best case.
- :class:`SpawnTree` — a binary task tree spawned dynamically (exercises
  in-flight spawning and dispatch).
"""

from __future__ import annotations

from repro.arch.dfg import axpy_dfg, dot_product_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.util.rng import DeterministicRng
from repro.workloads.base import Workload, require

_ELEM = 4  # bytes per element


class UniformTasks(Workload):
    """N independent tasks, each summing ``trips`` consecutive integers."""

    name = "uniform"

    def __init__(self, num_tasks: int = 32, trips: int = 256) -> None:
        self.num_tasks = num_tasks
        self.trips = trips

    def build_program(self) -> Program:
        state = {"sums": {}}
        trips = self.trips

        def kernel(ctx: TaskContext, args: dict) -> None:
            index = args["index"]
            ctx.state["sums"][index] = sum(range(index, index + trips))

        task_type = TaskType(
            name="uniform",
            dfg=dot_product_dfg("uniform"),
            kernel=kernel,
            trips=lambda args: trips,
            reads=lambda args: (ReadSpec(nbytes=trips * _ELEM),),
            writes=lambda args: (WriteSpec(nbytes=_ELEM),),
        )
        initial = [task_type.instantiate({"index": i})
                   for i in range(self.num_tasks)]
        return Program("uniform", state, initial)

    def reference(self) -> dict:
        return {i: sum(range(i, i + self.trips))
                for i in range(self.num_tasks)}

    def check(self, state: dict) -> None:
        expected = self.reference()
        require(state["sums"] == expected,
                f"uniform sums mismatch: got {len(state['sums'])} entries")


class SkewedTasks(Workload):
    """Independent tasks whose work follows a truncated Zipf distribution.

    The per-task work (trip count) is carried in the arguments and exposed
    through a WorkHint — the information a work-aware dispatcher uses and a
    task-count balancer throws away.
    """

    name = "skewed"

    def __init__(self, num_tasks: int = 64, alpha: float = 1.2,
                 max_trips: int = 2048, seed: int = 0) -> None:
        self.num_tasks = num_tasks
        self.alpha = alpha
        self.max_trips = max_trips
        self.seed = seed
        rng = DeterministicRng("skewed", num_tasks, alpha, max_trips, seed)
        self.trip_counts = [
            t * 16 for t in rng.zipf_sizes(num_tasks, alpha, max_trips // 16)
        ]

    def build_program(self) -> Program:
        state = {"sums": {}}
        trip_counts = self.trip_counts

        def kernel(ctx: TaskContext, args: dict) -> None:
            index = args["index"]
            ctx.state["sums"][index] = args["trips"] * (index + 1)

        task_type = TaskType(
            name="skewed",
            dfg=dot_product_dfg("skewed"),
            kernel=kernel,
            trips=lambda args: args["trips"],
            reads=lambda args: (ReadSpec(nbytes=args["trips"] * _ELEM),),
            writes=lambda args: (WriteSpec(nbytes=_ELEM),),
            work_hint=WorkHint(lambda args: args["trips"]),
        )
        initial = [task_type.instantiate({"index": i, "trips": t})
                   for i, t in enumerate(trip_counts)]
        return Program("skewed", state, initial)

    def reference(self) -> dict:
        return {i: t * (i + 1) for i, t in enumerate(self.trip_counts)}

    def check(self, state: dict) -> None:
        require(state["sums"] == self.reference(), "skewed sums mismatch")

    @property
    def total_work(self) -> int:
        """Sum of all trip counts."""
        return sum(self.trip_counts)


class SharedReadTasks(Workload):
    """Every task reads the same shared region plus a small private input."""

    name = "shared-read"

    def __init__(self, num_tasks: int = 32, region_bytes: int = 8192,
                 trips: int = 512) -> None:
        self.num_tasks = num_tasks
        self.region_bytes = region_bytes
        self.trips = trips

    def build_program(self) -> Program:
        state = {"hits": 0, "order": []}
        trips = self.trips
        region_bytes = self.region_bytes

        def kernel(ctx: TaskContext, args: dict) -> None:
            ctx.state["hits"] += 1
            ctx.state["order"].append(args["index"])

        task_type = TaskType(
            name="shared",
            dfg=dot_product_dfg("shared"),
            kernel=kernel,
            trips=lambda args: trips,
            reads=lambda args: (
                ReadSpec(nbytes=region_bytes, region="table",
                         shared=True),
                ReadSpec(nbytes=trips * _ELEM),
            ),
            writes=lambda args: (WriteSpec(nbytes=_ELEM),),
        )
        initial = [task_type.instantiate({"index": i})
                   for i in range(self.num_tasks)]
        return Program("shared-read", state, initial)

    def reference(self) -> int:
        return self.num_tasks

    def check(self, state: dict) -> None:
        require(state["hits"] == self.num_tasks,
                f"expected {self.num_tasks} kernel runs, got {state['hits']}")


class ChainTasks(Workload):
    """A linear chain: stage k streams its output into stage k+1.

    The root spawns the whole chain with ``stream_from`` edges, so with
    pipelining every stage overlaps its neighbours; without it, each link
    becomes a DRAM round trip plus serialization.
    """

    name = "chain"

    def __init__(self, depth: int = 6, trips: int = 1024) -> None:
        if depth < 1:
            raise ValueError("chain depth must be >= 1")
        self.depth = depth
        self.trips = trips

    def build_program(self) -> Program:
        state = {"stages_run": []}
        trips = self.trips
        depth = self.depth

        stage_type = TaskType(
            name="stage",
            dfg=axpy_dfg("stage"),
            kernel=lambda ctx, args: ctx.state["stages_run"].append(
                args["stage"]),
            trips=lambda args: trips,
            writes=lambda args: (WriteSpec(nbytes=trips * _ELEM),),
        )

        def root_kernel(ctx: TaskContext, args: dict) -> None:
            ctx.state["stages_run"].append(0)
            prev = ctx.task
            for stage in range(1, depth):
                prev = ctx.spawn(stage_type, {"stage": stage},
                                 stream_from=[prev])

        root_type = TaskType(
            name="stage",
            dfg=axpy_dfg("stage"),
            kernel=root_kernel,
            trips=lambda args: trips,
            reads=lambda args: (ReadSpec(nbytes=trips * _ELEM),),
            writes=lambda args: (WriteSpec(nbytes=trips * _ELEM),),
        )
        initial = [root_type.instantiate({"stage": 0})]
        return Program("chain", state, initial)

    def reference(self) -> list:
        return list(range(self.depth))

    def check(self, state: dict) -> None:
        require(sorted(state["stages_run"]) == self.reference(),
                f"chain stages mismatch: {state['stages_run']}")


class SpawnTree(Workload):
    """A binary spawn tree of the given depth (leaf count 2**depth)."""

    name = "spawn-tree"

    def __init__(self, depth: int = 4, trips: int = 128) -> None:
        self.depth = depth
        self.trips = trips

    def build_program(self) -> Program:
        state = {"visited": []}
        trips = self.trips
        max_depth = self.depth

        def kernel(ctx: TaskContext, args: dict) -> None:
            level, index = args["level"], args["index"]
            ctx.state["visited"].append((level, index))
            if level < max_depth:
                ctx.spawn(node_type, {"level": level + 1, "index": 2 * index})
                ctx.spawn(node_type,
                          {"level": level + 1, "index": 2 * index + 1})

        node_type = TaskType(
            name="node",
            dfg=dot_product_dfg("node"),
            kernel=kernel,
            trips=lambda args: trips,
            reads=lambda args: (ReadSpec(nbytes=trips * _ELEM),),
            writes=lambda args: (WriteSpec(nbytes=_ELEM),),
        )
        initial = [node_type.instantiate({"level": 0, "index": 0})]
        return Program("spawn-tree", state, initial)

    def reference(self) -> int:
        return 2 ** (self.depth + 1) - 1

    def check(self, state: dict) -> None:
        require(len(state["visited"]) == self.reference(),
                f"expected {self.reference()} nodes, "
                f"got {len(state['visited'])}")


class ConfigThrash(Workload):
    """Interleaved task types with distinct fabric configurations.

    The regime for the config-affinity extension: many small tasks of
    several types, so a type-oblivious dispatcher makes every lane
    reconfigure constantly while an affinity-aware one partitions types
    across lanes. Run it with a small config cache / large config cost
    (see the F9 experiment) to expose the effect.
    """

    name = "config-thrash"

    def __init__(self, num_tasks: int = 64, num_types: int = 4,
                 trips: int = 64) -> None:
        from repro.arch.dfg import (
            compare_count_dfg,
            distance_dfg,
            merge_dfg,
            smith_waterman_dfg,
            stencil5_dfg,
        )

        factories = [dot_product_dfg, merge_dfg, compare_count_dfg,
                     distance_dfg, stencil5_dfg, smith_waterman_dfg]
        if not 1 <= num_types <= len(factories):
            raise ValueError(f"num_types must be 1..{len(factories)}")
        self.num_tasks = num_tasks
        self.num_types = num_types
        self.trips = trips
        self._dfgs = [factories[i](f"thrash{i}") for i in range(num_types)]

    def build_program(self) -> Program:
        state = {"ran": []}
        trips = self.trips

        types = [
            TaskType(
                name=f"type{i}",
                dfg=dfg,
                kernel=lambda ctx, args: ctx.state["ran"].append(
                    args["index"]),
                trips=lambda args: trips,
                reads=lambda args: (ReadSpec(nbytes=trips * _ELEM),),
                writes=lambda args: (WriteSpec(nbytes=_ELEM),),
            )
            for i, dfg in enumerate(self._dfgs)
        ]
        initial = [types[i % self.num_types].instantiate({"index": i})
                   for i in range(self.num_tasks)]
        return Program("config-thrash", state, initial)

    def reference(self) -> list:
        return list(range(self.num_tasks))

    def check(self, state: dict) -> None:
        require(sorted(state["ran"]) == self.reference(),
                "config-thrash task set mismatch")
