"""Tiled Cholesky factorization: a classic task DAG with real dependences.

Structure exercised: **inter-task dependences** (the potrf/trsm/update DAG),
**pipelined trsm→update streams**, and **work-aware balancing** (the
trailing-matrix update count shrinks every step, so per-phase work is very
uneven — the shape static partitioning handles worst).
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import cholesky_update_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import Task, TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import spd_matrix

_ELEM = 4


class CholeskyWorkload(Workload):
    """Left-looking tiled Cholesky of an SPD matrix."""

    name = "cholesky"

    def __init__(self, tiles: int = 6, tile_size: int = 16,
                 seed: int = 0) -> None:
        self.tiles = tiles
        self.tile_size = tile_size
        self.n = tiles * tile_size
        self.matrix = spd_matrix(self.n, seed=seed)

    def _tile(self, state: dict, i: int, j: int) -> np.ndarray:
        b = self.tile_size
        return state["a"][i * b:(i + 1) * b, j * b:(j + 1) * b]

    def build_program(self) -> Program:
        b = self.tile_size
        tiles = self.tiles
        tile_of = self._tile
        state = {"a": self.matrix.copy()}
        tile_bytes = b * b * _ELEM

        def potrf_kernel(ctx: TaskContext, args: dict) -> None:
            k = args["k"]
            block = tile_of(ctx.state, k, k)
            block[:] = np.linalg.cholesky(block)

        def trsm_kernel(ctx: TaskContext, args: dict) -> None:
            i, k = args["i"], args["k"]
            lkk = tile_of(ctx.state, k, k)
            aik = tile_of(ctx.state, i, k)
            aik[:] = np.linalg.solve(lkk, aik.T).T

        def update_kernel(ctx: TaskContext, args: dict) -> None:
            i, j, k = args["i"], args["j"], args["k"]
            aij = tile_of(ctx.state, i, j)
            aij -= tile_of(ctx.state, i, k) @ tile_of(ctx.state, j, k).T

        potrf_type = TaskType(
            name="potrf", dfg=cholesky_update_dfg("potrf"),
            kernel=potrf_kernel,
            trips=lambda args: b * b * b // 3,
            reads=lambda args: (ReadSpec(nbytes=tile_bytes),),
            writes=lambda args: (WriteSpec(nbytes=tile_bytes),),
            work_hint=WorkHint(lambda args: b * b * b / 3),
        )
        trsm_type = TaskType(
            name="trsm", dfg=cholesky_update_dfg("trsm"),
            kernel=trsm_kernel,
            trips=lambda args: b * b * b // 2,
            reads=lambda args: (ReadSpec(nbytes=tile_bytes),),
            writes=lambda args: (WriteSpec(nbytes=tile_bytes),),
            work_hint=WorkHint(lambda args: b * b * b / 2),
        )
        update_type = TaskType(
            name="tile_update", dfg=cholesky_update_dfg("update"),
            kernel=update_kernel,
            trips=lambda args: b * b * b,
            reads=lambda args: (ReadSpec(nbytes=tile_bytes),),
            writes=lambda args: (WriteSpec(nbytes=tile_bytes),),
            work_hint=WorkHint(lambda args: b * b * b),
        )

        def root_kernel(ctx: TaskContext, args: dict) -> None:
            # last_writer[(i, j)] tracks WAW/RAW ordering per tile.
            last: dict[tuple[int, int], Task] = {}
            for k in range(tiles):
                deps = [last[(k, k)]] if (k, k) in last else []
                potrf = ctx.spawn(potrf_type, {"k": k}, after=deps)
                last[(k, k)] = potrf
                trsms: dict[int, Task] = {}
                for i in range(k + 1, tiles):
                    deps = [t for t in (last.get((i, k)),) if t is not None]
                    trsm = ctx.spawn(trsm_type, {"i": i, "k": k},
                                     after=deps, stream_from=[potrf])
                    trsms[i] = trsm
                    last[(i, k)] = trsm
                for i in range(k + 1, tiles):
                    for j in range(k + 1, i + 1):
                        deps = [t for t in (last.get((i, j)),)
                                if t is not None]
                        producers = [trsms[i]]
                        if j != i:
                            producers.append(trsms[j])
                        update = ctx.spawn(
                            update_type, {"i": i, "j": j, "k": k},
                            after=deps, stream_from=producers)
                        last[(i, j)] = update

        root_type = TaskType(
            name="cholesky_root", dfg=cholesky_update_dfg("root"),
            kernel=root_kernel, trips=lambda args: 1)
        initial = [root_type.instantiate()]
        return Program("cholesky", state, initial)

    def reference(self) -> np.ndarray:
        return np.linalg.cholesky(self.matrix)

    def check(self, state: dict) -> None:
        computed = np.tril(state["a"])
        require(np.allclose(computed, self.reference(), atol=1e-8),
                "cholesky factor mismatch")

    def describe(self) -> dict:
        t = self.tiles
        tasks = t + t * (t - 1) // 2 + sum(
            (t - k - 1) * (t - k) // 2 for k in range(t))
        return {
            "name": self.name,
            "tasks": tasks,
            "mean_work": self.tile_size ** 3,
            "cv_work": 0.4,
            "mechanisms": "task DAG + pipelined trsm->update + lb",
        }
