"""SpMM: sparse matrix x dense matrix.

Like SpMV but the shared operand is the whole dense matrix ``B`` — a much
larger shared region, so the multicast mechanism's traffic savings dominate
(every task would otherwise fetch all of B).
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import dot_product_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import CsrMatrix, power_law_csr, random_int_array

_ELEM = 4
_NNZ_BYTES = 8


class SpmmWorkload(Workload):
    """C = A @ B with CSR A (power-law rows) and dense B."""

    name = "spmm"

    def __init__(self, num_rows: int = 128, num_cols: int = 128,
                 width: int = 16, rows_per_task: int = 4,
                 alpha: float = 1.3, max_nnz: int = 48,
                 seed: int = 0) -> None:
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.width = width
        self.rows_per_task = rows_per_task
        self.matrix: CsrMatrix = power_law_csr(
            num_rows, num_cols, alpha=alpha, max_nnz=max_nnz, seed=seed)
        flat = random_int_array(num_cols * width, -4, 4,
                                seed=("spmm-b", seed))
        self.b = flat.reshape(num_cols, width)

    def _block_nnz(self, start: int) -> int:
        end = min(start + self.rows_per_task, self.num_rows)
        return int(self.matrix.row_ptr[end] - self.matrix.row_ptr[start])

    def build_program(self) -> Program:
        matrix, b, width = self.matrix, self.b, self.width
        rows_per_task = self.rows_per_task
        state = {"c": np.zeros((self.num_rows, width), dtype=np.int64)}

        def kernel(ctx: TaskContext, args: dict) -> None:
            start = args["start"]
            end = min(start + rows_per_task, matrix.num_rows)
            c = ctx.state["c"]
            for row in range(start, end):
                cols, vals = matrix.row_slice(row)
                if len(cols):
                    c[row] = vals @ b[cols]

        b_bytes = self.num_cols * width * _ELEM

        task_type = TaskType(
            name="spmm_block",
            dfg=dot_product_dfg("spmm"),
            kernel=kernel,
            # Each nonzero touches `width` output elements.
            trips=lambda args: max(1, args["nnz"] * width),
            reads=lambda args: (
                ReadSpec(nbytes=b_bytes, region="B", shared=True),
                ReadSpec(nbytes=args["nnz"] * _NNZ_BYTES),
            ),
            writes=lambda args: (
                WriteSpec(nbytes=args["rows"] * width * _ELEM),),
            work_hint=WorkHint(lambda args: args["nnz"] * width),
        )
        initial = []
        for start in range(0, self.num_rows, rows_per_task):
            rows = min(rows_per_task, self.num_rows - start)
            initial.append(task_type.instantiate(
                {"start": start, "nnz": self._block_nnz(start),
                 "rows": rows}))
        return Program("spmm", state, initial)

    def reference(self) -> np.ndarray:
        return self.matrix.to_dense() @ self.b

    def check(self, state: dict) -> None:
        expected = self.reference()
        require(np.array_equal(state["c"], expected), "spmm mismatch")

    def describe(self) -> dict:
        blocks = [self._block_nnz(s) * self.width
                  for s in range(0, self.num_rows, self.rows_per_task)]
        return {
            "name": self.name,
            "tasks": len(blocks),
            "mean_work": float(np.mean(blocks)),
            "cv_work": float(np.std(blocks) / max(np.mean(blocks), 1)),
            "mechanisms": "lb + multicast(B)",
        }
