"""SpMV: sparse matrix-vector multiply with skewed row lengths.

Structure exercised: **work-aware load balancing** (per-task work is the
block's nnz, which a WorkHint exposes) and **read sharing** (every task
reads the dense vector ``x``, annotated as a shared region → multicast).

One task processes a block of consecutive rows; blocks have highly unequal
nnz because row lengths are Zipf-distributed.
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import dot_product_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import CsrMatrix, power_law_csr, random_int_array

_ELEM = 4
_NNZ_BYTES = 8  # column index + value per nonzero


class SpmvWorkload(Workload):
    """y = A @ x over a power-law CSR matrix."""

    name = "spmv"

    def __init__(self, num_rows: int = 256, num_cols: int = 512,
                 rows_per_task: int = 8, alpha: float = 1.3,
                 max_nnz: int = 96, seed: int = 0) -> None:
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.rows_per_task = rows_per_task
        self.matrix: CsrMatrix = power_law_csr(
            num_rows, num_cols, alpha=alpha, max_nnz=max_nnz, seed=seed)
        self.x = random_int_array(num_cols, -8, 8, seed=("spmv-x", seed))

    def _block_nnz(self, start: int) -> int:
        end = min(start + self.rows_per_task, self.num_rows)
        return int(self.matrix.row_ptr[end] - self.matrix.row_ptr[start])

    def build_program(self) -> Program:
        matrix, x = self.matrix, self.x
        rows_per_task = self.rows_per_task
        state = {"y": np.zeros(self.num_rows, dtype=np.int64)}

        def kernel(ctx: TaskContext, args: dict) -> None:
            start = args["start"]
            end = min(start + rows_per_task, matrix.num_rows)
            y = ctx.state["y"]
            for row in range(start, end):
                cols, vals = matrix.row_slice(row)
                y[row] = int(np.dot(vals, x[cols]))

        x_bytes = self.num_cols * _ELEM

        task_type = TaskType(
            name="spmv_block",
            dfg=dot_product_dfg("spmv"),
            kernel=kernel,
            trips=lambda args: max(1, args["nnz"]),
            reads=lambda args: (
                ReadSpec(nbytes=x_bytes, region="x", shared=True),
                ReadSpec(nbytes=args["nnz"] * _NNZ_BYTES, locality=1.0),
            ),
            writes=lambda args: (WriteSpec(nbytes=args["rows"] * _ELEM),),
            work_hint=WorkHint(lambda args: args["nnz"]),
        )
        initial = []
        for start in range(0, self.num_rows, rows_per_task):
            rows = min(rows_per_task, self.num_rows - start)
            initial.append(task_type.instantiate(
                {"start": start, "nnz": self._block_nnz(start),
                 "rows": rows}))
        return Program("spmv", state, initial)

    def reference(self) -> np.ndarray:
        return self.matrix.to_dense() @ self.x

    def check(self, state: dict) -> None:
        expected = self.reference()
        require(np.array_equal(state["y"], expected),
                f"spmv mismatch: {np.sum(state['y'] != expected)} rows wrong")

    def describe(self) -> dict:
        blocks = [self._block_nnz(s)
                  for s in range(0, self.num_rows, self.rows_per_task)]
        return {
            "name": self.name,
            "tasks": len(blocks),
            "mean_work": float(np.mean(blocks)),
            "cv_work": float(np.std(blocks) / max(np.mean(blocks), 1)),
            "mechanisms": "lb + multicast(x)",
        }
