"""Deterministic input generators shared by the evaluation workloads.

Everything is seeded through :class:`~repro.util.rng.DeterministicRng`, so a
workload's inputs are a pure function of its parameters — simulation runs
are exactly reproducible and Delta/baseline runs see identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import DeterministicRng


@dataclass
class CsrMatrix:
    """A CSR sparse matrix with integer values (exact arithmetic)."""

    num_rows: int
    num_cols: int
    row_ptr: np.ndarray   # int64, len num_rows + 1
    col_idx: np.ndarray   # int64, len nnz
    values: np.ndarray    # int64, len nnz

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.row_ptr[-1])

    def row_nnz(self, row: int) -> int:
        """Nonzeros in one row."""
        return int(self.row_ptr[row + 1] - self.row_ptr[row])

    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(col indices, values) of one row."""
        lo, hi = int(self.row_ptr[row]), int(self.row_ptr[row + 1])
        return self.col_idx[lo:hi], self.values[lo:hi]

    def to_dense(self) -> np.ndarray:
        """Dense int64 copy (reference computations on small inputs)."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.int64)
        for row in range(self.num_rows):
            cols, vals = self.row_slice(row)
            dense[row, cols] = vals
        return dense


def power_law_csr(num_rows: int, num_cols: int, alpha: float = 1.3,
                  min_nnz: int = 1, max_nnz: int = 64,
                  seed: object = 0) -> CsrMatrix:
    """A sparse matrix whose row lengths follow a truncated Zipf law.

    This is the skew that breaks task-count load balancing: a few heavy
    rows carry much of the work.
    """
    rng = DeterministicRng("csr", num_rows, num_cols, alpha, max_nnz, seed)
    lengths = [min(num_cols, min_nnz + s - 1)
               for s in rng.zipf_sizes(num_rows, alpha, max_nnz)]
    row_ptr = np.zeros(num_rows + 1, dtype=np.int64)
    cols: list[int] = []
    vals: list[int] = []
    for row, length in enumerate(lengths):
        chosen = sorted(rng.sample(range(num_cols), length))
        cols.extend(chosen)
        vals.extend(rng.randint(-4, 4) or 1 for _ in chosen)
        row_ptr[row + 1] = row_ptr[row] + length
    return CsrMatrix(num_rows, num_cols, row_ptr,
                     np.array(cols, dtype=np.int64),
                     np.array(vals, dtype=np.int64))


@dataclass
class Graph:
    """An undirected graph in adjacency-list form."""

    num_vertices: int
    adjacency: list[list[int]]

    @property
    def num_edges(self) -> int:
        """Undirected edge count."""
        return sum(len(a) for a in self.adjacency) // 2

    def degree(self, vertex: int) -> int:
        """Degree of one vertex."""
        return len(self.adjacency[vertex])


def power_law_graph(num_vertices: int, alpha: float = 1.4,
                    min_deg: int = 2, max_deg: int = 32,
                    seed: object = 0) -> Graph:
    """A connected-ish undirected graph with power-law degrees.

    Built with a Chung-Lu style pairing over the target degree sequence,
    then a spanning chain is added so BFS reaches every vertex.
    """
    rng = DeterministicRng("graph", num_vertices, alpha, max_deg, seed)
    targets = rng.power_law_degrees(num_vertices, alpha, min_deg,
                                    min(max_deg, num_vertices - 1))
    neighbors: list[set[int]] = [set() for _ in range(num_vertices)]
    # Chain guarantees connectivity.
    for v in range(num_vertices - 1):
        neighbors[v].add(v + 1)
        neighbors[v + 1].add(v)
    stubs: list[int] = []
    for v, t in enumerate(targets):
        stubs.extend([v] * max(0, t - len(neighbors[v])))
    rng.shuffle(stubs)
    for a, b in zip(stubs[::2], stubs[1::2]):
        if a != b:
            neighbors[a].add(b)
            neighbors[b].add(a)
    return Graph(num_vertices, [sorted(n) for n in neighbors])


def random_int_array(count: int, lo: int, hi: int,
                     seed: object = 0) -> np.ndarray:
    """Deterministic int64 array with entries in [lo, hi]."""
    rng = DeterministicRng("ints", count, lo, hi, seed)
    return np.array([rng.randint(lo, hi) for _ in range(count)],
                    dtype=np.int64)


def spd_matrix(n: int, seed: object = 0) -> np.ndarray:
    """A well-conditioned symmetric positive-definite float64 matrix."""
    rng = DeterministicRng("spd", n, seed)
    a = np.array([[rng.uniform(-1, 1) for _ in range(n)] for _ in range(n)])
    return a @ a.T + n * np.eye(n)


def zipf_tile_sizes(count: int, alpha: float, min_side: int, max_side: int,
                    seed: object = 0) -> list[int]:
    """Tile side lengths with Zipf-skewed areas (stencil-AMR inputs)."""
    rng = DeterministicRng("tiles", count, alpha, min_side, max_side, seed)
    span = max_side - min_side + 1
    return [min_side + s - 1 for s in rng.zipf_sizes(count, alpha, span)]
