"""Registration of the ten-paper-workload evaluation suite.

Each workload lives in its own module; this file only wires names to
factories at "evaluation" sizes (kept modest so the full suite simulates
in minutes in pure Python — the *shapes* of the results are what matter,
per DESIGN.md).
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Workload


def register_all(register: Callable[[str, Callable[[], Workload]], None],
                 ) -> None:
    """Register every evaluation workload with the given registrar."""
    from repro.workloads.spmv import SpmvWorkload
    from repro.workloads.spmm import SpmmWorkload
    from repro.workloads.bfs import BfsWorkload
    from repro.workloads.mergesort import MergesortWorkload
    from repro.workloads.cholesky import CholeskyWorkload
    from repro.workloads.wavefront import WavefrontWorkload
    from repro.workloads.triangle import TriangleWorkload
    from repro.workloads.histogram import HistogramWorkload
    from repro.workloads.knn import KnnWorkload
    from repro.workloads.stencil_amr import StencilAmrWorkload

    register("spmv", SpmvWorkload)
    register("spmm", SpmmWorkload)
    register("bfs", BfsWorkload)
    register("mergesort", MergesortWorkload)
    register("cholesky", CholeskyWorkload)
    register("wavefront", WavefrontWorkload)
    register("triangle", TriangleWorkload)
    register("histogram", HistogramWorkload)
    register("knn", KnnWorkload)
    register("stencil-amr", StencilAmrWorkload)
