"""The workload interface: build a program, verify its results.

A workload owns:

- deterministic input generation (seeded by the workload's parameters);
- a :meth:`Workload.build_program` factory returning a *fresh* program —
  kernels mutate program state, so every simulation run gets its own copy;
- a :meth:`Workload.reference` computation (NumPy / pure Python);
- a :meth:`Workload.check` that compares simulated state to the reference.

Sizes default to "small but structurally faithful": large enough that
load-imbalance, sharing and pipelining effects show, small enough that the
full evaluation suite runs in minutes in pure Python.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.core.program import Program


class WorkloadError(AssertionError):
    """Raised when simulated results disagree with the reference."""


class Workload(abc.ABC):
    """Base class for every evaluation workload."""

    #: Short identifier used in tables (override in subclasses).
    name: str = "workload"

    @abc.abstractmethod
    def build_program(self) -> Program:
        """Create a fresh program instance (fresh state, fresh tasks)."""

    @abc.abstractmethod
    def reference(self) -> Any:
        """Compute the expected result with a plain implementation."""

    @abc.abstractmethod
    def check(self, state: Any) -> None:
        """Raise :class:`WorkloadError` if ``state`` mismatches the
        reference."""

    # -- conveniences --------------------------------------------------------

    def verify_result(self, state: Any) -> bool:
        """Like :meth:`check` but returns True/False."""
        try:
            self.check(state)
            return True
        except WorkloadError:
            return False

    def describe(self) -> dict:
        """Workload-characteristics row for table T2 (override to extend)."""
        return {"name": self.name}


def require(condition: bool, message: str) -> None:
    """Raise :class:`WorkloadError` unless ``condition`` holds."""
    if not condition:
        raise WorkloadError(message)
