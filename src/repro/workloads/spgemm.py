"""SpGEMM: sparse x sparse matrix multiply (extended-suite workload).

Row-wise Gustavson: task i computes row block i of ``C = A @ B`` by
merging the B-rows selected by A's nonzeros. Work per task is the sum of
``nnz(B[k, :])`` over A's nonzero columns k — a *product* of two skewed
distributions, the most extreme load imbalance in the suite — and every
task gathers from the same B structure (shared region → multicast).
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import merge_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import CsrMatrix, power_law_csr

_ELEM = 4
_NNZ_BYTES = 8


class SpgemmWorkload(Workload):
    """C = A @ B with both operands in power-law CSR form."""

    name = "spgemm"

    def __init__(self, size: int = 96, rows_per_task: int = 4,
                 alpha: float = 1.3, max_nnz: int = 24,
                 seed: int = 0) -> None:
        self.size = size
        self.rows_per_task = rows_per_task
        self.a: CsrMatrix = power_law_csr(size, size, alpha=alpha,
                                          max_nnz=max_nnz, seed=("A", seed))
        self.b: CsrMatrix = power_law_csr(size, size, alpha=alpha,
                                          max_nnz=max_nnz, seed=("B", seed))

    def _block_work(self, start: int) -> int:
        end = min(start + self.rows_per_task, self.size)
        work = 0
        for row in range(start, end):
            cols, _vals = self.a.row_slice(row)
            for k in cols:
                work += self.b.row_nnz(int(k))
        return max(1, work)

    def build_program(self) -> Program:
        a, b = self.a, self.b
        per_task = self.rows_per_task
        size = self.size
        state = {"c": np.zeros((size, size), dtype=np.int64)}
        b_bytes = b.nnz * _NNZ_BYTES + (size + 1) * _ELEM

        def kernel(ctx: TaskContext, args: dict) -> None:
            start = args["start"]
            end = min(start + per_task, size)
            c = ctx.state["c"]
            for row in range(start, end):
                acols, avals = a.row_slice(row)
                accum: dict[int, int] = {}
                for k, aval in zip(acols, avals):
                    bcols, bvals = b.row_slice(int(k))
                    for j, bval in zip(bcols, bvals):
                        accum[int(j)] = accum.get(int(j), 0) \
                            + int(aval) * int(bval)
                for j, value in accum.items():
                    c[row, j] = value

        task_type = TaskType(
            name="spgemm_block",
            dfg=merge_dfg("spgemm"),
            kernel=kernel,
            trips=lambda args: args["work"],
            reads=lambda args: (
                ReadSpec(nbytes=b_bytes, region="B_csr", shared=True,
                         locality=0.4),
                ReadSpec(nbytes=max(1, args["a_nnz"]) * _NNZ_BYTES),
            ),
            writes=lambda args: (
                WriteSpec(nbytes=max(1, args["work"]) * _ELEM,
                          locality=0.6),),
            work_hint=WorkHint(lambda args: args["work"]),
        )
        initial = []
        for start in range(0, size, per_task):
            end = min(start + per_task, size)
            a_nnz = int(a.row_ptr[end] - a.row_ptr[start])
            initial.append(task_type.instantiate(
                {"start": start, "work": self._block_work(start),
                 "a_nnz": a_nnz}))
        return Program("spgemm", state, initial)

    def reference(self) -> np.ndarray:
        return self.a.to_dense() @ self.b.to_dense()

    def check(self, state: dict) -> None:
        require(np.array_equal(state["c"], self.reference()),
                "spgemm product mismatch")

    def describe(self) -> dict:
        works = [self._block_work(s)
                 for s in range(0, self.size, self.rows_per_task)]
        mean = sum(works) / len(works)
        var = sum((w - mean) ** 2 for w in works) / len(works)
        return {
            "name": self.name,
            "tasks": len(works),
            "mean_work": mean,
            "cv_work": (var ** 0.5) / mean,
            "mechanisms": "lb skew (product of two Zipf) + multicast(B)",
        }
