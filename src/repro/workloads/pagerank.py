"""PageRank: iterative rank propagation (extended-suite workload).

Each iteration spawns chunk tasks that compute new ranks from the
previous iteration's vector. Structure: the rank vector and the graph are
both shared reads (multicast, refreshed per iteration for the ranks),
per-chunk work follows the degree skew (WorkHint), and the iteration
coordinator streams from the chunk tasks (pipelined hand-off, like BFS
levels).
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import edge_expand_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import Graph, power_law_graph

_ELEM = 4
_DAMPING = 0.85


class PagerankWorkload(Workload):
    """A fixed number of damped power iterations on a power-law graph."""

    name = "pagerank"

    def __init__(self, num_vertices: int = 256, iterations: int = 4,
                 chunk_vertices: int = 16, alpha: float = 1.5,
                 max_deg: int = 32, seed: int = 0) -> None:
        self.num_vertices = num_vertices
        self.iterations = iterations
        self.chunk_vertices = chunk_vertices
        self.graph: Graph = power_law_graph(
            num_vertices, alpha=alpha, max_deg=max_deg, seed=seed)

    def _chunk_bounds(self) -> list[tuple[int, int]]:
        step = self.chunk_vertices
        return [(lo, min(lo + step, self.num_vertices))
                for lo in range(0, self.num_vertices, step)]

    def build_program(self) -> Program:
        graph = self.graph
        n = self.num_vertices
        iterations = self.iterations
        bounds = self._chunk_bounds()
        state = {
            "ranks": np.full(n, 1.0 / n),
            "next": np.zeros(n),
        }
        ranks_bytes = n * _ELEM
        graph_bytes = sum(len(a) + 1 for a in graph.adjacency) * _ELEM

        def chunk_kernel(ctx: TaskContext, args: dict) -> None:
            lo, hi = args["lo"], args["hi"]
            ranks = ctx.state["ranks"]
            out = ctx.state["next"]
            for v in range(lo, hi):
                acc = 0.0
                for u in graph.adjacency[v]:
                    acc += ranks[u] / graph.degree(u)
                out[v] = (1 - _DAMPING) / n + _DAMPING * acc

        chunk_type = TaskType(
            name="pr_chunk",
            dfg=edge_expand_dfg("prchunk"),
            kernel=chunk_kernel,
            trips=lambda args: max(1, args["edges"]),
            reads=lambda args: (
                # The rank vector is rewritten every iteration, so each
                # iteration multicasts a *fresh* region; only the graph
                # structure stays resident across the whole run.
                ReadSpec(nbytes=ranks_bytes,
                         region=f"ranks_it{args['iteration']}",
                         shared=True),
                ReadSpec(nbytes=graph_bytes, region="graph", shared=True,
                         locality=0.4),
            ),
            writes=lambda args: (
                WriteSpec(nbytes=(args["hi"] - args["lo"]) * _ELEM),),
            work_hint=WorkHint(lambda args: max(1, args["edges"])),
        )

        def iter_kernel(ctx: TaskContext, args: dict) -> None:
            iteration = args["iteration"]
            if iteration > 0:
                # Commit the previous iteration's results.
                ctx.state["ranks"], ctx.state["next"] = \
                    ctx.state["next"], ctx.state["ranks"]
            if iteration == iterations:
                return
            chunk_tasks = []
            for lo, hi in bounds:
                edges = sum(graph.degree(v) for v in range(lo, hi))
                chunk_tasks.append(ctx.spawn(
                    chunk_type,
                    {"lo": lo, "hi": hi, "edges": edges,
                     "iteration": iteration}))
            ctx.spawn(iter_type, {"iteration": iteration + 1},
                      stream_from=chunk_tasks)

        iter_type = TaskType(
            name="pr_iter",
            dfg=edge_expand_dfg("priter"),
            kernel=iter_kernel,
            trips=lambda args: 1,
        )
        initial = [iter_type.instantiate({"iteration": 0})]
        return Program("pagerank", state, initial)

    def reference(self) -> np.ndarray:
        n = self.num_vertices
        ranks = np.full(n, 1.0 / n)
        for _ in range(self.iterations):
            out = np.zeros(n)
            for v in range(n):
                acc = 0.0
                for u in self.graph.adjacency[v]:
                    acc += ranks[u] / self.graph.degree(u)
                out[v] = (1 - _DAMPING) / n + _DAMPING * acc
            ranks = out
        return ranks

    def check(self, state: dict) -> None:
        require(np.allclose(state["ranks"], self.reference(), atol=1e-12),
                "pagerank vector mismatch")

    def describe(self) -> dict:
        edges = [sum(self.graph.degree(v) for v in range(lo, hi))
                 for lo, hi in self._chunk_bounds()]
        mean = sum(edges) / len(edges)
        var = sum((e - mean) ** 2 for e in edges) / len(edges)
        return {
            "name": self.name,
            "tasks": (len(edges) + 1) * self.iterations + 1,
            "mean_work": mean,
            "cv_work": (var ** 0.5) / mean,
            "mechanisms": "multicast(ranks+graph) + lb + iter pipeline",
        }
