"""Histogram: privatized partial histograms plus a combining tree.

Structure exercised: **reduction structure**. Chunk tasks build private
histograms; combine tasks fold pairs of partials, wired as a binary tree
with ``stream_from`` edges — on Delta the combining tree pipelines behind
the chunk scans, on the static design it is one barrier per tree level.
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import histogram_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import Task, TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import random_int_array

_ELEM = 4


class HistogramWorkload(Workload):
    """Histogram of ``n`` integers into ``bins`` buckets."""

    name = "histogram"

    def __init__(self, n: int = 16384, bins: int = 64, chunks: int = 32,
                 skew: float = 1.0, seed: int = 0) -> None:
        if chunks & (chunks - 1):
            raise ValueError("chunks must be a power of two")
        self.n = n
        self.bins = bins
        self.chunks = chunks
        self.data = random_int_array(n, 0, bins - 1, seed=("hist", seed))
        # Chunk boundaries are uneven (the input arrives pre-partitioned by
        # key range or source, not in equal slices), so per-task work is
        # skewed and balancing matters.
        from repro.util.rng import DeterministicRng

        rng = DeterministicRng("hist-bounds", n, chunks, skew, seed)
        raw = rng.zipf_sizes(chunks, alpha=skew, max_size=8)
        scale = n / sum(raw)
        bounds = [0]
        for r in raw[:-1]:
            bounds.append(min(n, bounds[-1] + max(16, int(r * scale))))
        bounds.append(n)
        self.bounds = bounds

    def build_program(self) -> Program:
        data, bins, chunks = self.data, self.bins, self.chunks
        bounds = self.bounds
        state = {
            "partials": {},
            "result": None,
        }

        def scan_kernel(ctx: TaskContext, args: dict) -> None:
            index = args["index"]
            lo, hi = bounds[index], bounds[index + 1]
            ctx.state["partials"][("scan", index)] = np.bincount(
                data[lo:hi], minlength=bins).astype(np.int64)

        scan_type = TaskType(
            name="hist_scan",
            dfg=histogram_dfg(),
            kernel=scan_kernel,
            trips=lambda args: max(1, args["points"]),
            reads=lambda args: (
                ReadSpec(nbytes=max(1, args["points"]) * _ELEM),),
            writes=lambda args: (WriteSpec(nbytes=bins * _ELEM),),
            work_hint=WorkHint(lambda args: max(1, args["points"])),
        )

        def combine_kernel(ctx: TaskContext, args: dict) -> None:
            partials = ctx.state["partials"]
            left = partials.pop(tuple(args["left"]))
            right = partials.pop(tuple(args["right"]))
            merged = left + right
            key = tuple(args["key"])
            partials[key] = merged
            if args["is_root"]:
                ctx.state["result"] = merged

        combine_type = TaskType(
            name="hist_combine",
            dfg=histogram_dfg("histcombine"),
            kernel=combine_kernel,
            trips=lambda args: bins,
            writes=lambda args: (WriteSpec(nbytes=bins * _ELEM),),
            work_hint=WorkHint(lambda args: bins),
        )

        def root_kernel(ctx: TaskContext, args: dict) -> None:
            level: list[tuple[tuple, Task]] = []
            for i in range(chunks):
                points = bounds[i + 1] - bounds[i]
                level.append((("scan", i),
                              ctx.spawn(scan_type,
                                        {"index": i, "points": points})))
            depth = 0
            while len(level) > 1:
                nxt = []
                for i in range(0, len(level), 2):
                    (lkey, ltask), (rkey, rtask) = level[i], level[i + 1]
                    key = ("combine", depth, i // 2)
                    is_root = len(level) == 2
                    task = ctx.spawn(
                        combine_type,
                        {"left": list(lkey), "right": list(rkey),
                         "key": list(key), "is_root": is_root},
                        stream_from=[ltask, rtask])
                    nxt.append((key, task))
                level = nxt
                depth += 1

        root_type = TaskType(
            name="hist_root", dfg=histogram_dfg("histroot"),
            kernel=root_kernel, trips=lambda args: 1)
        initial = [root_type.instantiate()]
        return Program("histogram", state, initial)

    def reference(self) -> np.ndarray:
        return np.bincount(self.data, minlength=self.bins).astype(np.int64)

    def check(self, state: dict) -> None:
        require(state["result"] is not None, "histogram never combined")
        require(np.array_equal(state["result"], self.reference()),
                "histogram mismatch")

    def describe(self) -> dict:
        sizes = [self.bounds[i + 1] - self.bounds[i]
                 for i in range(self.chunks)]
        mean = sum(sizes) / len(sizes)
        var = sum((s - mean) ** 2 for s in sizes) / len(sizes)
        return {
            "name": self.name,
            "tasks": 2 * self.chunks - 1,
            "mean_work": mean,
            "cv_work": (var ** 0.5) / mean,
            "mechanisms": "reduction tree via pipelined streams + lb",
        }
