"""Wavefront: Smith-Waterman-style tiled dynamic programming.

Structure exercised: **pipelined wavefront dependences**. Tile (i, j)
depends on tiles (i-1, j) and (i, j-1); with TaskStream the dependences are
streams (a tile starts as its neighbours' boundary rows arrive), so the
whole anti-diagonal frontier stays busy. The static design erects a barrier
per anti-diagonal — the canonical pipeline-vs-barrier comparison.
"""

from __future__ import annotations

import numpy as np

from repro.arch.dfg import smith_waterman_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import Program
from repro.core.task import Task, TaskContext, TaskType
from repro.workloads.base import Workload, require
from repro.workloads.inputs import random_int_array

_ELEM = 4
_MATCH = 3
_MISMATCH = -1
_GAP = -2


class WavefrontWorkload(Workload):
    """Local-alignment score matrix over two integer sequences."""

    name = "wavefront"

    def __init__(self, tiles: int = 8, tile_size: int = 32,
                 seed: int = 0) -> None:
        self.tiles = tiles
        self.tile_size = tile_size
        self.n = tiles * tile_size
        self.seq_a = random_int_array(self.n, 0, 3, seed=("wave-a", seed))
        self.seq_b = random_int_array(self.n, 0, 3, seed=("wave-b", seed))

    def _fill_tile(self, score: np.ndarray, ti: int, tj: int) -> None:
        b = self.tile_size
        for i in range(ti * b, (ti + 1) * b):
            for j in range(tj * b, (tj + 1) * b):
                match = _MATCH if self.seq_a[i] == self.seq_b[j] else _MISMATCH
                diag = score[i, j] + match
                up = score[i + 1, j] + _GAP
                left = score[i, j + 1] + _GAP
                score[i + 1, j + 1] = max(0, diag, up, left)

    def build_program(self) -> Program:
        tiles = self.tiles
        b = self.tile_size
        fill = self._fill_tile
        # score has a zero halo row/column at index 0.
        state = {"score": np.zeros((self.n + 1, self.n + 1), dtype=np.int64)}

        def tile_kernel(ctx: TaskContext, args: dict) -> None:
            fill(ctx.state["score"], args["i"], args["j"])

        tile_type = TaskType(
            name="sw_tile",
            dfg=smith_waterman_dfg(),
            kernel=tile_kernel,
            trips=lambda args: b * b,
            reads=lambda args: (ReadSpec(nbytes=2 * b * _ELEM),),
            # Boundary row + column flow to the right/down neighbours.
            writes=lambda args: (WriteSpec(nbytes=2 * b * _ELEM),),
            work_hint=WorkHint(lambda args: b * b),
        )

        def root_kernel(ctx: TaskContext, args: dict) -> None:
            grid: dict[tuple[int, int], Task] = {}
            for i in range(tiles):
                for j in range(tiles):
                    producers = []
                    if i > 0:
                        producers.append(grid[(i - 1, j)])
                    if j > 0:
                        producers.append(grid[(i, j - 1)])
                    grid[(i, j)] = ctx.spawn(
                        tile_type, {"i": i, "j": j},
                        stream_from=producers)

        root_type = TaskType(
            name="sw_root", dfg=smith_waterman_dfg("swroot"),
            kernel=root_kernel, trips=lambda args: 1)
        initial = [root_type.instantiate()]
        return Program("wavefront", state, initial)

    def reference(self) -> np.ndarray:
        score = np.zeros((self.n + 1, self.n + 1), dtype=np.int64)
        for ti in range(self.tiles):
            for tj in range(self.tiles):
                self._fill_tile(score, ti, tj)
        return score

    def check(self, state: dict) -> None:
        require(np.array_equal(state["score"], self.reference()),
                "wavefront score matrix mismatch")

    def describe(self) -> dict:
        return {
            "name": self.name,
            "tasks": self.tiles * self.tiles,
            "mean_work": self.tile_size ** 2,
            "cv_work": 0.0,
            "mechanisms": "pipelined wavefront dependences",
        }
