"""Workloads: task-parallel programs exercising TaskStream's mechanisms.

Every workload module exposes a ``Workload`` subclass (or factory) that
builds a fresh :class:`~repro.core.program.Program` per call, plus a
reference implementation used to verify the simulated results.

:mod:`repro.workloads.synthetic` holds parameterized microbenchmarks used
by unit tests and sensitivity studies; the named modules hold the ten
evaluation workloads listed in DESIGN.md.
"""

from repro.workloads.base import Workload, WorkloadError
from repro.workloads.registry import all_workloads, get_workload

__all__ = ["Workload", "WorkloadError", "all_workloads", "get_workload"]
