"""TaskStream: the paper's task execution model, applied as Delta.

This package is the paper's primary contribution:

- :mod:`repro.core.annotations` — dependence annotations that make
  inter-task structure recoverable (read specs, shared-read regions,
  stream dependences, work hints).
- :mod:`repro.core.task` — task types and task instances; tasks are
  first-class objects with annotated arguments.
- :mod:`repro.core.program` — a task-parallel program: task-type registry,
  shared functional state, and the initial task set.
- :mod:`repro.core.dispatcher` — the hardware task dispatcher implementing
  work-aware load balancing (plus the comparison policies).
- :mod:`repro.core.multicast` — recovery of inter-task read sharing:
  coalesces SharedRead regions across tasks and multicasts one fetch.
- :mod:`repro.core.delta` — the Delta execution model (dispatcher +
  multicast manager + pipelined inter-task streams) as a policy over the
  shared :mod:`repro.machine` datapath.
- :mod:`repro.core.software` — the software-task-runtime model: the same
  execution engine under software cost constants with recovery disabled.
"""

from repro.core.annotations import ReadSpec, WriteSpec, WorkHint
from repro.core.task import Task, TaskType, TaskContext
from repro.core.program import Program
from repro.core.result import RunResult
from repro.core.delta import Delta
from repro.core.software import SoftwareRuntime

__all__ = [
    "ReadSpec",
    "WriteSpec",
    "WorkHint",
    "Task",
    "TaskType",
    "TaskContext",
    "Program",
    "RunResult",
    "Delta",
    "SoftwareRuntime",
]
