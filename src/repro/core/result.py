"""Compatibility re-export: :class:`RunResult` lives in the machine layer.

The canonical result type moved to :mod:`repro.machine.result` when result
assembly became part of the shared run lifecycle
(:class:`~repro.machine.session.RunSession`). Import from
:mod:`repro.machine` in new code; this module remains so existing
``from repro.core.result import RunResult`` imports keep working.
"""

from repro.machine.result import RunResult

__all__ = ["RunResult"]
