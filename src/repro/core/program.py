"""A task-parallel program: types, shared state, and the initial task set.

Programs are built fresh per simulation run (the functional kernels mutate
``state``), so workloads expose ``build_program()`` factories rather than
module-level singletons.

:func:`expand_program` runs the whole spawn tree functionally *without*
timing. The static-parallel baseline uses it to obtain the complete task
set grouped into barrier-separated phases (by spawn depth) — exactly what a
static-parallel implementation of the same program would look like. It is
also useful for workload statistics (table T2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.task import Task, TaskType, run_kernel


@dataclass
class Program:
    """One executable task-parallel program instance."""

    name: str
    state: Any
    initial_tasks: list[Task]
    task_types: list[TaskType] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.initial_tasks:
            raise ValueError(f"program {self.name!r} has no initial tasks")
        if not self.task_types:
            types = {t.type.name: t.type for t in self.initial_tasks}
            self.task_types = list(types.values())


@dataclass
class ExpandedProgram:
    """The fully elaborated task graph of one program run."""

    program: Program
    tasks: list[Task]
    phases: list[list[Task]]

    @property
    def total_work(self) -> float:
        """Sum of all task work estimates."""
        return sum(t.work for t in self.tasks)

    @property
    def task_count(self) -> int:
        """Number of tasks in the full expansion."""
        return len(self.tasks)


def expand_program(program: Program) -> ExpandedProgram:
    """Run every kernel functionally (no timing), collecting all tasks.

    Tasks execute in breadth-first spawn order, which respects ``after``
    and ``stream_from`` dependences because a child is always created by
    (and ordered after) its producers' spawner. Phases group tasks by
    dependence depth: phase k contains every task with ``depth == k``,
    which is the barrier structure a static-parallel port would use.
    """
    queue = deque(program.initial_tasks)
    all_tasks: list[Task] = []
    while queue:
        task = queue.popleft()
        all_tasks.append(task)
        for child in run_kernel(task, program.state):
            queue.append(child)
    max_depth = max(t.depth for t in all_tasks)
    phases: list[list[Task]] = [[] for _ in range(max_depth + 1)]
    for task in all_tasks:
        phases[task.depth].append(task)
    return ExpandedProgram(program, all_tasks, phases)


def partition_block(tasks: Sequence[Task], lanes: int) -> list[list[Task]]:
    """Static block partition: contiguous, near-equal *task counts*.

    This is the work-oblivious split a static-parallel design bakes in at
    compile time — the thing work-aware balancing improves on.
    """
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    n = len(tasks)
    base, extra = divmod(n, lanes)
    out: list[list[Task]] = []
    start = 0
    for lane in range(lanes):
        size = base + (1 if lane < extra else 0)
        out.append(list(tasks[start:start + size]))
        start += size
    return out


def partition_cyclic(tasks: Sequence[Task], lanes: int) -> list[list[Task]]:
    """Static cyclic partition (round-robin by index)."""
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    out: list[list[Task]] = [[] for _ in range(lanes)]
    for index, task in enumerate(tasks):
        out[index % lanes].append(task)
    return out
