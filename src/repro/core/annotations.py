"""Dependence annotations: the information TaskStream attaches to tasks.

The paper's insight is that task-parallel runtimes erase program structure
when they reduce everything to opaque closures. TaskStream instead keeps
the *communication structure* of each dependence explicit:

- :class:`ReadSpec` with ``shared=True`` names a read-only region that other
  tasks may also read — recoverable as a **multicast**.
- A task spawned with ``stream_from=[producers]`` declares a fine-grained
  producer→consumer dependence — recoverable as a **pipelined stream**
  (the consumer starts as chunks arrive rather than after a barrier).
- :class:`WorkHint` carries a work estimate — recoverable as **work-aware
  load balancing** instead of task-count balancing.

These are plain data; the mechanisms that exploit them live in the
dispatcher, multicast manager, and the Delta execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ReadSpec:
    """One input of a task.

    Parameters
    ----------
    nbytes:
        Size of the input data.
    region:
        Name of the memory region. Required when ``shared`` is True (it is
        the coalescing key for multicast); optional otherwise.
    locality:
        Row locality in [0, 1]; 1.0 = fully sequential stream.
    shared:
        Marks the region read-only and potentially read by other tasks.
    """

    nbytes: int
    region: Optional[str] = None
    locality: float = 1.0
    shared: bool = False

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"ReadSpec nbytes must be >= 0: {self.nbytes}")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"ReadSpec locality in [0,1]: {self.locality}")
        if self.shared and not self.region:
            raise ValueError("shared ReadSpec requires a region name")


@dataclass(frozen=True)
class WriteSpec:
    """One output of a task (bytes written back to memory)."""

    nbytes: int
    locality: float = 1.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"WriteSpec nbytes must be >= 0: {self.nbytes}")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"WriteSpec locality in [0,1]: {self.locality}")


@dataclass(frozen=True)
class WorkHint:
    """A work-estimate expression attached to a task type.

    ``estimate`` maps the task's arguments to an abstract work amount
    (commonly the loop trip count, e.g. a row's nnz). The dispatcher's
    work-aware policy balances the *sum of estimates* per lane. Estimates
    need not be exact — the paper's point is that even coarse hints beat
    task-count balancing on skewed workloads.
    """

    estimate: Callable[[dict], float]

    def __call__(self, args: dict) -> float:
        value = float(self.estimate(args))
        if value < 0:
            raise ValueError(f"work estimate must be >= 0, got {value}")
        return value
