"""Recovery of inter-task read sharing through multicast.

Tasks annotate read-only inputs with ``ReadSpec(shared=True, region=...)``.
When several tasks — typically dispatched across different lanes — read the
same region, a conventional runtime issues one DRAM fetch *per task*. The
multicast manager recovers the sharing:

- Requests for a region are **coalesced** inside a short batching window
  (the hardware analogue: the dispatcher sees the shared-read annotations
  of the tasks it just placed).
- One DRAM fetch is issued and the payload rides a **multicast tree** to
  every requesting lane's scratchpad.
- The region stays **resident**, so later tasks on those lanes skip the
  fetch entirely and read at scratchpad bandwidth.

The counters tell the traffic story for figure F5: ``mcast.hits`` (region
already on-lane), ``mcast.coalesced`` (requests folded into one fetch),
``dram.read_bytes`` (what actually moved).
"""

from __future__ import annotations

from typing import Generator

from repro.arch.dram import Dram
from repro.arch.lane import Lane
from repro.arch.noc import MEM_NODE, Noc
from repro.arch.spad import CapacityError
from repro.sim import Counters, Environment


class _Batch:
    """An in-flight coalescing window for one region."""

    def __init__(self, env: Environment, region: str) -> None:
        self.region = region
        self.lanes: set[int] = set()
        self.open = True
        self.done = env.event(name=f"mcast:{region}")


class MulticastManager:
    """Coalesces shared-region fetches and tracks scratchpad residency."""

    def __init__(self, env: Environment, counters: Counters, noc: Noc,
                 dram: Dram, lanes: list[Lane],
                 window_cycles: int = 16) -> None:
        self.env = env
        self.counters = counters
        self.noc = noc
        self.dram = dram
        self.lanes = lanes
        self.window_cycles = window_cycles
        #: region -> set of lane ids currently holding it.
        self._resident: dict[str, set[int]] = {}
        #: region -> open batch collecting requesters.
        self._batches: dict[str, _Batch] = {}

    # -- queries -----------------------------------------------------------

    def is_resident(self, region: str, lane_id: int) -> bool:
        """Whether ``region`` is already in ``lane_id``'s scratchpad."""
        return lane_id in self._resident.get(region, ())

    def resident_lanes(self, region: str) -> set[int]:
        """Lanes currently holding the region."""
        return set(self._resident.get(region, ()))

    def invalidate(self, region: str, lane_id: int) -> None:
        """Drop residency tracking for a region on one lane (called when
        something else evicted it from that lane's scratchpad)."""
        holders = self._resident.get(region)
        if holders is not None:
            holders.discard(lane_id)

    # -- the mechanism -------------------------------------------------------

    def ensure(self, region: str, nbytes: int, locality: float,
               lane_id: int) -> Generator:
        """Make ``region`` resident on ``lane_id``; yields until it is.

        Requests arriving while a batch for the region is open join that
        batch and share its single fetch + multicast.
        """
        if self.is_resident(region, lane_id):
            self.counters.add("mcast.hits")
            return
        batch = self._batches.get(region)
        if batch is not None and batch.open:
            batch.lanes.add(lane_id)
            self.counters.add("mcast.coalesced")
            yield batch.done
            return
        batch = _Batch(self.env, region)
        batch.lanes.add(lane_id)
        self._batches[region] = batch
        self.counters.add("mcast.fetches")
        self.env.process(self._serve_batch(batch, nbytes, locality),
                         name=f"mcast:{region}")
        yield batch.done

    def _serve_batch(self, batch: _Batch, nbytes: int,
                     locality: float) -> Generator:
        # Collect joiners for a short window, then snapshot the group.
        if self.window_cycles:
            yield self.env.timeout(self.window_cycles)
        batch.open = False
        targets = sorted(batch.lanes)
        yield self.dram.fetch(nbytes, locality)
        yield self.noc.multicast(MEM_NODE, [f"lane{i}" for i in targets],
                                 nbytes)
        landed = []
        for lane_id in targets:
            if self._try_allocate(lane_id, batch.region, nbytes):
                landed.append(lane_id)
        self._resident.setdefault(batch.region, set()).update(landed)
        if self._batches.get(batch.region) is batch:
            del self._batches[batch.region]
        self.counters.add("mcast.bytes_delivered", nbytes * len(targets))
        batch.done.succeed()

    def _try_allocate(self, lane_id: int, region: str, nbytes: int) -> bool:
        """Pin the region in a lane's scratchpad, evicting LRU regions."""
        spad = self.lanes[lane_id].spad
        try:
            if spad.free_bytes < nbytes:
                evicted = spad.evict_lru_until(nbytes)
                for victim in evicted:
                    holders = self._resident.get(victim)
                    if holders is not None:
                        holders.discard(lane_id)
            spad.allocate(region, nbytes)
            return True
        except CapacityError:
            # Region larger than the scratchpad: it can still be multicast
            # to the fabric (streamed through), but cannot stay resident.
            self.counters.add("mcast.too_large")
            return False
