"""Recovery of inter-task read sharing through multicast.

Tasks annotate read-only inputs with ``ReadSpec(shared=True, region=...)``.
When several tasks — typically dispatched across different lanes — read the
same region, a conventional runtime issues one DRAM fetch *per task*. The
multicast manager recovers the sharing:

- Requests for a region are **coalesced** inside a short batching window
  (the hardware analogue: the dispatcher sees the shared-read annotations
  of the tasks it just placed).
- One DRAM fetch is issued and the payload rides a **multicast tree** to
  every requesting lane's scratchpad.
- The region stays **resident**, so later tasks on those lanes skip the
  fetch entirely and read at scratchpad bandwidth.

The counters tell the traffic story for figure F5: ``mcast.hits`` (region
already on-lane), ``mcast.coalesced`` (requests folded into one fetch),
``dram.read_bytes`` (what actually moved).

Optionally the manager accepts an *oracle*: the per-region sharing degrees
recovered by :mod:`repro.graph` (``StructureSummary.sharing_degrees``).
With the oracle, a coalescing window closes as soon as every expected
reader of the region has requested it — the hardware analogue of the
dispatcher knowing the sharing set up front instead of guessing with a
fixed timer. Without it (the default) behaviour is bit-identical to the
timer-only design.
"""

from __future__ import annotations

from typing import Generator, Mapping, Optional

from repro.arch.dram import Dram
from repro.arch.lane import Lane
from repro.arch.noc import MEM_NODE, Noc
from repro.arch.spad import CapacityError
from repro.sim import Counters, Environment
from repro.sim.faults import NULL_INJECTOR, FaultInjector
from repro.sim.sanitize import NULL_SANITIZER, Sanitizer


class _Batch:
    """An in-flight coalescing window for one region."""

    def __init__(self, env: Environment, region: str) -> None:
        self.region = region
        self.lanes: set[int] = set()
        self.open = True
        self.done = env.event(name=f"mcast:{region}")
        #: Fired by the oracle when every expected reader has arrived.
        self.filled = env.event(name=f"mcast-full:{region}")


class MulticastManager:
    """Coalesces shared-region fetches and tracks scratchpad residency."""

    def __init__(self, env: Environment, counters: Counters, noc: Noc,
                 dram: Dram, lanes: list[Lane],
                 window_cycles: int = 16,
                 expected_degrees: Optional[Mapping[str, int]] = None,
                 sanitizer: Optional[Sanitizer] = None,
                 injector: Optional[FaultInjector] = None) -> None:
        self.env = env
        self.counters = counters
        self.sanitizer = sanitizer or NULL_SANITIZER
        self.injector = injector or NULL_INJECTOR
        self.noc = noc
        self.dram = dram
        self.lanes = lanes
        self.window_cycles = window_cycles
        #: Oracle: region -> total expected readers (from the recovered
        #: sharing sets). None disables early window close entirely.
        self.expected_degrees = expected_degrees
        #: region -> set of lane ids currently holding it.
        self._resident: dict[str, set[int]] = {}
        #: region -> open batch collecting requesters.
        self._batches: dict[str, _Batch] = {}
        #: region -> requests seen so far (only tracked with the oracle).
        self._requests: dict[str, int] = {}

    # -- queries -----------------------------------------------------------

    def is_resident(self, region: str, lane_id: int) -> bool:
        """Whether ``region`` is already in ``lane_id``'s scratchpad."""
        return lane_id in self._resident.get(region, ())

    def resident_lanes(self, region: str) -> set[int]:
        """Lanes currently holding the region."""
        return set(self._resident.get(region, ()))

    def invalidate(self, region: str, lane_id: int) -> None:
        """Drop residency tracking for a region on one lane (called when
        something else evicted it from that lane's scratchpad)."""
        holders = self._resident.get(region)
        if holders is not None:
            holders.discard(lane_id)

    # -- the mechanism -------------------------------------------------------

    def ensure(self, region: str, nbytes: int, locality: float,
               lane_id: int) -> Generator:
        """Make ``region`` resident on ``lane_id``; yields until it is.

        Requests arriving while a batch for the region is open join that
        batch and share its single fetch + multicast. With the sharing
        oracle, the request that completes the region's expected reader
        set closes the window immediately.
        """
        self._note_request(region)
        if self.is_resident(region, lane_id):
            self.counters.add("mcast.hits")
            self.sanitizer.shared_request(region, nbytes, lane_id, "hit",
                                          self.env.now)
            return
        batch = self._batches.get(region)
        if batch is not None and batch.open:
            batch.lanes.add(lane_id)
            self.counters.add("mcast.coalesced")
            self.sanitizer.shared_request(region, nbytes, lane_id,
                                          "coalesced", self.env.now)
            self._maybe_fill(batch)
            yield batch.done
            return
        batch = _Batch(self.env, region)
        batch.lanes.add(lane_id)
        self._batches[region] = batch
        self.counters.add("mcast.fetches")
        self.sanitizer.shared_request(region, nbytes, lane_id, "fetch",
                                      self.env.now)
        self._maybe_fill(batch)
        self.env.process(self._serve_batch(batch, nbytes, locality),
                         name=f"mcast:{region}")
        yield batch.done

    def _note_request(self, region: str) -> None:
        if self.expected_degrees is not None:
            self._requests[region] = self._requests.get(region, 0) + 1

    def _maybe_fill(self, batch: _Batch) -> None:
        """Fire the batch's ``filled`` event once the oracle says every
        expected reader of the region has requested it."""
        if self.expected_degrees is None or batch.filled.triggered:
            return
        expected = self.expected_degrees.get(batch.region)
        if expected is not None and \
                self._requests.get(batch.region, 0) >= expected:
            batch.filled.succeed()

    def _serve_batch(self, batch: _Batch, nbytes: int,
                     locality: float) -> Generator:
        # Collect joiners for a short window, then snapshot the group.
        # With the oracle, the window also closes the moment the region's
        # whole sharing set has arrived (``filled``); without it, this is
        # exactly the fixed-timer wait.
        if self.window_cycles:
            if self.expected_degrees is None:
                yield self.env.timeout(self.window_cycles)
            else:
                # A Timeout is *triggered* at creation and *processed* when
                # its delay elapses — early close means we woke before that.
                window = self.env.timeout(self.window_cycles)
                yield self.env.any_of([window, batch.filled])
                if batch.filled.triggered and not window.processed:
                    self.counters.add("mcast.early_closes")
        batch.open = False
        targets = sorted(batch.lanes)
        yield self.dram.fetch(nbytes, locality)
        yield self.noc.multicast(MEM_NODE, [f"lane{i}" for i in targets],
                                 nbytes)
        if self.injector.enabled:
            yield from self._refetch_dropped(batch, nbytes, locality,
                                             targets)
        landed = []
        for lane_id in targets:
            if self._try_allocate(lane_id, batch.region, nbytes):
                landed.append(lane_id)
        self._resident.setdefault(batch.region, set()).update(landed)
        if self._batches.get(batch.region) is batch:
            del self._batches[batch.region]
        self.counters.add("mcast.bytes_delivered", nbytes * len(targets))
        self.sanitizer.multicast_served(batch.region, nbytes, len(targets),
                                        self.env.now)
        batch.done.succeed()

    def _refetch_dropped(self, batch: _Batch, nbytes: int,
                         locality: float, targets: list[int]) -> Generator:
        """Sharing-set-driven refetch: the batch's lane set says exactly
        who needed the line, so lanes that missed the delivery get one
        re-fetch + re-send addressed to them alone.  A refetch is recovery
        traffic, not a new serve — it leaves ``mcast.fetches`` and the
        coalescing-batch balance untouched."""
        dropped = self.injector.mcast_dropped(targets)
        if not dropped:
            return
        self.counters.add("faults.injected", len(dropped))
        self.counters.add("faults.mcast_dropped", len(dropped))
        self.counters.add("recovery.refetches")
        self.counters.add("recovery.refetch_bytes", nbytes)
        self.sanitizer.multicast_refetch(batch.region, nbytes,
                                         len(dropped), self.env.now)
        yield self.dram.fetch(nbytes, locality)
        yield self.noc.multicast(MEM_NODE, [f"lane{i}" for i in dropped],
                                 nbytes)

    def _try_allocate(self, lane_id: int, region: str, nbytes: int) -> bool:
        """Pin the region in a lane's scratchpad, evicting LRU regions."""
        spad = self.lanes[lane_id].spad
        try:
            if spad.free_bytes < nbytes:
                evicted = spad.evict_lru_until(nbytes)
                for victim in evicted:
                    holders = self._resident.get(victim)
                    if holders is not None:
                        holders.discard(lane_id)
            spad.allocate(region, nbytes)
            return True
        except CapacityError:
            # Region larger than the scratchpad: it can still be multicast
            # to the fabric (streamed through), but cannot stay resident.
            self.counters.add("mcast.too_large")
            return False
