"""Delta: TaskStream applied to a reconfigurable dataflow accelerator.

Delta is a *hierarchical dataflow* machine: coarse-grained dataflow between
tasks (streams, recovered from dependence annotations) and fine-grained
dataflow inside a task (the CGRA lane executing the task's DFG).

The datapath itself — lanes, NoC, DRAM, scratchpads — is composed by
:class:`repro.machine.Machine`, shared verbatim with the static-parallel
baseline. This module contributes only the TaskStream execution model on
top of it: the hardware dispatcher, the multicast manager, and the
lane-to-lane stream channels.

The run loop:

1. Initial tasks are submitted to the :class:`~repro.core.dispatcher.
   Dispatcher`, which tracks readiness and places ready tasks on lane
   queues under the configured balancing policy.
2. Each lane runs a worker process: pop a task, reconfigure if needed, run
   the functional kernel (which spawns children), set up data movement,
   and execute the compute pipeline.
3. Data movement exploits recovered structure where the feature flags
   allow: shared reads go through the multicast manager; producer→consumer
   streams bypass DRAM through lane-to-lane channels; everything else
   streams to/from memory.

Every mechanism is gated by :class:`~repro.arch.config.FeatureFlags`, which
is how the ablation experiments (figure F2) switch them off one by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Mapping, Optional

from repro.arch.config import MachineConfig
from repro.arch.lane import Lane
from repro.arch.noc import MEM_NODE
from repro.core.dispatcher import Dispatcher
from repro.core.multicast import MulticastManager
from repro.core.program import Program
from repro.core.task import Task, run_kernel
from repro.machine import ExecutionStalled, Machine, RunResult, RunSession
from repro.sched.api import StructureHints
from repro.sim import Store
from repro.sim.faults import LaneFailure, UnrecoverableFault
from repro.sim.trace import NullTracer, Tracer
from repro.util.rng import DeterministicRng

__all__ = ["Delta", "ExecutionStalled"]


@dataclass
class _Channel:
    """A lane-to-lane stream channel for one producer→consumer edge."""

    store: Store
    key: tuple[int, int]
    src_lane: Optional[str] = None


class Delta:
    """The Delta accelerator simulator."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    # -- public API ----------------------------------------------------------

    def run(self, program: Program,
            max_cycles: Optional[float] = None,
            trace: bool = False,
            sharing_degrees: Optional[Mapping[str, int]] = None,
            sched_hints: Optional[StructureHints] = None,
            ) -> RunResult:
        """Simulate ``program`` to completion and return the result.

        With ``trace=True`` the result carries a :class:`~repro.sim.trace.
        Tracer` timeline (task spans per lane, reconfigurations, shared
        fetches) exportable to Chrome tracing JSON.

        ``sharing_degrees`` (region name → expected reader count, e.g.
        ``StructureSummary.sharing_degrees`` from :mod:`repro.graph`)
        enables the multicast oracle: coalescing windows close as soon as
        a region's whole sharing set has requested it. Omitted (the
        default), timing is bit-identical to the fixed-window design.

        ``sched_hints`` (see :mod:`repro.sched.structure`) feeds the
        dispatch policy's structure attach point. Hints must come from a
        **twin** program build — recovering structure executes kernels —
        and are only worth computing when
        :func:`~repro.sched.api.policy_uses_structure` says the
        configured policy reads them.
        """
        machine = Machine.build(self.config,
                                tracer=Tracer() if trace else NullTracer())
        return _DeltaRun(machine, program,
                         sharing_degrees=sharing_degrees,
                         sched_hints=sched_hints).run(max_cycles)


class _DeltaRun:
    """The TaskStream execution model over one fresh machine."""

    def __init__(self, machine: Machine, program: Program,
                 sharing_degrees: Optional[Mapping[str, int]] = None,
                 sched_hints: Optional[StructureHints] = None,
                 ) -> None:
        self.machine = machine
        self.config = machine.config
        self.program = program
        self.tracer = machine.tracer
        self.env = machine.env
        self.metrics = machine.metrics
        self.lanes = machine.lanes
        self.noc = machine.noc
        self.dram = machine.dram
        self.rng = DeterministicRng("delta", program.name,
                                    self.config.seed)
        self.features = self.config.features

        self.sanitizer = machine.sanitizer
        self.sanitizer.set_sharing_degrees(sharing_degrees)
        self.injector = machine.injector
        self.dispatcher = Dispatcher(
            self.env, self.metrics, self.config.dispatch, self.config.lanes,
            self.features, self.rng.fork("dispatch"),
            sanitizer=self.sanitizer)
        if sched_hints is not None:
            self.dispatcher.attach_hints(sched_hints)
        self.mcast = MulticastManager(
            self.env, self.metrics, self.noc, self.dram, self.lanes,
            window_cycles=self.config.effective_mcast_window(),
            expected_degrees=sharing_degrees,
            sanitizer=self.sanitizer, injector=self.injector)
        self.dispatcher.affinity_window = float(
            self.config.lane.config_cycles)
        self.session = RunSession(machine, "delta", program.name,
                                  program.state)
        self._channels: dict[tuple[int, int], _Channel] = {}
        #: task_id -> (prefetch process, lane_id, region name) for the
        #: prefetch extension (double buffering of private reads).
        self._prefetches: dict[int, tuple] = {}

        for lane in self.lanes:
            self.env.process(self._worker(lane), name=f"worker:{lane.name}")
        if self.injector.enabled:
            for failure in self.injector.plan.lane_failures:
                self.env.process(self._lane_failure(failure),
                                 name=f"fault:lane{failure.lane}")

    # -- top level -------------------------------------------------------------

    def run(self, max_cycles: Optional[float]) -> RunResult:
        """Submit the initial tasks, run the event loop, collect results."""
        for task in self.program.initial_tasks:
            self.dispatcher.submit(task)
        self.session.run_until_complete(
            max_cycles,
            finished=lambda: self.dispatcher.drained.triggered,
            stall_detail=lambda: (
                f"with {self.dispatcher.outstanding} tasks outstanding "
                f"(queues: {[q.level for q in self.dispatcher.queues]})\n"
                f"dispatcher: {self.dispatcher.queue_snapshot()}"))
        return self.session.result()

    # -- lane worker -------------------------------------------------------------

    def _worker(self, lane: Lane) -> Generator:
        queue = self.dispatcher.queues[lane.lane_id]
        policy = self.dispatcher.policy
        while True:
            if policy.steals:
                if self.dispatcher.drained.triggered:
                    return
                if self.injector.enabled \
                        and self.dispatcher.is_dead(lane.lane_id):
                    # A fail-stopped lane must not turn thief: stealing
                    # onto a dead queue would strand the haul (the dead
                    # worker requeues one task and goes dark).
                    return
                if queue.level == 0:
                    stolen = yield from self.dispatcher.try_steal(
                        lane.lane_id)
                    if not stolen:
                        yield self.env.timeout(policy.idle_backoff)
                    continue
            task = yield queue.get()
            if self.injector.enabled \
                    and self.dispatcher.is_dead(lane.lane_id):
                # The dispatch raced the fail-stop: the task landed on
                # this queue in the same window the lane died. Hand it
                # back for re-dispatch and go dark.
                self.dispatcher.requeue(task)
                return
            self.dispatcher.kick()  # queue slot freed
            if self.features.prefetch:
                self._maybe_prefetch(lane, queue)
            yield from self._execute(lane, task)

    def _maybe_prefetch(self, lane: Lane, queue: Store) -> None:
        """Prefetch extension: start streaming the *next* queued task's
        private reads into the scratchpad while the popped task runs."""
        head: Optional[Task] = queue.peek()
        if head is None:
            return
        if head.task_id in self._prefetches:
            return
        nbytes = sum(spec.nbytes for spec in head.reads if not spec.shared)
        if nbytes <= 0:
            return
        region = f"pf:{head.task_id}"
        try:
            if lane.spad.free_bytes < nbytes:
                evicted = lane.spad.evict_lru_until(nbytes)
                for victim in evicted:
                    if victim.startswith("pf:"):
                        # Another pending task's prefetch was evicted:
                        # drop its entry so that task streams normally
                        # instead of reading a phantom resident region.
                        self._prefetches.pop(int(victim[3:]), None)
                    else:
                        # A multicast region was evicted; tell the manager.
                        self.mcast.invalidate(victim, lane.lane_id)
            lane.spad.allocate(region, nbytes)
        except Exception:
            return  # does not fit; skip the prefetch
        proc = self.env.process(self._prefetch_pump(lane, nbytes),
                                name=f"prefetch:{head.name}")
        self._prefetches[head.task_id] = (proc, lane.lane_id, region)
        self.metrics.prefetch.add("issued")

    def _prefetch_pump(self, lane: Lane, nbytes: float) -> Generator:
        """Low-priority prefetch: only issues a chunk when the DRAM channel
        is near idle, so demand traffic is never delayed."""
        for size in lane.streams.chunks_of(nbytes):
            while self.dram.channel.backlog_cycles > 8:
                yield self.env.timeout(16)
            yield self.dram.fetch(size, 1.0)
            yield self.noc.unicast(MEM_NODE, lane.name, size)
            yield lane.spad.access(size, is_write=True)
        self.metrics.prefetch.add("bytes", nbytes)

    # -- task execution ------------------------------------------------------------

    def _execute(self, lane: Lane, task: Task) -> Generator:
        t_begin = self.env.now
        self.sanitizer.lane_acquired(lane.lane_id, task, t_begin)
        if lane.config.task_overhead_cycles:
            # Software-runtime regime: dequeue + closure-call cost.
            yield self.env.timeout(lane.config.task_overhead_cycles)
            self.metrics.runtime.add("task_overhead_cycles",
                                     lane.config.task_overhead_cycles)
        was_configured = lane.configured_for(task.type.dfg)
        mapping = yield from lane.configure(task.type.dfg)
        if not was_configured and self.env.now > t_begin:
            self.tracer.span("config", task.type.dfg.name, lane.name,
                             t_begin, self.env.now)
        self.metrics.tasks.add(task.type.name)

        # Functional execution: the kernel does the real computation and
        # spawns children. It must run *before* the started event fires —
        # stream consumers become ready on producer start, and their
        # kernels may read state this kernel writes.
        spawned = run_kernel(task, self.program.state)
        self.dispatcher.task_started(task)
        # Submitting spawns immediately lets pipelined consumers
        # co-schedule with their producers.
        for child in spawned:
            self.dispatcher.submit(child)

        if self.injector.enabled:
            yield from self._ride_out_task_faults(lane, task, mapping)

        procs = []
        in_streams: list[tuple[Store, int]] = []
        chunks_of = lane.streams.chunk_count

        # Prefetch extension: if this task's private reads were prefetched
        # onto *this* lane, wait out any remaining transfer time and serve
        # them from the scratchpad.
        prefetch = self._prefetches.pop(task.task_id, None)
        prefetched_here = False
        prefetch_region = None
        pf_proc = None
        if prefetch is not None:
            pf_proc, pf_lane, prefetch_region = prefetch
            if pf_lane == lane.lane_id:
                prefetched_here = True
                self.metrics.prefetch.add("used")
            else:
                # Stolen to a different lane: the prefetch was wasted.
                self.lanes[pf_lane].spad.release(prefetch_region)
                prefetch_region = None
                pf_proc = None
                self.metrics.prefetch.add("wasted")

        # 1. Annotated reads: shared regions via multicast (when enabled),
        #    everything else streamed privately from DRAM.
        for spec in task.reads:
            store = Store(self.env, capacity=8,
                          name=f"{task.name}.in")
            if spec.shared and self.features.multicast:
                already = self.mcast.is_resident(spec.region, lane.lane_id)
                yield from self.mcast.ensure(spec.region, spec.nbytes,
                                             spec.locality, lane.lane_id)
                self.tracer.instant(
                    "shared-read", spec.region, lane.name, self.env.now,
                    hit=already, nbytes=spec.nbytes)
                procs.append(lane.streams.read_resident(
                    spec.nbytes, dest_store=store, close_dest=True))
            elif not spec.shared and prefetched_here:
                # Serve from the (possibly still landing) prefetch: wait
                # out the remaining transfer, then read at spad bandwidth —
                # compute overlaps with the wait through the store gating.
                procs.append(self.env.process(
                    self._resident_after(pf_proc, lane, spec.nbytes,
                                         store)))
            else:
                if spec.shared:
                    self.metrics.mcast.add("disabled_duplicate_fetches")
                procs.append(lane.streams.stream_in(
                    spec.nbytes, spec.locality, dest_store=store,
                    close_dest=True))
            in_streams.append((store, chunks_of(spec.nbytes)))

        # 2. Stream inputs from producer tasks.
        for producer in task.stream_from:
            if self.features.pipelining:
                channel = self._channel(producer, task)
                store = Store(self.env, capacity=8,
                              name=f"{task.name}.pipe")
                procs.append(self.env.process(
                    self._pull(lane, channel, store, task),
                    name=f"pull:{task.name}"))
                in_streams.append((store, chunks_of(producer.write_bytes)))
            else:
                # Degraded: the producer wrote its output to DRAM; read it
                # back (the memory round trip pipelining would remove).
                nbytes = producer.write_bytes
                if nbytes > 0:
                    store = Store(self.env, capacity=8,
                                  name=f"{task.name}.dep")
                    procs.append(lane.streams.stream_in(
                        nbytes, 1.0, dest_store=store, close_dest=True))
                    in_streams.append((store, chunks_of(nbytes)))

        # 3. Output path: forward to pipelined consumers, else write back.
        out_stores: list[Store] = []
        write_bytes = task.write_bytes
        pipelined_out = (self.features.pipelining
                         and bool(task.stream_consumers))
        if pipelined_out:
            out = Store(self.env, capacity=8, name=f"{task.name}.out")
            out_stores.append(out)
            channels = [self._channel(task, c) for c in task.stream_consumers]
            for channel in channels:
                channel.src_lane = lane.name
            procs.append(self.env.process(
                self._fan_out(out, channels, write_bytes),
                name=f"fanout:{task.name}"))
            self.metrics.pipe.add("streams", len(channels))
        elif write_bytes > 0:
            out = Store(self.env, capacity=8, name=f"{task.name}.out")
            out_stores.append(out)
            locality = task.writes[0].locality if task.writes else 1.0
            procs.append(lane.streams.stream_out(
                write_bytes, locality, src_store=out))
            if task.stream_consumers:
                self.metrics.pipe.add("disabled_round_trips")

        # 4. Compute.
        compute = self.env.process(
            lane.run_pipeline(mapping, task.trips, in_streams, out_stores),
            name=f"compute:{task.name}")
        yield compute

        # 5. Drain any input tokens the compute did not consume (rounding
        #    or early-closed streams), so producers blocked on full stores
        #    always make progress.
        drains = [self.env.process(self._drain(store))
                  for store, _total in in_streams
                  if not (store.closed and store.level == 0)]
        yield self.env.all_of(procs + drains)

        self.tracer.span("task", task.name, lane.name, t_begin,
                         self.env.now, type=task.type.name,
                         trips=task.trips, work=task.work)
        if prefetch_region is not None and prefetched_here:
            lane.spad.release(prefetch_region)
        self.sanitizer.compute_expected(
            lane.lane_id, task,
            0.0 if task.trips <= 0
            else float(mapping.depth + mapping.ii * task.trips))
        self.session.task_completed()
        self.dispatcher.task_completed(task)
        self.sanitizer.lane_released(lane.lane_id, task, self.env.now)

    # -- stream plumbing ------------------------------------------------------------

    def _channel(self, producer: Task, consumer: Task) -> _Channel:
        """Get or lazily create the channel for one producer→consumer edge.

        Capacity covers the whole stream so a producer never blocks on a
        consumer that has not been placed yet (hardware would spill to
        memory at this point; we let the skid buffer cover it and keep the
        traffic accounting on the pull side).
        """
        key = (producer.task_id, consumer.task_id)
        channel = self._channels.get(key)
        if channel is None:
            chunks = self.lanes[0].streams.chunk_count(producer.write_bytes)
            channel = _Channel(Store(self.env, capacity=chunks + 4,
                                     name=f"ch{key}"), key)
            self._channels[key] = channel
        return channel

    def _fan_out(self, out: Store, channels: list[_Channel],
                 write_bytes: float) -> Generator:
        """Copy compute output tokens into every consumer channel.

        Exactly ``write_bytes`` are forwarded regardless of how many compute
        tokens arrive: compute trip counts and output sizes need not match
        (a leaf sort does n·log n trips but emits n elements). Capping the
        forwarded bytes keeps the put count within the channel capacity, so
        a producer can always run to completion even if its consumer has
        not been scheduled yet — the property that makes pipelined
        dispatch deadlock-free.
        """
        chunk = self.config.lane.stream_chunk_bytes
        sent = 0.0
        while True:
            token = yield out.get()
            if token is Store.END:
                break
            size = min(token * self.config.element_bytes, write_bytes - sent)
            if size > 0:
                for channel in channels:
                    # Record at put-issue time: a waiting consumer resumes
                    # before the put's own done event, so recording after
                    # the yield would misreport a legal read as ahead.
                    self.sanitizer.stream_produced(*channel.key, size,
                                                   self.env.now)
                    yield channel.store.put(size)
                sent += size
        while sent < write_bytes:
            size = min(chunk, write_bytes - sent)
            for channel in channels:
                self.sanitizer.stream_produced(*channel.key, size,
                                               self.env.now)
                yield channel.store.put(size)
            sent += size
        for channel in channels:
            channel.store.close()

    def _pull(self, lane: Lane, channel: _Channel,
              in_store: Store, task: Optional[Task] = None) -> Generator:
        """Consumer side of a pipelined stream: chunks hop lane-to-lane."""
        pulled = 0.0
        while True:
            token = yield channel.store.get()
            if token is Store.END:
                break
            size = float(token)
            self.sanitizer.stream_consumed(*channel.key, size, self.env.now)
            src = channel.src_lane
            if src is not None and src != lane.name:
                yield self.noc.unicast(src, lane.name, size)
                if self.injector.enabled:
                    yield from self._replay_chunk(lane, channel, task,
                                                  src, size)
            yield lane.spad.access(size, is_write=True)
            yield in_store.put(size)
            pulled += size
        self.metrics.pipe.add("bytes", pulled)
        in_store.close()

    def _resident_after(self, pf_proc, lane: Lane, nbytes: int,
                        store: Store) -> Generator:
        """Feed a prefetched input to the fabric once its transfer lands."""
        if pf_proc is not None and pf_proc.is_alive:
            yield pf_proc
        yield lane.streams.read_resident(nbytes, dest_store=store,
                                         close_dest=True)

    def _drain(self, store: Store) -> Generator:
        while True:
            token = yield store.get()
            if token is Store.END:
                return

    # -- fault recovery ------------------------------------------------------------

    def _lane_failure(self, failure: LaneFailure) -> Generator:
        """Scheduled lane fail-stop: quiesce the lane at its cycle and let
        the work-aware dispatcher re-balance the backlog onto survivors."""
        yield self.env.timeout(failure.cycle)
        if (self.dispatcher.drained.triggered
                or self.dispatcher.is_dead(failure.lane)):
            return
        self.metrics.faults.add("injected")
        self.metrics.faults.add("lane_failstop")
        rescued = self.dispatcher.fail_lane(failure.lane)
        self.metrics.recovery.add("lanes_lost")
        self.tracer.instant("lane-failure", f"lane{failure.lane}",
                            f"lane{failure.lane}", self.env.now,
                            rescued=rescued)

    def _ride_out_task_faults(self, lane: Lane, task: Task,
                              mapping) -> Generator:
        """Transient-fault window: each execution attempt may die mid-
        flight.  A dead attempt wastes a drawn fraction of the task's
        nominal compute time plus the policy backoff — as *idle* lane
        time, since only the final successful pass drives the fabric (the
        work-accounting invariant holds without exemptions).  The kernel's
        functional effects stand from the first pass; re-execution is a
        timing event, so degraded runs stay functionally correct.
        """
        nominal = (0.0 if task.trips <= 0
                   else float(mapping.depth + mapping.ii * task.trips))
        attempt = 1
        while True:
            wasted = self.injector.task_fault_delay(
                task.name, lane.lane_id, attempt, nominal, self.env.now)
            if wasted is None:
                return
            self.metrics.faults.add("injected")
            self.metrics.faults.add("task_transient")
            self.sanitizer.task_retried(task, lane.lane_id, attempt,
                                        self.env.now)
            self.metrics.recovery.add("retries")
            self.metrics.recovery.add("recovery_cycles", wasted)
            yield self.env.timeout(wasted)
            attempt += 1

    def _replay_chunk(self, lane: Lane, channel: _Channel,
                      task: Optional[Task], src: str,
                      size: float) -> Generator:
        """Stream replay: a corrupt chunk is NACKed and resent from the
        producer's last acknowledged chunk (retained at the source until
        the consumer acks), bounded by the plan's retry budget."""
        replays = 0
        policy = self.injector.plan.retry
        while self.injector.stream_corrupt():
            replays += 1
            self.metrics.faults.add("injected")
            self.metrics.faults.add("stream_corrupt")
            if replays >= policy.max_attempts:
                raise UnrecoverableFault(
                    "stream-replay-exhausted",
                    f"stream chunk from {src} still corrupt after "
                    f"{replays} replays",
                    task=task.name if task is not None else None,
                    lane=lane.lane_id, cycle=self.env.now)
            self.sanitizer.stream_replayed(*channel.key, size,
                                           self.env.now)
            self.metrics.recovery.add("replayed_chunks")
            self.metrics.recovery.add("replayed_bytes", size)
            yield self.env.timeout(policy.backoff_cycles)
            yield self.noc.unicast(src, lane.name, size)
