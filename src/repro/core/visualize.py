"""Visualization: DOT exports and ASCII renders for graphs and mappings.

Three views, all plain text so they work anywhere:

- :func:`task_graph_dot` — the expanded task DAG of a program (after /
  stream dependences distinguished), renderable with Graphviz.
- :func:`dfg_dot` — one task type's dataflow graph.
- :func:`mapping_ascii` — where a DFG's operations landed on the fabric
  grid (the mapper's placement), as a character grid.
"""

from __future__ import annotations

from repro.arch.dfg import Dfg, FuClass
from repro.arch.mapper import Mapping
from repro.core.program import ExpandedProgram


def _dot_escape(text: str) -> str:
    return text.replace('"', r'\"')


def task_graph_dot(expanded: ExpandedProgram,
                   max_tasks: int = 400) -> str:
    """Graphviz DOT for the expanded task graph.

    Solid edges are pipelined stream dependences; dashed edges are
    completion (``after``) dependences. Nodes are coloured per task type.
    Also accepts a :class:`~repro.graph.ir.TaskGraph` (anything with
    ``tasks`` and a typed ``edges`` list) — spawn edges are then drawn
    dotted grey in addition to the dependence edges. Raises
    :class:`ValueError` for graphs beyond ``max_tasks`` (DOT renders of
    huge graphs help nobody — filter first).
    """
    tasks = expanded.tasks
    if len(tasks) > max_tasks:
        raise ValueError(
            f"task graph has {len(tasks)} tasks (> {max_tasks}); "
            f"render a smaller instance")
    palette = ["lightblue", "lightyellow", "lightpink", "lightgreen",
               "lightgrey", "orange", "cyan", "violet"]
    type_names = sorted({t.type.name for t in tasks})
    colors = {name: palette[i % len(palette)]
              for i, name in enumerate(type_names)}
    lines = [
        "digraph taskgraph {",
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontsize=10];',
    ]
    for task in tasks:
        label = _dot_escape(f"{task.type.name}#{task.task_id}")
        lines.append(
            f'  t{task.task_id} [label="{label}", '
            f'fillcolor={colors[task.type.name]}];')
    # Typed-IR input (repro.graph.TaskGraph, duck-typed so this module
    # stays below the graph layer): render its edge list directly.
    typed_edges = getattr(expanded, "edges", None)
    if typed_edges is not None:
        styles = {"after": "[style=dashed]",
                  "stream": "[penwidth=2]",
                  "spawn": "[style=dotted, color=grey]"}
        for edge in typed_edges:
            lines.append(
                f"  t{edge.src} -> t{edge.dst} {styles[edge.kind.value]};")
    else:
        for task in tasks:
            for dep in task.after:
                lines.append(
                    f"  t{dep.task_id} -> t{task.task_id} [style=dashed];")
            for producer in task.stream_from:
                lines.append(
                    f"  t{producer.task_id} -> t{task.task_id} "
                    f"[penwidth=2];")
    lines.append("}")
    return "\n".join(lines)


def dfg_dot(dfg: Dfg) -> str:
    """Graphviz DOT for one dataflow graph.

    Loop-carried edges (distance > 0) are drawn dashed and labelled with
    their distance; node shapes distinguish FU classes.
    """
    shapes = {
        FuClass.ALU: "box",
        FuClass.MUL: "ellipse",
        FuClass.MEM: "parallelogram",
        FuClass.NONE: "plaintext",
    }
    lines = [f'digraph "{_dot_escape(dfg.name)}" {{',
             "  rankdir=LR;",
             "  node [fontsize=10];"]
    for node in dfg.nodes.values():
        shape = shapes[node.fu_class]
        label = _dot_escape(f"{node.name}\\n{node.op.value}")
        lines.append(f'  n{node.node_id} [label="{label}", shape={shape}];')
    for edge in dfg.edges:
        if edge.distance:
            lines.append(
                f'  n{edge.src} -> n{edge.dst} '
                f'[style=dashed, label="d={edge.distance}"];')
        else:
            lines.append(f"  n{edge.src} -> n{edge.dst};")
    lines.append("}")
    return "\n".join(lines)


def mapping_ascii(dfg: Dfg, mapping: Mapping) -> str:
    """Character-grid view of a placement.

    Each fabric cell shows the (possibly stacked) node ids placed on it,
    ``.`` for an empty cell. A legend maps ids to op names, and the
    header reports the achieved II and pipeline depth.
    """
    if not mapping.placement:
        return f"{dfg.name}: (no placed nodes)"
    rows = 1 + max(pos[0] for pos in mapping.placement.values())
    cols = 1 + max(pos[1] for pos in mapping.placement.values())
    grid: dict[tuple[int, int], list[int]] = {}
    for node_id, pos in mapping.placement.items():
        grid.setdefault(pos, []).append(node_id)
    cell_texts = {}
    width = 1
    for pos, ids in grid.items():
        text = "/".join(str(i) for i in sorted(ids))
        cell_texts[pos] = text
        width = max(width, len(text))
    lines = [f"{dfg.name}: II={mapping.ii} depth={mapping.depth} "
             f"(resource MII={mapping.resource_mii}, "
             f"recurrence MII={mapping.recurrence_mii:.2f})"]
    for r in range(rows):
        row_cells = []
        for c in range(cols):
            row_cells.append(cell_texts.get((r, c), ".").center(width))
        lines.append("  " + " ".join(row_cells))
    legend = ", ".join(
        f"{node_id}={dfg.nodes[node_id].name}"
        for node_id in sorted(mapping.placement))
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)
