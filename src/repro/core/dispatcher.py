"""The hardware task dispatcher: readiness tracking plus lane selection.

TaskStream makes the dispatcher a first-class hardware structure. It does
three things:

1. **Readiness tracking.** A task with ``after`` dependences becomes ready
   when they complete. A task with ``stream_from`` dependences becomes
   ready when its producers have *started* (pipelining enabled — consumer
   and producer overlap) or *completed* (pipelining disabled — the stream
   degrades to a memory round trip).
2. **Lane selection.** Delegated to a pluggable
   :class:`~repro.sched.api.SchedulingPolicy` resolved from the registry
   by ``config.policy`` — pool ordering, lane choice, and steal behavior
   all live in :mod:`repro.sched.policies`. The dispatcher keeps the
   mechanism (queues, bookkeeping, fault recovery) and exposes it to the
   policy: ``pool``, ``candidates``, ``least_loaded``, ``affinity_lane``.
3. **Dispatch serialization.** One task dispatches every
   ``dispatch_cycles`` — the hardware dispatch port is a finite resource,
   which is what makes very fine task granularity expensive (figure F6).

Policy decision hooks are plain calls inside the dispatch process (they
never touch the event loop), so two policies that make the same decisions
produce bit-identical runs — the property the golden fingerprints pin for
the default ``work-aware`` entry.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.config import DispatchConfig, FeatureFlags
from repro.core.task import Task
from repro.sched.api import StructureHints, create_policy
from repro.sim import Counters, Environment, Event, Store
from repro.sim.faults import UnrecoverableFault
from repro.sim.sanitize import NULL_SANITIZER, Sanitizer
from repro.util.rng import DeterministicRng


class Dispatcher:
    """Readiness tracking + policy-driven lane queues."""

    def __init__(self, env: Environment, counters: Counters,
                 config: DispatchConfig, lanes: int,
                 features: FeatureFlags, rng: DeterministicRng,
                 sanitizer: Optional[Sanitizer] = None) -> None:
        self.env = env
        self.counters = counters
        self.sanitizer = sanitizer or NULL_SANITIZER
        self.config = config
        self.num_lanes = lanes
        self.features = features
        self.rng = rng

        self.queues: list[Store] = [
            Store(env, config.queue_depth, name=f"dispatch.q{i}")
            for i in range(lanes)
        ]
        #: Estimated outstanding work per lane (queued + running).
        self.pending_work: list[float] = [0.0] * lanes
        #: Count of queued tasks per lane (for steal/round-robin stats).
        self.pending_count: list[int] = [0] * lanes
        #: Lanes that fail-stopped (fault injection); never dispatched to
        #: again. Always present so membership checks stay cheap; empty on
        #: every fault-free run.
        self.dead_lanes: set[int] = set()

        #: Last DFG signature dispatched to each lane — the configuration
        #: the lane will hold when it reaches this point of its queue. Used
        #: by the ``config_affinity`` extension.
        self._last_dfg: dict[int, tuple] = {}
        #: How much extra load (work units) a configured lane may carry and
        #: still win the affinity tie-break. The machine sets this to its
        #: reconfiguration cost — the break-even point.
        self.affinity_window: float = config.work_overhead
        #: Ready tasks awaiting dispatch, in readiness order. The policy
        #: owns the drain order: work-aware walks it largest-first (LPT),
        #: the naive policies FIFO, critical-path by bottom level, ...
        self.pool: list[Task] = []
        #: The pluggable scheduling policy, resolved from the registry.
        self.policy = create_policy(config.policy)
        self.policy.bind(config, lanes, features=features, rng=rng)
        self._wake: Optional[Event] = None
        self._outstanding = 0
        self._drained = env.event(name="dispatch.drained")
        self._started_events: dict[int, Event] = {}
        self._completed_events: dict[int, Event] = {}
        env.process(self._dispatch_loop(), name="dispatcher")

    # -- events -------------------------------------------------------------

    def started_event(self, task: Task) -> Event:
        """Event fired when ``task`` begins executing on a lane."""
        ev = self._started_events.get(task.task_id)
        if ev is None:
            ev = self.env.event(name=f"started:{task.name}")
            self._started_events[task.task_id] = ev
            if task.started:
                ev.succeed(task)
        return ev

    def completed_event(self, task: Task) -> Event:
        """Event fired when ``task`` finishes executing."""
        ev = self._completed_events.get(task.task_id)
        if ev is None:
            ev = self.env.event(name=f"completed:{task.name}")
            self._completed_events[task.task_id] = ev
            if task.completed:
                ev.succeed(task)
        return ev

    @property
    def drained(self) -> Event:
        """Event fired when every submitted task has completed."""
        return self._drained

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet completed."""
        return self._outstanding

    # -- submission -----------------------------------------------------------

    def submit(self, task: Task) -> None:
        """Register a task; it dispatches once its dependences allow."""
        self._outstanding += 1
        self.counters.add("dispatch.submitted")
        self.sanitizer.task_submitted(task, self.env.now)
        waits: list[Event] = []
        for dep in task.after:
            if not dep.completed:
                waits.append(self.completed_event(dep))
        for producer in task.stream_from:
            if self.features.pipelining:
                if not producer.started:
                    waits.append(self.started_event(producer))
            else:
                if not producer.completed:
                    waits.append(self.completed_event(producer))
        if not waits:
            self._make_ready(task)
            return
        gate = self.env.all_of(waits)
        gate.add_callback(lambda _ev, t=task: self._make_ready(t))

    def _make_ready(self, task: Task) -> None:
        self.pool.append(task)
        self._note_pool()
        self.kick()

    def attach_hints(self, hints: Optional[StructureHints]) -> None:
        """Hand recovered-structure hints to the policy (None clears)."""
        self.policy.attach(hints)

    def kick(self) -> None:
        """Wake the dispatch loop (new ready task or a freed queue slot).

        Lane workers also call this right after popping a task, so the
        freed queue slot is re-fillable immediately.
        """
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # -- sched.* observability (opt-in: DispatchConfig.sched_stats) ---------

    @property
    def sched_stats(self) -> bool:
        """Whether opt-in ``sched.*`` counters are recorded. Off by
        default: the counter bag feeds run fingerprints, so scheduling
        observability must not perturb the frozen default-path goldens
        (same contract as the ``faults.*`` group: silent unless armed)."""
        return self.config.sched_stats

    def _note_pool(self) -> None:
        if self.config.sched_stats:
            self.counters.set_max("sched.pool_peak", len(self.pool))

    def note_inversion(self) -> None:
        """Called by a priority policy when the dispatched task was not
        its first choice (a higher-priority task had no eligible lane)."""
        self.counters.add("sched.priority_inversions")

    # -- dispatch loop ----------------------------------------------------------

    #: Work-aware mode binds a task to a lane only when that lane's queue
    #: is nearly empty. Late binding is what lets the dispatcher place the
    #: *largest* remaining task on the least-loaded lane (LPT) instead of
    #: committing everything in arrival order at time zero.
    LOW_WATER = 2

    def _dispatch_loop(self):
        while True:
            picked = self._pick()
            if picked is None:
                self._wake = self.env.event(name="dispatch.wake")
                yield self._wake
                self._wake = None
                continue
            task, lane = picked
            if self.config.dispatch_cycles:
                yield self.env.timeout(self.config.dispatch_cycles)
            self.counters.add("dispatch.cycles", self.config.dispatch_cycles)
            task.lane_id = lane
            self.pending_work[lane] += task.work + self.config.work_overhead
            self.pending_count[lane] += 1
            self._last_dfg[lane] = task.type.dfg.signature()
            self.counters.add("dispatch.dispatched")
            yield self.queues[lane].put(task)
            self.sanitizer.task_dispatched(
                task, lane, self.env.now,
                queue_level=self.queues[lane].level,
                queue_depth=self.config.queue_depth)

    def _pick(self) -> Optional[tuple[Task, int]]:
        """The policy's (task, lane) choice, or None to wait."""
        return self.policy.select(self)

    def least_loaded(self, candidates: list[int]) -> int:
        """The least-loaded candidate lane."""
        return min(candidates, key=lambda i: (self.pending_work[i], i))

    def affinity_lane(self, candidates: list[int],
                      task: Task) -> Optional[int]:
        """A candidate lane already holding this task's configuration and
        loaded within the reconfiguration-cost window, or None. Balancing
        stays primary: beyond the window the match does not pay."""
        best_load = min(self.pending_work[i] for i in candidates)
        window = best_load + self.affinity_window
        matched = [i for i in candidates
                   if self.pending_work[i] <= window
                   and self._last_dfg.get(i) == task.type.dfg.signature()]
        if not matched:
            return None
        return min(matched, key=lambda i: (self.pending_work[i], i))

    def candidates(self, task: Task) -> list[int]:
        """Lanes eligible for ``task``: alive, and not holding one of its
        in-flight stream producers (placing a consumer on its producer's
        lane would serialize the pipeline)."""
        avoid = {p.lane_id for p in task.stream_from
                 if p.lane_id is not None and not p.completed}
        alive = [i for i in range(self.num_lanes)
                 if i not in self.dead_lanes]
        candidates = [i for i in alive if i not in avoid]
        return candidates or alive or list(range(self.num_lanes))

    def _choose_naive(self, task: Task) -> int:
        """Eager single-lane choice for FIFO policies.

        Thin delegation to the policy — kept as a dispatcher method so
        the metamorphic lane-permutation tests can monkeypatch the lane
        decision in one place regardless of the active policy.
        """
        return self.policy.choose_lane(self, task)

    # -- lane-side hooks ------------------------------------------------------

    def task_started(self, task: Task) -> None:
        """Called by a lane worker when it begins executing ``task``."""
        task.started = True
        self.sanitizer.task_started(task, task.lane_id, self.env.now,
                                    pipelining=self.features.pipelining)
        ev = self._started_events.get(task.task_id)
        if ev is not None and not ev.triggered:
            ev.succeed(task)
        self.kick()  # a queue slot just freed up

    def task_completed(self, task: Task) -> None:
        """Called by a lane worker when ``task`` finishes."""
        task.completed = True
        self.sanitizer.task_completed(task, task.lane_id, self.env.now)
        lane = task.lane_id
        if lane is not None:
            self.pending_work[lane] -= task.work + self.config.work_overhead
            self.pending_count[lane] -= 1
        self._outstanding -= 1
        self.counters.add("dispatch.completed")
        ev = self._completed_events.get(task.task_id)
        if ev is not None and not ev.triggered:
            ev.succeed(task)
        if self._outstanding == 0 and not self._drained.triggered:
            self._drained.succeed()
        self.kick()

    # -- fault recovery ----------------------------------------------------------

    def is_dead(self, lane_id: int) -> bool:
        """Whether ``lane_id`` has fail-stopped."""
        return lane_id in self.dead_lanes

    def fail_lane(self, lane_id: int) -> int:
        """Lane fail-stop: quiesce and write off ``lane_id``.

        The lane's in-flight task (if any) drains normally — its results
        are already streaming — but the backlog on its queue is rescued
        and re-dispatched onto surviving lanes by the normal work-aware
        policy (:meth:`_candidates` excludes dead lanes from here on).
        Returns the number of rescued tasks; raises
        :class:`~repro.sim.faults.UnrecoverableFault` when no lane
        survives to take the work.
        """
        if lane_id in self.dead_lanes:
            return 0
        self.dead_lanes.add(lane_id)
        self.sanitizer.lane_failed(lane_id, self.env.now)
        if len(self.dead_lanes) >= self.num_lanes:
            raise UnrecoverableFault(
                "lane-fail-stop",
                f"lane {lane_id} failed and no lane survives to absorb "
                f"its work", lane=lane_id, cycle=self.env.now)
        queue = self.queues[lane_id]
        rescued: list[Task] = []
        while queue.level:
            rescued.append(queue.pop_newest())
        for task in reversed(rescued):  # preserve the queue's FIFO order
            self.requeue(task)
        self.kick()
        return len(rescued)

    def requeue(self, task: Task) -> None:
        """Return a dispatched-but-unstarted task to the ready pool.

        Undoes the placement bookkeeping so the next dispatch is the
        task's single live placement (the sanitizer's conservation rules
        track the requeue rather than exempting it).
        """
        lane = task.lane_id
        if lane is not None:
            self.pending_work[lane] -= task.work + self.config.work_overhead
            self.pending_count[lane] -= 1
        self.sanitizer.task_requeued(task, lane, self.env.now)
        self.counters.add("recovery.redispatched")
        task.lane_id = None
        self.pool.append(task)
        self._note_pool()
        self.kick()

    def queue_snapshot(self) -> str:
        """One-line per-lane dispatcher state for stall diagnostics."""
        parts = []
        for i, queue in enumerate(self.queues):
            state = "dead" if i in self.dead_lanes \
                else f"{queue.level} queued"
            parts.append(f"lane{i}: {state}, "
                         f"{self.pending_count[i]} pending, "
                         f"work {self.pending_work[i]:,.0f}")
        return "; ".join(parts)

    # -- stealing ----------------------------------------------------------------

    def try_steal(self, thief_lane: int):
        """Generator: an idle lane steals from a policy-chosen victim.

        Only active under a stealing policy (``policy.steals``): the
        policy picks the victim *before* the steal latency is paid and
        sizes the haul *after* it elapsed (the victim's backlog may have
        drained meanwhile — classic steal-half semantics). Returns the
        number of tasks stolen. A fail-stopped lane neither steals (the
        guard here) nor gets chosen as victim (the policy's alive
        filter), so no work is ever credited to a dead lane.
        """
        if not self.policy.steals or thief_lane in self.dead_lanes:
            return 0
        if self.config.sched_stats:
            self.counters.add("sched.steal_attempts")
        victim = self.policy.choose_victim(self, thief_lane)
        if victim is None:
            return 0
        yield self.env.timeout(self.config.steal_cycles)
        self.counters.add("dispatch.steals")
        victim_q = self.queues[victim]
        count = self.policy.steal_count(self, victim_q.level)
        stolen: list[Task] = []
        for _ in range(count):
            if victim_q.level == 0:
                break
            stolen.append(victim_q.pop_newest())  # steal from the tail
        overhead = self.config.work_overhead
        for task in stolen:
            self.pending_work[victim] -= task.work + overhead
            self.pending_count[victim] -= 1
            self.pending_work[thief_lane] += task.work + overhead
            self.pending_count[thief_lane] += 1
            task.lane_id = thief_lane
            self.sanitizer.task_stolen(task, victim, thief_lane,
                                       self.env.now)
            yield self.queues[thief_lane].put(task)
        if stolen and self.config.sched_stats:
            self.counters.add("sched.steal_hits")
        return len(stolen)
