"""Task types, task instances, and the kernel execution context.

A :class:`TaskType` couples four things:

- a dataflow graph (``dfg``) — the lane configuration for its compute;
- a *functional kernel* — a Python callable that performs the task's real
  computation on the program state (so simulated runs produce checkable
  results) and spawns child tasks;
- *cost resolvers* — callables mapping the task's arguments to trip count,
  reads, and writes, which drive the timing model;
- *annotations* — a :class:`~repro.core.annotations.WorkHint` for the
  dispatcher.

A :class:`Task` is one instance with concrete arguments plus its dependence
edges (``after`` for completion ordering, ``stream_from`` for pipelined
producer→consumer streams).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.arch.dfg import Dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec

_task_ids = itertools.count()


@dataclass(frozen=True)
class TaskType:
    """The static description of a kind of task."""

    name: str
    dfg: Dfg
    kernel: Callable[["TaskContext", dict], None]
    trips: Callable[[dict], int]
    reads: Callable[[dict], Sequence[ReadSpec]] = lambda args: ()
    writes: Callable[[dict], Sequence[WriteSpec]] = lambda args: ()
    work_hint: Optional[WorkHint] = None

    def instantiate(self, args: Optional[dict] = None,
                    after: Sequence["Task"] = (),
                    stream_from: Sequence["Task"] = ()) -> "Task":
        """Create a task instance of this type."""
        return Task(self, dict(args or {}), list(after), list(stream_from))

    def work_of(self, args: dict) -> float:
        """Work estimate for the dispatcher (falls back to trip count)."""
        if self.work_hint is not None:
            return self.work_hint(args)
        return float(self.trips(args))


class Task:
    """One runnable task instance."""

    def __init__(self, task_type: TaskType, args: dict,
                 after: list["Task"], stream_from: list["Task"]) -> None:
        self.task_id = next(_task_ids)
        self.type = task_type
        self.args = args
        self.after = after
        self.stream_from = stream_from
        #: Filled by the runtime: which lane executed the task.
        self.lane_id: Optional[int] = None
        #: Set True when the task has finished executing.
        self.completed = False
        #: Set True once the task has begun executing on a lane.
        self.started = False
        #: Tasks that consume this task's output as a pipelined stream.
        self.stream_consumers: list[Task] = []
        #: Expansion depth (root = 0); used by the static baseline's phases.
        #: A task must sit strictly below every task it depends on, or the
        #: phase grouping would co-schedule a consumer with its producer.
        self.depth = max((dep.depth + 1 for dep in after + stream_from),
                         default=0)
        for producer in stream_from:
            producer.stream_consumers.append(self)

    # -- resolved cost model ------------------------------------------------

    @property
    def name(self) -> str:
        """Readable identity, e.g. ``spmv_row#42``."""
        return f"{self.type.name}#{self.task_id}"

    @property
    def trips(self) -> int:
        """Loop trip count for the timing model."""
        return int(self.type.trips(self.args))

    @property
    def reads(self) -> list[ReadSpec]:
        """Resolved input specs."""
        return list(self.type.reads(self.args))

    @property
    def writes(self) -> list[WriteSpec]:
        """Resolved output specs."""
        return list(self.type.writes(self.args))

    @property
    def work(self) -> float:
        """Work estimate used by the work-aware dispatcher."""
        return self.type.work_of(self.args)

    @property
    def write_bytes(self) -> int:
        """Total output bytes."""
        return sum(w.nbytes for w in self.writes)

    @property
    def stream_in_bytes(self) -> int:
        """Bytes arriving via pipelined producer streams.

        Convention: each producer forwards its own ``write_bytes``.
        """
        return sum(p.write_bytes for p in self.stream_from)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} args={self.args!r}>"


class TaskContext:
    """What a functional kernel sees while executing.

    ``state`` is the program's shared data (NumPy arrays, dicts, ...).
    ``spawn`` creates child tasks; the runtime decides when they dispatch.
    """

    def __init__(self, state: Any, task: Task) -> None:
        self.state = state
        self.task = task
        self.spawned: list[Task] = []

    def spawn(self, task_type: TaskType, args: Optional[dict] = None,
              after: Sequence[Task] = (),
              stream_from: Sequence[Task] = ()) -> Task:
        """Create a child task.

        ``after`` children wait for those tasks to *complete*;
        ``stream_from`` children consume those tasks' output streams and
        may be co-scheduled with them (pipelined) when the hardware
        supports it.
        """
        child = task_type.instantiate(args, after=after,
                                      stream_from=stream_from)
        # Dependence depth is set at construction; a spawned child must
        # additionally sit below its parent.
        child.depth = max(child.depth, self.task.depth + 1)
        self.spawned.append(child)
        return child


def run_kernel(task: Task, state: Any) -> list[Task]:
    """Execute a task's functional kernel; returns the tasks it spawned."""
    ctx = TaskContext(state, task)
    task.type.kernel(ctx, task.args)
    return ctx.spawned
