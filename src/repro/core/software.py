"""The software-task-runtime model: dynamic scheduling, software costs.

The paper's motivation is that task parallelism and accelerators "seem to
be at odds": a conventional software task runtime (Cilk/TBB-style) *can*
load-balance dynamically, but it pays hundreds of cycles of software
overhead per task for enqueue, dequeue, and closure dispatch — ruinous at
accelerator task granularity — and, crucially, it has erased the program
structure TaskStream keeps, so there is no pipelining and no multicast.

This models exactly that point in the design space on the *same*
datapath: work-stealing dynamic scheduling (so load balance is decent),
software dispatch and per-task costs, dependences through memory. It is a
*configuration* of the Delta execution model — the same dispatcher and
lane workers with software cost constants and every recovery feature off —
which is why it lives next to :mod:`repro.core.delta` rather than in
:mod:`repro.baseline` (whose simulators are independent execution models).
Delta's advantage over it is the *structure recovery* plus cheap hardware
task management, separating the "dynamic beats static" effect (which the
software runtime also enjoys) from the paper's actual contribution.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.arch.config import FeatureFlags, MachineConfig
from repro.core.delta import Delta
from repro.core.program import Program
from repro.machine import RunResult


#: Default software costs (cycles), order-of-magnitude from published
#: task-runtime overhead studies: tens-to-hundreds of cycles per task on
#: the scheduling fast path, more when stealing.
SOFTWARE_DISPATCH_CYCLES = 40      # central enqueue / deque push
SOFTWARE_TASK_OVERHEAD = 120       # dequeue + closure call + bookkeeping
SOFTWARE_STEAL_CYCLES = 300        # a failed local pop + remote steal


def software_runtime_config(base: MachineConfig) -> MachineConfig:
    """Derive the software-runtime machine from a Delta configuration.

    Same lanes, scratchpads, NoC, DRAM. Differences: work-stealing
    scheduling with software costs, no work hints (a closure's work is
    opaque to a software scheduler), no pipelining, no multicast.
    """
    return dataclasses.replace(
        base,
        lane=dataclasses.replace(
            base.lane, task_overhead_cycles=SOFTWARE_TASK_OVERHEAD),
        dispatch=dataclasses.replace(
            base.dispatch,
            policy="steal",
            dispatch_cycles=SOFTWARE_DISPATCH_CYCLES,
            steal_cycles=SOFTWARE_STEAL_CYCLES),
        features=FeatureFlags(work_aware_lb=False, pipelining=False,
                              multicast=False),
    )


class SoftwareRuntime:
    """Simulator facade for the software-task-runtime baseline."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = software_runtime_config(config)
        self._delta = Delta(self.config)

    def run(self, program: Program,
            max_cycles: Optional[float] = None,
            trace: bool = False) -> RunResult:
        """Simulate ``program`` under the software runtime model."""
        result = self._delta.run(program, max_cycles=max_cycles,
                                 trace=trace)
        return dataclasses.replace(result, machine="software")
