"""The static-parallel baseline: same datapath, no task hardware.

This models how the same program runs on an *equivalent static-parallel
design* — identical lanes, scratchpads, NoC and DRAM (the shared
:class:`repro.machine.Machine` composition), but:

- work is partitioned **statically** (block or cyclic split of each phase's
  task list, oblivious to per-task work);
- phases are separated by **barriers** (phase *k+1* starts only when every
  lane has finished phase *k*), so producer→consumer parallelism across
  phases is impossible;
- every task fetches its own inputs — shared regions are fetched once *per
  task* (no multicast), and inter-task data always takes the
  DRAM round trip (producer writes, consumer re-reads).

The task set itself is identical to what Delta executes: the program is
elaborated once through :func:`repro.graph.recover_structure` (the same
functional expansion, plus validation and typed edges) and the baseline
partitions the IR's barrier phases. That sharing is what makes the
comparison apples-to-apples.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.arch.config import MachineConfig
from repro.arch.lane import Lane
from repro.core.program import Program
from repro.core.task import Task
from repro.graph.ir import TaskGraph, recover_structure
from repro.machine import Machine, RunResult, RunSession
from repro.sched.api import SchedulingPolicy, create_policy
from repro.sched.structure import hints_from_graph
from repro.sim import Store
from repro.sim.faults import UnrecoverableFault
from repro.sim.trace import NullTracer, Tracer


class StaticParallel:
    """Simulator for the static-parallel baseline."""

    def __init__(self, config: MachineConfig,
                 partition: str = "block") -> None:
        if partition not in ("block", "cyclic"):
            raise ValueError(f"partition must be block|cyclic: {partition}")
        self.config = config
        self.partition = partition

    def run(self, program: Program,
            max_cycles: Optional[float] = None,
            trace: bool = False) -> RunResult:
        """Recover the program's structure, statically schedule each of
        the IR's barrier phases, and simulate.

        Phase splitting goes through the configured scheduling policy's
        :meth:`~repro.sched.api.SchedulingPolicy.partition` hook — the
        same code path the block-partition dynamic policy uses — so a
        static schedule and Delta share one source of partition logic.
        The default policy's hook delegates straight to the classic
        block/cyclic splitters, bit-identical to the pre-seam baseline.
        """
        graph = recover_structure(program)
        policy = create_policy(self.config.dispatch.policy)
        policy.bind(self.config.dispatch, self.config.lanes,
                    features=self.config.features)
        policy.attach(hints_from_graph(graph))
        machine = Machine.build(self.config,
                                tracer=Tracer() if trace else NullTracer(),
                                multicast_enabled=False)
        return _StaticRun(machine, graph, self.partition,
                          policy).run(max_cycles)


class _StaticRun:
    """The static phase schedule of one recovered task graph."""

    def __init__(self, machine: Machine, graph: TaskGraph,
                 partition: str, policy: SchedulingPolicy) -> None:
        self.machine = machine
        self.config = machine.config
        self.graph = graph
        self.partition = partition
        self.policy = policy
        self.tracer = machine.tracer
        self.env = machine.env
        self.metrics = machine.metrics
        self.lanes = machine.lanes
        self.sanitizer = machine.sanitizer
        self.injector = machine.injector
        self.session = RunSession(machine, "static",
                                  graph.program.name,
                                  graph.program.state)
        #: Tasks stranded on a failed lane, awaiting the repair pass.
        self._orphans: list[Task] = []
        self._lost_lanes: set[int] = set()
        self._finish_cycle = 0.0

    def run(self, max_cycles: Optional[float]) -> RunResult:
        """Run the phase schedule to completion and collect results."""
        # The static schedule has no dispatcher; the whole task set is
        # known up front. Register it with the sanitizer (``counted=False``
        # — no dispatch.* counters to cross-check) so conservation and
        # dependence legality are enforced here too.
        for task in self.graph.tasks:
            self.sanitizer.task_submitted(task, 0.0, counted=False)
        done = self.env.process(self._main(), name="static-main")
        self.session.run_until_complete(
            max_cycles,
            finished=lambda: done.triggered,
            stall_detail=lambda: (
                f"with {len(self.graph.tasks) - self.session.tasks_executed}"
                f" of {len(self.graph.tasks)} tasks unfinished"))
        # The schedule's end time, not ``env.now``: a pending fault timer
        # (e.g. a lane failure scheduled past the program's end) may drain
        # after the last barrier and must not inflate the cycle count.
        return self.session.result(cycles=self._finish_cycle)

    def _main(self) -> Generator:
        for phase_index, phase in enumerate(self.graph.phases):
            if not phase:
                continue
            assignments = self.policy.partition(phase, self.config.lanes,
                                                mode=self.partition)
            workers = []
            for lane, tasks in zip(self.lanes, assignments):
                if tasks:
                    workers.append(self.env.process(
                        self._lane_phase(lane, tasks),
                        name=f"static:{lane.name}:p{phase_index}"))
            # The barrier: every lane finishes before the next phase.
            phase_start = self.env.now
            yield self.env.all_of(workers)
            self.metrics.static.add("barriers")
            if self.injector.enabled:
                yield from self._repair_phase(phase_index)
            self.tracer.span("phase", f"phase{phase_index}", "machine",
                             phase_start, self.env.now,
                             tasks=len(phase))
        self._finish_cycle = self.env.now

    def _lane_phase(self, lane: Lane, tasks: list[Task]) -> Generator:
        for index, task in enumerate(tasks):
            if (self.injector.enabled
                    and self.injector.lane_failed_by(lane.lane_id,
                                                     self.env.now)):
                # Fail-stop at a task boundary (quiesce): the rest of this
                # lane's partition is stranded until the repair pass.
                self._mark_lane_lost(lane.lane_id)
                for orphan in tasks[index:]:
                    self.sanitizer.task_requeued(orphan, lane.lane_id,
                                                 self.env.now)
                    self.metrics.recovery.add("redispatched")
                self._orphans.extend(tasks[index:])
                return
            task.lane_id = lane.lane_id
            self.sanitizer.task_dispatched(task, lane.lane_id,
                                           self.env.now, counted=False)
            yield from self._execute(lane, task)

    def _mark_lane_lost(self, lane_id: int) -> None:
        if lane_id in self._lost_lanes:
            return
        self._lost_lanes.add(lane_id)
        self.metrics.faults.add("injected")
        self.metrics.faults.add("lane_failstop")
        self.metrics.recovery.add("lanes_lost")
        self.sanitizer.lane_failed(lane_id, self.env.now)

    def _repair_phase(self, phase_index: int) -> Generator:
        """Software recovery pass — the barrier cliff.

        The static schedule cannot re-balance: a surviving lane serially
        re-runs every orphaned task while the rest of the machine idles at
        the barrier, paying a per-task software re-partitioning backoff on
        top. (Contrast the dispatcher's :meth:`fail_lane`, which folds a
        dead lane's backlog into normal work-aware placement.)"""
        backoff = self.injector.plan.retry.backoff_cycles
        while self._orphans:
            orphans, self._orphans = self._orphans, []
            repair = self._repair_lane()
            if repair is None:
                raise UnrecoverableFault(
                    "lane-fail-stop",
                    f"no surviving lane to re-run {len(orphans)} orphaned "
                    f"tasks of phase {phase_index}",
                    task=orphans[0].name, cycle=self.env.now)
            cost = backoff * len(orphans)
            if cost:
                self.metrics.recovery.add("recovery_cycles", cost)
                yield self.env.timeout(cost)
            yield self.env.process(
                self._lane_phase(repair, orphans),
                name=f"repair:{repair.name}:p{phase_index}")

    def _repair_lane(self) -> Optional[Lane]:
        """The first lane still alive right now, or None."""
        for lane in self.lanes:
            if not self.injector.lane_failed_by(lane.lane_id,
                                                self.env.now):
                return lane
        return None

    def _execute(self, lane: Lane, task: Task) -> Generator:
        t_begin = self.env.now
        self.sanitizer.lane_acquired(lane.lane_id, task, t_begin)
        self.sanitizer.task_started(task, lane.lane_id, t_begin,
                                    pipelining=False)
        mapping = yield from lane.configure(task.type.dfg)
        self.metrics.tasks.add(task.type.name)

        if self.injector.enabled:
            yield from self._ride_out_task_faults(lane, task, mapping)

        procs = []
        in_streams: list[tuple[Store, int]] = []
        chunks_of = lane.streams.chunk_count
        for spec in task.reads:
            store = Store(self.env, capacity=8, name=f"{task.name}.in")
            if spec.shared:
                # No multicast: every task pays its own fetch.
                self.metrics.static.add("duplicate_shared_bytes",
                                        spec.nbytes)
            procs.append(lane.streams.stream_in(
                spec.nbytes, spec.locality, dest_store=store,
                close_dest=True))
            in_streams.append((store, chunks_of(spec.nbytes)))
        for producer in task.stream_from:
            # Inter-task data always round-trips through DRAM.
            nbytes = producer.write_bytes
            if nbytes > 0:
                store = Store(self.env, capacity=8, name=f"{task.name}.dep")
                procs.append(lane.streams.stream_in(
                    nbytes, 1.0, dest_store=store, close_dest=True))
                in_streams.append((store, chunks_of(nbytes)))

        out_stores: list[Store] = []
        write_bytes = task.write_bytes
        if write_bytes > 0:
            out = Store(self.env, capacity=8, name=f"{task.name}.out")
            out_stores.append(out)
            locality = task.writes[0].locality if task.writes else 1.0
            procs.append(lane.streams.stream_out(
                write_bytes, locality, src_store=out))

        compute = self.env.process(
            lane.run_pipeline(mapping, task.trips, in_streams, out_stores),
            name=f"compute:{task.name}")
        yield compute
        drains = [self.env.process(self._drain(store))
                  for store, _total in in_streams
                  if not (store.closed and store.level == 0)]
        yield self.env.all_of(procs + drains)
        self.tracer.span("task", task.name, lane.name, t_begin,
                         self.env.now, type=task.type.name)
        self.sanitizer.compute_expected(
            lane.lane_id, task,
            0.0 if task.trips <= 0
            else float(mapping.depth + mapping.ii * task.trips))
        self.session.task_completed()
        task.completed = True
        self.sanitizer.task_completed(task, lane.lane_id, self.env.now,
                                      counted=False)
        self.sanitizer.lane_released(lane.lane_id, task, self.env.now)

    def _ride_out_task_faults(self, lane: Lane, task: Task,
                              mapping) -> Generator:
        """Transient-fault window (same policy as Delta's): dead attempts
        waste a fraction of the nominal compute time plus backoff as idle
        lane time; only the final successful pass drives the fabric."""
        nominal = (0.0 if task.trips <= 0
                   else float(mapping.depth + mapping.ii * task.trips))
        attempt = 1
        while True:
            wasted = self.injector.task_fault_delay(
                task.name, lane.lane_id, attempt, nominal, self.env.now)
            if wasted is None:
                return
            self.metrics.faults.add("injected")
            self.metrics.faults.add("task_transient")
            self.sanitizer.task_retried(task, lane.lane_id, attempt,
                                        self.env.now)
            self.metrics.recovery.add("retries")
            self.metrics.recovery.add("recovery_cycles", wasted)
            yield self.env.timeout(wasted)
            attempt += 1

    def _drain(self, store: Store) -> Generator:
        while True:
            token = yield store.get()
            if token is Store.END:
                return
