"""Baselines the paper compares against.

- :class:`StaticParallel` — the equivalent static-parallel design (the
  paper's primary comparison): identical datapath, static partitioning,
  barriers, no task hardware.
- :class:`SoftwareRuntime` — a software task runtime on the same datapath
  (the motivation comparison): dynamic work stealing with software
  dispatch costs, and none of the recovered structure. (Implemented in
  :mod:`repro.core.software` — it is a configuration of the Delta engine —
  and re-exported here for compatibility.)

Both baselines run on the shared :mod:`repro.machine` datapath; nothing
in this package constructs hardware components or reaches into
:mod:`repro.core.delta` internals.
"""

from repro.baseline.static import StaticParallel
from repro.baseline.software import SoftwareRuntime

__all__ = ["StaticParallel", "SoftwareRuntime"]
