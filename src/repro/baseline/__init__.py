"""Baselines the paper compares against.

- :class:`StaticParallel` — the equivalent static-parallel design (the
  paper's primary comparison): identical datapath, static partitioning,
  barriers, no task hardware.
- :class:`SoftwareRuntime` — a software task runtime on the same datapath
  (the motivation comparison): dynamic work stealing with software
  dispatch costs, and none of the recovered structure.
"""

from repro.baseline.static import StaticParallel
from repro.baseline.software import SoftwareRuntime

__all__ = ["StaticParallel", "SoftwareRuntime"]
