"""Compatibility re-export: the software runtime lives in the core layer.

:class:`SoftwareRuntime` is a *configuration* of the Delta execution model
(the same dispatcher and lane workers with software cost constants and all
structure recovery disabled), not an independent baseline simulator, so
its implementation moved to :mod:`repro.core.software`. Import from there
in new code; this module remains so existing
``from repro.baseline.software import SoftwareRuntime`` imports keep
working — and so the layering rule "baseline does not reach into
``repro.core.delta``" holds for the whole package.
"""

from repro.core.software import (
    SOFTWARE_DISPATCH_CYCLES,
    SOFTWARE_STEAL_CYCLES,
    SOFTWARE_TASK_OVERHEAD,
    SoftwareRuntime,
    software_runtime_config,
)

__all__ = [
    "SoftwareRuntime",
    "software_runtime_config",
    "SOFTWARE_DISPATCH_CYCLES",
    "SOFTWARE_TASK_OVERHEAD",
    "SOFTWARE_STEAL_CYCLES",
]
