"""F3: scaling with lane count.

Shape requirements: the Delta-vs-static gap *grows* with lane count
(static imbalance and barriers compound as lanes multiply), and static
self-scaling saturates while Delta keeps scaling. The suite geomean
reaches the paper's 2.2x figure at 16 lanes.
"""

from repro.eval.experiments import f3_lane_scaling


def test_f3_lane_scaling(benchmark, save_report):
    result = benchmark.pedantic(
        f3_lane_scaling, rounds=1, iterations=1,
        kwargs={"lane_counts": (2, 4, 8, 16, 32)})
    save_report("F3", str(result))
    data = result.data
    speedups = data["speedup"]
    assert speedups[-1] > speedups[0], "gap must grow with lanes"
    assert max(speedups) >= 2.0, f"peak speedup only {max(speedups):.2f}"
    # Static saturates: its 16->32 lane gain is smaller than Delta's.
    d16, d32 = data["delta_scaling"][-2:]
    s16, s32 = data["static_scaling"][-2:]
    assert (d32 / d16) > (s32 / s16), "static should saturate first"
