"""F7: dispatcher-policy sensitivity on the skew-heavy workloads.

Shape requirement: the work-aware policy is at least as fast as every
naive policy on every skewed workload (within 5% noise), and strictly
faster than random everywhere.
"""

from repro.eval.experiments import POLICY_NAMES, f7_policies


def test_f7_policies(benchmark, save_report):
    result = benchmark.pedantic(f7_policies, rounds=1, iterations=1)
    save_report("F7", str(result))
    per_policy = result.data["per_policy"]
    workload_count = len(per_policy["work-aware"])
    for policy in POLICY_NAMES:
        if policy == "work-aware":
            continue
        for i in range(workload_count):
            relative = per_policy[policy][i]
            assert relative <= 1.05, (
                f"{policy} beat work-aware by {relative:.2f}x on "
                f"workload #{i}")
    assert all(r < 1.0 for r in per_policy["random"]), \
        "work-aware must strictly beat random"
