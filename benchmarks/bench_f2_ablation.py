"""F2: mechanism ablation — what each recovered structure contributes.

Shape requirements: the geomean ladder rises monotonically as load
balancing, pipelining, and multicast are enabled; load balancing matters
most on the skew workloads (stencil-amr), pipelining on the
dependence-structured ones (mergesort, wavefront, bfs), multicast on the
shared-read ones (spmv, spmm, triangle).
"""

from repro.eval.experiments import ABLATION_STEPS, f2_ablation
from repro.util.stats import geomean


def test_f2_ablation(benchmark, save_report):
    result = benchmark.pedantic(f2_ablation, rounds=1, iterations=1)
    save_report("F2", str(result))
    per_step = result.data["per_step"]
    ladder = [geomean(per_step[label]) for label, _f in ABLATION_STEPS]
    assert ladder == sorted(ladder), f"ablation ladder not monotone: {ladder}"
    assert ladder[-1] / ladder[0] > 1.5, "mechanisms contribute too little"

    by_workload = {row[0]: row[1:] for row in result.data["rows"]}

    def step_gain(workload, step_index):
        values = [float(v.rstrip("x")) for v in by_workload[workload]]
        return values[step_index] / values[step_index - 1]

    assert step_gain("stencil-amr", 1) > 1.3      # +lb
    assert step_gain("mergesort", 2) > 1.2        # +pipe
    assert step_gain("wavefront", 2) > 1.2        # +pipe
    assert step_gain("spmv", 3) > 1.5             # +mcast
    assert step_gain("triangle", 3) > 1.5         # +mcast
