"""Pinned hot-path microharness: profile the DES core, gate its speed.

Two roles:

1. **Profiler** (standalone): run the pinned workload subset under
   ``cProfile`` and print the top frames, so successive PRs attack the
   same, comparable profile::

       PYTHONPATH=src python benchmarks/bench_hotpath.py --profile
       PYTHONPATH=src python benchmarks/bench_hotpath.py --engine reference --profile

2. **Perf-regression gate** (pytest, the CI ``bench`` job): re-measure
   the pinned subset and compare events/sec against the newest committed
   ``BENCH_*.json``; fail on a >20% drop, skip when no baseline exists::

       PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py

The pin: the same workloads, lane count, and ``MachineConfig`` builder as
tier-1 and the trajectory recorder (tools/bench_trajectory.py) —
tests/test_bench_harness.py enforces the config identity. ``--repro-jobs``
/ ``REPRO_JOBS`` are honoured exactly as in :mod:`repro.eval.parallel`
(exported by benchmarks/conftest.py, resolved by ``resolve_jobs``).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_trajectory  # noqa: E402  (tools/, path set up above)

#: The pinned subset is defined next to the trajectory recorder so the
#: gate re-measures exactly the mix the committed file recorded.
PINNED_WORKLOADS = bench_trajectory.PINNED_WORKLOADS
PINNED_LANES = bench_trajectory.PINNED_LANES

#: Best-of-N timing for the regression gate (events are deterministic,
#: wall-clock is not; best-of damps scheduler noise).
MEASURE_ROUNDS = 3


def measure_pinned(engine_choice: str = "fast") -> dict:
    """Best-of-N serial measurement of the pinned subset."""
    return bench_trajectory.measure_matrix(
        engine_choice, lanes=PINNED_LANES, workloads=PINNED_WORKLOADS,
        rounds=MEASURE_ROUNDS)


# ------------------------------------------------------ pytest gate

def test_hotpath_events_per_sec_no_regression(save_report):
    """The CI perf gate: fast-engine throughput vs the committed point.

    Throughput is compared on the pinned subset's events/sec against the
    ``pinned`` section of the newest committed ``BENCH_*.json`` — the
    same workload mix, so the comparison is like-for-like. Best-of-3
    timing and a 20% tolerance damp CI runner noise; the per-workload
    throughputs are checked under the same tolerance.
    """
    baseline_path = bench_trajectory.latest_baseline()
    if baseline_path is None:
        pytest.skip("no committed BENCH_*.json baseline yet")
    baseline = json.loads(baseline_path.read_text())
    baseline_pinned = baseline.get("pinned")
    if baseline_pinned is None:
        pytest.skip(f"{baseline_path.name} predates the pinned section")

    current = measure_pinned("fast")
    report = [f"baseline: {baseline_path.name} "
              f"({baseline_pinned['events_per_sec']:,} events/s pinned)",
              f"pinned subset now: {current['events_per_sec']:,} events/s "
              f"({current['wall_clock_s']:.2f}s, {current['events']:,} "
              "events)"]
    save_report("BENCH_HOTPATH", "\n".join(report))

    problems = bench_trajectory.perf_regressions(
        {"suite": current}, {"suite": baseline_pinned},
        tolerance=bench_trajectory.DEFAULT_TOLERANCE)
    assert not problems, (
        "hot-path throughput regressed vs "
        f"{baseline_path.name}:\n  " + "\n  ".join(problems))


def test_fast_engine_beats_reference_on_pinned_subset():
    """The fast kernel must actually be faster than its oracle."""
    fast = measure_pinned("fast")
    reference = measure_pinned("reference")
    assert fast["wall_clock_s"] < reference["wall_clock_s"], (
        f"fast engine ({fast['wall_clock_s']:.2f}s) not faster than "
        f"reference ({reference['wall_clock_s']:.2f}s)")


# ------------------------------------------------------ standalone profiler

def profile_pinned(engine_choice: str, top: int) -> str:
    """cProfile the pinned subset, return the top-frame table."""
    profiler = cProfile.Profile()
    with bench_trajectory.engine(engine_choice):
        profiler.enable()
        for name in PINNED_WORKLOADS:
            bench_trajectory.measure_point(name, PINNED_LANES)
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=("fast", "reference"),
                        default="fast")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top frames")
    parser.add_argument("--top", type=int, default=25,
                        help="frames to print with --profile")
    parser.add_argument("--repro-jobs", type=int, default=None, metavar="N",
                        help="worker processes for the suite timing pass "
                             "(default: $REPRO_JOBS, else serial; same "
                             "resolution as eval/parallel.py)")
    args = parser.parse_args(argv)

    if args.profile:
        print(profile_pinned(args.engine, args.top))
        return 0

    from repro.eval.parallel import resolve_jobs

    matrix = measure_pinned(args.engine)
    print(f"pinned subset [{args.engine}]: "
          f"{matrix['wall_clock_s']:.2f}s, {matrix['events']:,} events, "
          f"{matrix['events_per_sec']:,} events/s")
    for name, point in matrix["workloads"].items():
        print(f"  {name:<14} {point['sim_s']:>7.3f}s "
              f"{point['events_per_sec']:>12,} events/s")
    jobs = resolve_jobs(args.repro_jobs)
    if jobs > 1:
        from repro.eval.runner import run_suite

        with bench_trajectory.engine(args.engine):
            t0 = time.perf_counter()
            run_suite(lanes=PINNED_LANES, jobs=jobs, verify=False)
            wall = time.perf_counter() - t0
        print(f"full suite with --repro-jobs {jobs}: {wall:.2f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
