"""F4: load imbalance — CV of per-lane busy cycles.

Shape requirement: Delta's work-aware balancing yields a (much) lower
busy-cycle CV than static partitioning on the skewed workloads, and never
a materially higher one.
"""

from repro.eval.experiments import f4_load_balance


def test_f4_load_balance(benchmark, save_report):
    result = benchmark.pedantic(f4_load_balance, rounds=1, iterations=1)
    save_report("F4", str(result))
    comparisons = result.data
    skewed = {"spmv", "spmm", "triangle", "stencil-amr", "bfs"}
    for c in comparisons:
        if c.workload in skewed:
            assert c.delta.imbalance_cv < c.static.imbalance_cv, (
                f"{c.workload}: delta CV {c.delta.imbalance_cv:.3f} not "
                f"below static {c.static.imbalance_cv:.3f}")
        assert c.delta.imbalance_cv < c.static.imbalance_cv + 0.05
