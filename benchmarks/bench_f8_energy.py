"""F8: energy savings from structure recovery (extension experiment).

Shape requirements: Delta saves energy on every workload (it strictly
removes data movement and finishes earlier, so static energy drops too),
and the savings correlate with the traffic reductions of F5.
"""

from repro.eval.experiments import f8_energy


def test_f8_energy(benchmark, save_report):
    result = benchmark.pedantic(f8_energy, rounds=1, iterations=1)
    save_report("F8", str(result))
    ratios = result.data["ratios"]
    assert all(r > 1.0 for r in ratios), "Delta must save energy everywhere"
    comparisons = result.data["comparisons"]
    # The biggest energy saver should be among the big traffic savers.
    by_energy = max(range(len(ratios)), key=lambda i: ratios[i])
    traffic_order = sorted(range(len(comparisons)),
                           key=lambda i: -comparisons[i].traffic_ratio)
    assert by_energy in traffic_order[:3]
