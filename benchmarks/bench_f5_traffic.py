"""F5: DRAM traffic and structure-recovery counters.

Shape requirements: large traffic reductions on the shared-read workloads
(multicast converts per-task fetches into one), visible reductions on the
pipelined workloads (forwarded streams skip the memory round trip), and
no workload where Delta moves more DRAM bytes than the static design.
"""

from repro.eval.experiments import f5_traffic


def test_f5_traffic(benchmark, save_report):
    result = benchmark.pedantic(f5_traffic, rounds=1, iterations=1)
    save_report("F5", str(result))
    by_name = {c.workload: c for c in result.data}
    for name in ("spmv", "spmm", "triangle"):
        ratio = by_name[name].traffic_ratio
        assert ratio > 2.0, f"{name}: shared-read reduction only {ratio:.2f}x"
    # knn shares only its query block; the private database scan dominates.
    for name in ("mergesort", "wavefront", "histogram", "knn"):
        ratio = by_name[name].traffic_ratio
        assert ratio > 1.3, f"{name}: pipelined reduction only {ratio:.2f}x"
    for c in by_name.values():
        assert c.traffic_ratio >= 0.99, \
            f"{c.workload}: Delta must not add traffic"
