"""Shared helpers for the benchmark targets.

Each ``bench_*.py`` regenerates one table/figure from the paper
reconstruction (see DESIGN.md section 6). Reports are printed and also
written to ``results/<id>.txt`` so the artifacts survive output capture.

``--repro-jobs N`` fans the suite-based benchmarks out over N worker
processes (it exports ``REPRO_JOBS``, which ``run_suite`` honours when no
explicit ``jobs`` argument is given); results are bit-identical to a
serial run — see docs/evaluation.md.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-jobs", type=int, default=None, metavar="N",
        help="worker processes for suite-based benchmarks "
             "(default: serial, or $REPRO_JOBS)")


@pytest.fixture(autouse=True, scope="session")
def _export_repro_jobs(request):
    """Export --repro-jobs as REPRO_JOBS for the duration of the session."""
    jobs = request.config.getoption("--repro-jobs")
    if not jobs:
        yield
        return
    previous = os.environ.get("REPRO_JOBS")
    os.environ["REPRO_JOBS"] = str(jobs)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = previous


@pytest.fixture
def save_report():
    """Write an experiment's rendered report under results/."""

    def _save(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
