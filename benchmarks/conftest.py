"""Shared helpers for the benchmark targets.

Each ``bench_*.py`` regenerates one table/figure from the paper
reconstruction (see DESIGN.md section 6). Reports are printed and also
written to ``results/<id>.txt`` so the artifacts survive output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def save_report():
    """Write an experiment's rendered report under results/."""

    def _save(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
