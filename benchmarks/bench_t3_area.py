"""T3: area overhead of the TaskStream hardware additions.

Shape requirement (the paper's claim class): the task hardware — queues,
annotation tables, the work-aware dispatcher, multicast routing state —
is a small single-digit percentage of the accelerator.
"""

from repro.arch.config import default_delta_config
from repro.eval.experiments import t3_area


def test_t3_area(benchmark, save_report):
    result = benchmark.pedantic(t3_area, rounds=1, iterations=1)
    save_report("T3", str(result))
    breakdown = result.data
    assert 0.0 < breakdown.overhead_fraction < 0.10, (
        f"TaskStream overhead {breakdown.overhead_fraction:.1%} outside "
        f"the small-single-digit band")


def test_t3_area_scales_with_lanes(benchmark):
    """Overhead fraction stays bounded as the machine grows."""

    def sweep():
        from repro.arch.area import estimate_area

        return [estimate_area(default_delta_config(lanes=n))
                .overhead_fraction for n in (2, 8, 32)]

    fractions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(f < 0.10 for f in fractions)
