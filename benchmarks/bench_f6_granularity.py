"""F6: task-granularity sensitivity.

Shape requirements: Delta's absolute cycles form a U-curve (fine grain
pays dispatch/config/stream-fill overhead, coarse grain rebuilds
imbalance), while the *speedup over static* is largest at fine grain —
static designs handle many small skewed tasks worst.
"""

from repro.eval.experiments import f6_granularity


def test_f6_granularity(benchmark, save_report):
    result = benchmark.pedantic(f6_granularity, rounds=1, iterations=1)
    save_report("F6", str(result))
    data = result.data
    cycles = data["delta_cycles"]
    speedups = data["speedup"]
    best = min(range(len(cycles)), key=lambda i: cycles[i])
    assert 0 < best < len(cycles) - 1, (
        f"expected interior optimum, best grain index {best}")
    assert speedups[0] > speedups[-1], \
        "speedup should be largest at fine granularity"
