"""Extended-suite check: spgemm and pagerank beyond the core ten.

Shape requirements: both extended workloads show large Delta wins — they
stack extreme skew on top of large shared operands, the combination the
mechanisms target.
"""

from repro.arch.config import default_delta_config
from repro.eval.runner import compare
from repro.eval.tables import format_table
from repro.workloads import get_workload


def run_extended():
    rows = []
    speedups = {}
    for name in ("ext-spgemm", "ext-pagerank"):
        workload = get_workload(name)
        c = compare(workload, default_delta_config(lanes=8))
        speedups[name] = c.speedup
        rows.append(c.row())
    text = format_table(
        ["workload", "delta cyc", "static cyc", "speedup",
         "delta CV", "static CV"],
        rows, title="EXT: extended-suite workloads")
    return speedups, text


def test_extended_suite(benchmark, save_report):
    speedups, text = benchmark.pedantic(run_extended, rounds=1,
                                        iterations=1)
    save_report("EXT", text)
    assert speedups["ext-spgemm"] > 2.0
    assert speedups["ext-pagerank"] > 2.0
