"""F10: Delta vs a software task runtime on the same datapath.

Shape requirements: Delta beats the software runtime on every workload
(it keeps the structure the runtime erased, and its task management is
cheap); the advantage grows as tasks get finer; and the software runtime
is roughly competitive with the *static* design overall (dynamic balance
vs per-task overhead) — which is precisely the dilemma TaskStream breaks.
"""

from repro.eval.experiments import f10_software_runtime
from repro.util.stats import geomean


def test_f10_software_runtime(benchmark, save_report):
    result = benchmark.pedantic(f10_software_runtime, rounds=1,
                                iterations=1)
    save_report("F10", str(result))
    data = result.data
    assert all(r > 1.0 for r in data["vs_software"]), \
        "Delta must beat the software runtime everywhere"
    assert geomean(data["vs_software"]) > 1.5
    ratios = data["grain_ratios"]
    assert ratios[0] > ratios[-1], \
        "advantage must grow at finer task granularity"
    # The software runtime is in static's ballpark overall (0.5x - 1.5x).
    sv = geomean(data["software_vs_static"])
    assert 0.5 < sv < 1.5, f"software/static geomean {sv:.2f} implausible"
