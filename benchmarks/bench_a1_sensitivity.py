"""A1: sensitivity of the design choices DESIGN.md fixes by fiat.

Shape requirements: a wider multicast window strictly reduces duplicate
fetches and the default window sits near the knee; the stream chunk size
has an interior optimum (small chunks pay per-chunk overhead, huge chunks
serialize pipeline stages); queue depth beyond the late-binding low-water
mark changes little.
"""

from repro.eval.experiments import a1_design_sensitivity


def test_a1_design_sensitivity(benchmark, save_report):
    result = benchmark.pedantic(a1_design_sensitivity, rounds=1,
                                iterations=1)
    save_report("A1", str(result))
    data = result.data

    fetches = data["window_fetches"]
    assert all(a >= b for a, b in zip(fetches, fetches[1:])), \
        "wider window must not increase fetches"
    assert fetches[0] > fetches[-1], "coalescing must reduce fetches"
    by_window = dict(zip(data["windows"], data["window_cycles"]))
    assert by_window[32] < by_window[0], \
        "coalescing window must beat no-coalescing"

    chunk_cycles = data["chunk_cycles"]
    best = chunk_cycles.index(min(chunk_cycles))
    assert best != len(chunk_cycles) - 1, \
        "largest chunk must not be optimal (stage serialization)"
    assert chunk_cycles[-1] > min(chunk_cycles)

    depth_cycles = data["depth_cycles"]
    spread = (max(depth_cycles) - min(depth_cycles)) / min(depth_cycles)
    assert spread < 0.10, \
        f"queue depth should barely matter under late binding ({spread:.0%})"
