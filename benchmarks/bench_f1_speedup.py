"""F1: the headline claim — Delta vs the equivalent static-parallel design.

Paper: "our execution model can improve performance by 2.2x" over an
equivalent static-parallel design. At this reproduction's fidelity the
shape requirements are: Delta wins on *every* workload, the biggest wins
come from the shared-read and skew-heavy workloads, and the geomean lands
near 2x (it reaches ~2.2x at 16 lanes; see F3).
"""

from repro.eval.experiments import f1_headline_speedup
from repro.eval.runner import suite_geomean


def test_f1_headline_speedup(benchmark, save_report):
    result = benchmark.pedantic(f1_headline_speedup, rounds=1, iterations=1)
    save_report("F1", str(result))
    comparisons = result.data
    geo = suite_geomean(comparisons)
    assert len(comparisons) == 10
    for c in comparisons:
        assert c.speedup > 1.0, f"{c.workload}: Delta must win ({c.speedup})"
    assert geo > 1.7, f"geomean speedup degraded to {geo:.2f}"
