"""T1: machine-configuration table (Delta and the equivalent baseline)."""

from repro.eval.experiments import t1_machine_config


def test_t1_machine_config(benchmark, save_report):
    result = benchmark.pedantic(t1_machine_config, rounds=1, iterations=1)
    save_report("T1", str(result))
    labels = [row[0] for row in result.data]
    assert "lanes" in labels and "DRAM bw" in labels
