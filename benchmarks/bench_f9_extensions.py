"""F9: extension features (config affinity, prefetch) in their regimes.

These are future-work-direction extensions, off by default. Shape
requirements: each pays off clearly in its target regime — affinity slashes
reconfigurations on a config-thrashing mix with expensive configs, and
low-priority prefetch hides stream-fill latency on small latency-bound
tasks without hurting demand traffic.
"""

from repro.eval.experiments import f9_extensions


def test_f9_extensions(benchmark, save_report):
    result = benchmark.pedantic(f9_extensions, rounds=1, iterations=1)
    save_report("F9", str(result))
    data = result.data
    assert data["affinity_gain"] > 1.3, \
        f"affinity gain only {data['affinity_gain']:.2f}x in its regime"
    assert data["misses_after"] < data["misses_before"] / 2
    assert data["prefetch_gain"] > 1.02, \
        f"prefetch gain only {data['prefetch_gain']:.2f}x"
    assert data["prefetch_used"] > 0
