"""T2: workload-characteristics table for the ten-workload suite."""

from repro.eval.experiments import t2_workload_table


def test_t2_workload_table(benchmark, save_report):
    result = benchmark.pedantic(t2_workload_table, rounds=1, iterations=1)
    save_report("T2", str(result))
    names = {row[0] for row in result.data}
    assert len(names) == 10, f"expected 10 workloads, got {names}"
