#!/usr/bin/env python
"""Regenerate ``tests/golden_fingerprints.json``.

Recomputes the comparison fingerprint of every point in the frozen matrix
(the full workload registry × lane counts — the same enumeration
``tests/test_golden_fingerprints.py`` checks against) and rewrites the
golden file. Run it after an *intentional* behaviour change::

    PYTHONPATH=src python tools/freeze_fingerprints.py

then review the JSON diff: each changed key names the workload×config
whose bit-level behaviour moved.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path,
        default=REPO_ROOT / "tests" / "golden_fingerprints.json",
        help="where to write the frozen fingerprints")
    parser.add_argument(
        "--check", action="store_true",
        help="do not write; exit 1 if the file would change")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT))
    from tests.test_golden_fingerprints import (
        compute_fingerprint,
        golden_points,
        point_key,
    )

    fingerprints = {}
    for name, lanes in golden_points():
        key = point_key(name, lanes)
        fingerprints[key] = compute_fingerprint(name, lanes)
        print(f"  {key:<28} {fingerprints[key][:16]}…")

    payload = {
        "_comment": (
            "Frozen comparison fingerprints (workload × lanes). "
            "Regenerate with: PYTHONPATH=src python "
            "tools/freeze_fingerprints.py"),
        "fingerprints": fingerprints,
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.check:
        current = (args.output.read_text()
                   if args.output.exists() else "")
        if current != text:
            print(f"{args.output} is stale", file=sys.stderr)
            return 1
        print(f"{args.output} is up to date")
        return 0
    args.output.write_text(text)
    print(f"wrote {len(fingerprints)} fingerprints to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
