#!/usr/bin/env python
"""Scripted client smoke for ``repro serve`` (CI runs this).

Launches the real CLI entry point as a subprocess, then drives it over
plain ``http.client``:

1. submit a sweep and stream its NDJSON events to completion;
2. submit a second job behind it and cancel it while it is still queued
   (``--max-concurrent-jobs 1`` makes the window deterministic);
3. re-submit the first sweep and require every point to come back
   ``cached``, with ``/healthz`` reporting a nonzero cache hit rate and
   balanced conservation counters;
4. stop the server with SIGTERM and require a clean exit.

Exit code 0 on success; any protocol violation prints a diagnostic and
exits 1.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SWEEP = {"kind": "sweep", "workloads": ["micro-chain", "micro-skewed"],
         "lanes": 4}


def fail(message: str) -> None:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def request(port: int, method: str, path: str, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    return response.status, (json.loads(data) if data else None)


def stream(port: int, job_id: str) -> list:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("GET", f"/jobs/{job_id}/events")
        response = conn.getresponse()
        if response.status != 200:
            fail(f"stream for {job_id} answered {response.status}")
        return [json.loads(line)
                for line in response.read().decode().splitlines()]
    finally:
        conn.close()


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", cache_dir, "--max-concurrent-jobs", "1"],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    try:
        line = server.stdout.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if not match:
            fail(f"no listen announcement, got: {line!r}")
        port = int(match.group(1))
        print(f"server up on port {port}")

        # 1. Submit and stream a sweep to completion.
        status, created = request(port, "POST", "/jobs", SWEEP)
        if status != 201:
            fail(f"submit answered {status}: {created}")
        # 2. A second job queues behind it (one slot); cancel it there.
        status, second = request(port, "POST", "/jobs",
                                 dict(SWEEP, seed=1))
        if status != 201:
            fail(f"second submit answered {status}: {second}")
        status, cancelled = request(port, "DELETE",
                                    f"/jobs/{second['job']}")
        if status != 202:
            fail(f"cancel answered {status}: {cancelled}")

        events = stream(port, created["job"])
        if events[-1].get("state") != "completed":
            fail(f"first job ended {events[-1]}")
        points = [e for e in events if e.get("event") == "point"]
        if len(points) != len(SWEEP["workloads"]):
            fail(f"expected {len(SWEEP['workloads'])} points, "
                 f"got {len(points)}")
        print(f"first job completed with {len(points)} points")

        final = stream(port, second["job"])[-1]
        if final.get("state") != "cancelled":
            fail(f"cancelled job ended {final}")
        print("second job cancelled cleanly")

        # 3. Warm repeat: identical sweep, every point served from cache.
        status, repeat = request(port, "POST", "/jobs", SWEEP)
        if status != 201:
            fail(f"warm submit answered {status}: {repeat}")
        warm = [e for e in stream(port, repeat["job"])
                if e.get("event") == "point"]
        outcomes = sorted(e["outcome"] for e in warm)
        if outcomes != ["cached"] * len(SWEEP["workloads"]):
            fail(f"warm repeat was not fully cached: {outcomes}")

        status, health = request(port, "GET", "/healthz")
        if status != 200:
            fail(f"healthz answered {status}")
        if not health["cache"]["hits"] or health["cache"]["hit_rate"] <= 0:
            fail(f"no cache hits on the warm repeat: {health['cache']}")
        if not health["conservation_ok"]:
            fail(f"conservation violated: {health['queue']}")
        if health["queue"] != {"submitted": 3, "queued": 0, "running": 0,
                               "completed": 2, "cancelled": 1, "failed": 0,
                               "rejected": 0, "replayed": 0}:
            fail(f"unexpected queue counts: {health['queue']}")
        print(f"warm repeat cached; hit rate "
              f"{health['cache']['hit_rate']:.2f}, conservation ok")

        # The self-healing counters must exist (and be quiet on a calm
        # run); CI greps the printed names.
        lease_names = ("lease_renewals", "lease_expired", "lease_requeued",
                       "lease_failed", "lease_zombie", "shed", "gc_jobs")
        for name in lease_names:
            if name not in health["serve"]:
                fail(f"healthz missing serve.{name}: "
                     f"{sorted(health['serve'])}")
        for name in ("lease_expired", "lease_requeued", "lease_failed",
                     "shed"):
            if health["serve"][name]:
                fail(f"calm run counted serve.{name}="
                     f"{health['serve'][name]}")
        if "worker_deaths" not in health.get("eval", {}):
            fail(f"healthz missing eval.worker_deaths: {health.get('eval')}")
        if health["eval"]["worker_deaths"]:
            fail(f"calm run counted eval.worker_deaths="
                 f"{health['eval']['worker_deaths']}")
        print("healthz counters: "
              + " ".join(f"serve.{name}={health['serve'][name]:.0f}"
                         for name in lease_names)
              + f" eval.worker_deaths={health['eval']['worker_deaths']:.0f}")
    finally:
        # 4. Graceful stop.
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not stop on SIGTERM")
    if server.returncode != 0:
        fail(f"server exited {server.returncode}")
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
