#!/usr/bin/env python
"""Import-layering check for the ``repro`` package.

The architecture is layered bottom-up::

    repro.util      (leaf helpers)
    repro.store     (the on-disk cache substrate; imports util ONLY)
    repro.sim       (discrete-event kernel)
    repro.arch      (hardware component models)
    repro.machine   (datapath composition + run lifecycle + metrics bus)
    repro.core      (the Delta / TaskStream execution model)
    repro.graph     (the TaskGraph IR: recovered program structure)
    repro.sched     (scheduling policies: protocol, registry, hints)
    repro.baseline  (alternative execution models on the same machine)
    repro.isa / repro.workloads / repro.eval
    repro.serve     (the sweep server: harness + store + metrics, no sim)
    repro.cli       (top)

The store layer is deliberately narrow: it sits just above util and
below everything that simulates. Only the cache schemas (``eval`` and
``graph``) and the CLI consume it; the simulation stack (``sim`` /
``arch`` / ``machine`` / ``core``) must never know results are cached —
caching above, simulating below.

The sched layer is deliberately split-level: ``sched.api`` (protocol +
registry) sits *below* core — the dispatcher resolves its policy from the
registry — while ``sched.structure`` sits above graph (it digests the IR
into hints) and ``sched.policies`` holds the implementations. Core may
therefore use ``sched.api`` only, never the implementations; ``arch``'s
single lazy registry import (``DispatchConfig`` validation) is the one
sanctioned down-reference.

This script parses every source file's *runtime* imports (``if
TYPE_CHECKING:`` blocks are exempt — they never execute) and fails on any
edge that points down-to-up, most importantly:

- ``baseline -> core.delta`` — the inversion this check was introduced to
  prevent: baselines must run through ``repro.machine``, never reach into
  the Delta runtime;
- ``arch -> core`` — hardware component models must stay
  execution-model agnostic.

Run from the repository root (CI does)::

    python tools/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Forbidden import edges: (source package prefix, target module prefix).
#: A module whose dotted name starts with the source prefix may not import
#: any module whose dotted name starts with the target prefix.
FORBIDDEN_EDGES: list[tuple[str, str, str]] = [
    # The headline rules.
    ("repro.baseline", "repro.core.delta",
     "baselines must run through repro.machine, not the Delta runtime"),
    ("repro.arch", "repro.core",
     "hardware models must stay execution-model agnostic"),
    # The rest of the bottom-up ordering.
    ("repro.sim", "repro.arch", "the event kernel is below the hardware"),
    ("repro.sim", "repro.machine", "the event kernel is below the machine"),
    ("repro.sim", "repro.core", "the event kernel is below the core"),
    ("repro.arch", "repro.machine",
     "hardware components are composed by the machine, not vice versa"),
    ("repro.arch", "repro.baseline", "hardware is below execution models"),
    ("repro.arch", "repro.eval", "hardware is below the harness"),
    ("repro.machine", "repro.core",
     "the machine layer hosts execution models, it must not know them"),
    ("repro.machine", "repro.baseline",
     "the machine layer hosts execution models, it must not know them"),
    ("repro.machine", "repro.eval", "the machine is below the harness"),
    ("repro.machine", "repro.workloads", "the machine is below workloads"),
    ("repro.core", "repro.eval", "execution models are below the harness"),
    ("repro.baseline", "repro.eval",
     "execution models are below the harness"),
    ("repro.workloads", "repro.eval", "workloads are below the harness"),
    # The structure layer: core -> graph -> {baseline, eval, ...}. The IR
    # is derived *from* core's tasks and annotations and consumed by
    # everything above it; core re-deriving from the IR would be circular.
    ("repro.core", "repro.graph",
     "core is the graph layer's substrate, it must not consume the IR"),
    ("repro.graph", "repro.eval", "the structure layer is below the harness"),
    ("repro.graph", "repro.workloads",
     "the structure layer analyses programs, it must not build them"),
    ("repro.graph", "repro.baseline",
     "execution models consume the IR, not vice versa"),
    ("repro.sim", "repro.graph", "the event kernel is below the IR"),
    ("repro.arch", "repro.graph", "hardware is below the IR"),
    ("repro.machine", "repro.graph", "the machine is below the IR"),
    ("repro.util", "repro.graph", "util is the leaf layer"),
    # The scheduling seam: layers below the dispatcher never see
    # policies, and the seam itself never reaches into the harness.
    ("repro.util", "repro.sched", "util is the leaf layer"),
    ("repro.sim", "repro.sched", "the event kernel is below the seam"),
    ("repro.machine", "repro.sched",
     "the machine hosts execution models; policy choice lives above it"),
    ("repro.graph", "repro.sched",
     "the IR is policy-agnostic; sched digests it, not vice versa"),
    ("repro.sched", "repro.eval", "the seam is below the harness"),
    ("repro.sched", "repro.workloads",
     "policies schedule programs, they must not build them"),
    ("repro.sched", "repro.baseline",
     "execution models consume policies, not vice versa"),
    ("repro.sched", "repro.cli", "the seam is below the CLI"),
    # Core resolves policies through the registry only: the seam's API is
    # the contract, the implementations stay swappable behind it.
    ("repro.core", "repro.sched.policies",
     "core may use the sched API only, never policy implementations"),
    ("repro.core", "repro.sched.structure",
     "hint recovery runs above core (twin builds); core only carries "
     "hints opaquely"),
    # The store layer: util < store < everything that caches. The store
    # imports only util; of the layers below the harness, only the cache
    # schemas (eval/cache.py, graph/cache.py) and the CLI consume it —
    # the simulation stack must never know results are cached.
    ("repro.store", "repro.sim", "the store imports util only"),
    ("repro.store", "repro.arch", "the store imports util only"),
    ("repro.store", "repro.machine", "the store imports util only"),
    ("repro.store", "repro.core", "the store imports util only"),
    ("repro.store", "repro.graph", "the store imports util only"),
    ("repro.store", "repro.sched", "the store imports util only"),
    ("repro.store", "repro.baseline", "the store imports util only"),
    ("repro.store", "repro.isa", "the store imports util only"),
    ("repro.store", "repro.workloads", "the store imports util only"),
    ("repro.store", "repro.eval", "the store imports util only"),
    ("repro.store", "repro.cli", "the store imports util only"),
    ("repro.util", "repro.store", "util is the leaf layer"),
    ("repro.sim", "repro.store",
     "the event kernel must not know results are cached"),
    ("repro.arch", "repro.store",
     "hardware models must not know results are cached"),
    ("repro.machine", "repro.store",
     "the machine layer must not know results are cached"),
    ("repro.core", "repro.store",
     "execution models must not know results are cached"),
    ("repro.baseline", "repro.store",
     "execution models must not know results are cached"),
    ("repro.sched", "repro.store",
     "policies schedule tasks; caching lives in the schemas above"),
    ("repro.workloads", "repro.store",
     "workloads build programs; caching lives in the harness above"),
    # The serve layer: the sweep server drives the harness (eval), the
    # store, and the metrics bus — it must never reach into the
    # simulation stack directly, and nothing below the CLI may know the
    # server exists.
    ("repro.serve", "repro.sim",
     "serve drives the harness; it never touches the event kernel"),
    ("repro.serve", "repro.core",
     "serve drives the harness; it never touches execution models"),
    ("repro.serve", "repro.baseline",
     "serve drives the harness; it never touches execution models"),
    ("repro.serve", "repro.graph",
     "serve consumes harness results, not the IR"),
    ("repro.serve", "repro.sched",
     "policy choice validates through arch config, never the registry"),
    ("repro.serve", "repro.isa", "serve is above the whole machine stack"),
    ("repro.serve", "repro.cli", "the CLI hosts the server, not vice versa"),
    ("repro.util", "repro.serve", "util is the leaf layer"),
    ("repro.store", "repro.serve", "the store imports util only"),
    ("repro.sim", "repro.serve", "the simulation stack never serves"),
    ("repro.arch", "repro.serve", "the simulation stack never serves"),
    ("repro.machine", "repro.serve", "the simulation stack never serves"),
    ("repro.core", "repro.serve", "the simulation stack never serves"),
    ("repro.graph", "repro.serve", "the IR layer never serves"),
    ("repro.sched", "repro.serve", "the scheduling seam never serves"),
    ("repro.baseline", "repro.serve", "the simulation stack never serves"),
    ("repro.isa", "repro.serve", "the ISA layer never serves"),
    ("repro.workloads", "repro.serve", "workloads never serve"),
    ("repro.eval", "repro.serve",
     "the harness is the server's engine, not its client"),
]


def module_name(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` relative to the ``src`` root."""
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_type_checking_guard(node: ast.If) -> bool:
    test = node.test
    return ((isinstance(test, ast.Name) and test.id == "TYPE_CHECKING")
            or (isinstance(test, ast.Attribute)
                and test.attr == "TYPE_CHECKING"))


def runtime_imports(tree: ast.Module) -> list[str]:
    """Dotted names imported at runtime (skipping TYPE_CHECKING blocks)."""
    imports: list[str] = []

    def visit(nodes: list[ast.stmt]) -> None:
        for node in nodes:
            if isinstance(node, ast.Import):
                imports.extend(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                # Relative imports do not occur in this codebase; level>0
                # would need resolving against the module package.
                if node.module is not None and node.level == 0:
                    imports.append(node.module)
            elif isinstance(node, ast.If):
                if not _is_type_checking_guard(node):
                    visit(node.body)
                visit(node.orelse)
            elif hasattr(node, "body"):
                for field in ("body", "orelse", "finalbody", "handlers"):
                    children = getattr(node, field, [])
                    visit([c for c in children if isinstance(c, ast.stmt)])
                    for child in children:
                        if isinstance(child, ast.ExceptHandler):
                            visit(child.body)
    visit(tree.body)
    return imports


def _matches(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


def check_layering(src_root: Path) -> list[str]:
    """Return one violation message per forbidden edge found (empty = ok)."""
    violations: list[str] = []
    for path in sorted(src_root.rglob("*.py")):
        module = module_name(path, src_root)
        tree = ast.parse(path.read_text(), filename=str(path))
        for imported in runtime_imports(tree):
            for source_prefix, target_prefix, why in FORBIDDEN_EDGES:
                if (_matches(module, source_prefix)
                        and _matches(imported, target_prefix)):
                    violations.append(
                        f"{module} imports {imported} "
                        f"(forbidden: {source_prefix} -> {target_prefix}; "
                        f"{why})")
    return violations


def main() -> int:
    repo_root = Path(__file__).resolve().parents[1]
    src_root = repo_root / "src"
    violations = check_layering(src_root)
    if violations:
        print(f"layering check FAILED ({len(violations)} violation(s)):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("layering check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
