#!/usr/bin/env python
"""Record this PR's perf trajectory point: ``BENCH_<n>.json``.

Measures the tier-1 workload matrix under both event kernels — suite
wall-clock, per-workload simulation seconds, and events/sec (scheduling
slots drained per second of host time) — and writes the committed
trajectory file every future PR compares against::

    PYTHONPATH=src python tools/bench_trajectory.py          # BENCH_6.json
    PYTHONPATH=src python tools/bench_trajectory.py --bench-id 7

The measurement core here is shared with the pinned profiling
microharness (``benchmarks/bench_hotpath.py``), which is also where the
CI perf-regression gate lives: it reruns the pinned subset and fails when
events/sec drops more than 20% below the committed baseline (see
:func:`perf_regressions`). ``docs/performance.md`` explains how to read
the file.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Serial-measurement engines, in reporting order.
ENGINES = ("reference", "fast")

#: The pinned profile/regression subset (also used by
#: benchmarks/bench_hotpath.py): the suite's heaviest event producers
#: plus one shared-read and one skew-heavy workload, so both runtimes'
#: hot frames (NoC, DRAM, stream pumps, dispatcher) show up. Keep this
#: stable across PRs — the perf gate compares like against like.
PINNED_WORKLOADS = ("spmm", "bfs", "stencil-amr", "micro-shared",
                    "wavefront")
PINNED_LANES = 8

#: events/sec may regress by at most this fraction before the bench CI
#: job fails (compared against the committed previous BENCH_*.json).
DEFAULT_TOLERANCE = 0.20


@contextmanager
def engine(name: str):
    """Select the event kernel (``REPRO_ENGINE``) inside the block."""
    old = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = name
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_ENGINE"]
        else:
            os.environ["REPRO_ENGINE"] = old


def point_config(lanes: int = 8):
    """The MachineConfig a bench point runs — *exactly* the tier-1 path.

    tests/test_bench_harness.py pins this to ``default_delta_config``:
    the benchmarks must measure the same machine the test suite and the
    evaluation harness build, or the trajectory numbers are fiction.
    """
    from repro.arch.config import default_delta_config

    return default_delta_config(lanes=lanes)


def measure_point(workload_name: str, lanes: int = 8) -> dict:
    """One Delta-vs-static comparison, timed, with its event count."""
    from repro.eval.runner import compare
    from repro.sim import total_events_processed
    from repro.workloads.registry import get_workload

    events_before = total_events_processed()
    t0 = time.perf_counter()
    compare(get_workload(workload_name), point_config(lanes), verify=False)
    wall = time.perf_counter() - t0
    events = total_events_processed() - events_before
    return {
        "sim_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
    }


def measure_matrix(engine_choice: str, lanes: int = 8,
                   workloads: Optional[Sequence[str]] = None,
                   rounds: int = 1) -> dict:
    """Serial sweep of the workload matrix under one engine.

    ``rounds`` > 1 keeps the best (fastest) sweep: event counts are
    deterministic, wall-clock is not, and best-of damps host scheduler
    noise — the perf-regression gate and the recorded ``pinned`` section
    both use best-of-3 so they compare like against like.
    """
    from repro.workloads.registry import workload_names

    names = list(workloads) if workloads else workload_names()
    best = None
    for _ in range(max(1, rounds)):
        per_workload = {}
        t0 = time.perf_counter()
        with engine(engine_choice):
            for name in names:
                per_workload[name] = measure_point(name, lanes)
        wall = time.perf_counter() - t0
        events = sum(p["events"] for p in per_workload.values())
        matrix = {
            "wall_clock_s": round(wall, 4),
            "events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "workloads": per_workload,
        }
        if best is None or matrix["wall_clock_s"] < best["wall_clock_s"]:
            best = matrix
    return best


#: The warm-cache measurement subset: two fast workloads are enough to
#: time the serve-from-disk path against the simulate path.
STORE_WORKLOADS = ("micro-skewed", "micro-shared")


def measure_store(lanes: int = 8,
                  workloads: Sequence[str] = STORE_WORKLOADS) -> dict:
    """Warm-cache effectiveness and eviction behavior of the unified store.

    A cold sweep fills a throwaway store, a warm sweep must be served
    entirely from it (hit rate 1.0), and then the size cap is pulled
    below the store's footprint to prove the eviction policy actually
    reclaims space — all observed through the same ``cache.*`` MetricsBus
    counters ``repro eval`` reports.
    """
    import tempfile

    from repro.eval.cache import EvalCache
    from repro.eval.parallel import run_suite_parallel
    from repro.machine.metrics import MetricsBus
    from repro.store import ShardedStore
    from repro.workloads.registry import get_workload

    def points():
        return [get_workload(name) for name in workloads]

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        bus = MetricsBus()
        cache = EvalCache(store=ShardedStore(Path(tmp), max_bytes=None,
                                             metrics=bus.cache))
        t0 = time.perf_counter()
        run_suite_parallel(lanes=lanes, workloads=points(), jobs=1,
                           cache=cache, verify=False)
        cold_s = time.perf_counter() - t0
        cold_hits, cold_misses = bus.cache.hits, bus.cache.misses
        t0 = time.perf_counter()
        run_suite_parallel(lanes=lanes, workloads=points(), jobs=1,
                           cache=cache, verify=False)
        warm_s = time.perf_counter() - t0
        warm_hits = bus.cache.hits - cold_hits
        warm_lookups = warm_hits + (bus.cache.misses - cold_misses)
        footprint = cache.store.total_bytes()
        # Pull the cap below the footprint: the policy must evict back
        # under budget (and the counters must say so).
        cache.store.max_bytes = max(1, footprint // 2)
        evicted = cache.store.evict_to_budget()
        return {
            "workloads": list(workloads),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s else 0.0,
            "warm_hit_rate": round(warm_hits / warm_lookups, 3)
            if warm_lookups else 0.0,
            "footprint_bytes": footprint,
            "eviction": {
                "budget_bytes": cache.store.max_bytes,
                "evicted_entries": evicted,
                "evicted_bytes": round(bus.cache.evicted_bytes),
                "within_budget":
                    cache.store.total_bytes() <= cache.store.max_bytes,
            },
        }


def build_payload(bench_id: int, lanes: int = 8,
                  workloads: Optional[Sequence[str]] = None,
                  jobs: Optional[int] = None) -> dict:
    """Measure both engines and assemble the BENCH_<n>.json payload."""
    from repro.eval.parallel import resolve_jobs

    suites = {name: measure_matrix(name, lanes, workloads)
              for name in ENGINES}
    fast, reference = suites["fast"], suites["reference"]
    payload = {
        "bench_id": f"BENCH_{bench_id}",
        "schema": 1,
        "description": (
            "Perf trajectory point: tier-1 workload matrix "
            "(Delta-vs-static compare per workload), serial, "
            "REPRO_ENGINE as keyed. events = scheduling slots drained; "
            "events differ between engines by design (the fast kernel "
            "elides shim events)."),
        "lanes": lanes,
        "suite": fast,
        "reference": reference,
        "speedup_vs_reference": round(
            reference["wall_clock_s"] / fast["wall_clock_s"], 3)
        if fast["wall_clock_s"] else 0.0,
        # The subset the CI perf gate re-measures (same mix and same
        # best-of-3 timing, so the events/sec comparison is
        # like-for-like).
        "pinned": measure_matrix("fast", PINNED_LANES, PINNED_WORKLOADS,
                                 rounds=3),
        # Warm-cache hit rate + eviction behavior of the unified store
        # (informational — the CI gate reads the sections above).
        "store": measure_store(lanes),
    }
    resolved = resolve_jobs(jobs)
    if resolved > 1:
        from repro.eval.runner import run_suite

        t0 = time.perf_counter()
        run_suite(lanes=lanes, jobs=resolved, verify=False)
        payload["suite_parallel"] = {
            "jobs": resolved,
            "wall_clock_s": round(time.perf_counter() - t0, 4),
        }
    return payload


# -- baselines and regression checking ----------------------------------

def trajectory_files(root: Path = REPO_ROOT) -> list[Path]:
    """Committed BENCH_*.json files, ordered by bench id."""
    found = []
    for path in root.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _id, path in sorted(found)]


def latest_baseline(root: Path = REPO_ROOT) -> Optional[Path]:
    """The newest committed trajectory point, if any."""
    files = trajectory_files(root)
    return files[-1] if files else None


def perf_regressions(current: dict, baseline: dict,
                     tolerance: float = DEFAULT_TOLERANCE,
                     per_workload: bool = False) -> list[str]:
    """Named events/sec regressions of ``current`` vs ``baseline``.

    Compares the suite-level throughput (and, with ``per_workload``, each
    workload's) of two payload-shaped dicts; an entry regresses when its
    events/sec falls more than ``tolerance`` below the baseline's.
    Returns human-readable descriptions (empty = no regression). The CI
    gate checks the aggregate only — per-workload wall-clock on a shared
    runner is too noisy to gate individually.
    """
    problems = []

    def check(label: str, now: float, then: float) -> None:
        if then > 0 and now < then * (1.0 - tolerance):
            problems.append(
                f"{label}: {now:,.0f} events/s vs baseline {then:,.0f} "
                f"(-{(1 - now / then) * 100:.1f}%, tolerance "
                f"{tolerance * 100:.0f}%)")

    check("suite", current["suite"]["events_per_sec"],
          baseline["suite"]["events_per_sec"])
    if per_workload:
        base_workloads = baseline["suite"].get("workloads", {})
        for name, point in current["suite"].get("workloads", {}).items():
            then = base_workloads.get(name)
            if then:
                check(name, point["events_per_sec"],
                      then["events_per_sec"])
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-id", type=int, default=6,
                        help="trajectory point number (BENCH_<n>.json)")
    parser.add_argument("--lanes", type=int, default=8)
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of workload names (default: all)")
    parser.add_argument("--repro-jobs", type=int, default=None, metavar="N",
                        help="also time a parallel suite run with N workers "
                             "(default: $REPRO_JOBS, else skipped)")
    parser.add_argument("--output", type=Path, default=None,
                        help="output path (default: BENCH_<n>.json at the "
                             "repo root)")
    args = parser.parse_args(argv)

    payload = build_payload(args.bench_id, lanes=args.lanes,
                            workloads=args.workloads, jobs=args.repro_jobs)
    output = args.output or REPO_ROOT / f"BENCH_{args.bench_id}.json"
    output.write_text(json.dumps(payload, indent=2) + "\n")
    fast, ref = payload["suite"], payload["reference"]
    print(f"reference: {ref['wall_clock_s']:.2f}s "
          f"({ref['events_per_sec']:,} events/s)")
    print(f"fast:      {fast['wall_clock_s']:.2f}s "
          f"({fast['events_per_sec']:,} events/s)")
    print(f"speedup:   {payload['speedup_vs_reference']:.2f}x")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
