#!/usr/bin/env python
"""Chaos smoke for the self-healing serve stack (CI runs this).

Drives a real ``repro serve`` subprocess through four disruption phases
and asserts the system heals with zero manual intervention:

1. **worker murder** — SIGKILL pool children while sweeps compute; every
   job must still complete (points degrade to ``retried`` /
   ``lost-worker``, the sweep never fails) and no point computes twice
   in a job's event stream;
2. **server SIGKILL mid-job + restart** — a job caught ``running`` by a
   ``kill -9`` of the whole server must be replayed by the next server's
   recovery and reach a terminal state, with conservation holding on the
   restarted process;
3. **store truncation under the queue** — a persisted job record is
   overwritten with garbage while the server is down; restart must
   discard the corrupt record (counted, not crashed) and keep serving;
4. **overload burst** — submissions past the queue cap must shed with a
   typed 503 carrying ``Retry-After``, while accepted jobs drain to
   terminal states and conservation still balances.

Exit code 0 on success; any violation prints a diagnostic and exits 1.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
#: A sweep heavy enough to stay in flight while we aim signals at it.
WORKLOADS = ["wavefront", "stencil-amr", "cholesky", "knn",
             "ext-pagerank", "histogram", "bfs", "mergesort"]
TERMINAL = {"completed", "cancelled", "failed"}
#: Outcomes a point may legally report under worker murder.
SURVIVABLE = {"ok", "retried", "lost-worker", "recovered",
              "recovered-after-timeout", "coalesced"}


def fail(message: str) -> None:
    print(f"chaos smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def sweep(seed: int) -> dict:
    return {"kind": "sweep", "workloads": WORKLOADS, "lanes": 8,
            "seed": seed}


# -- plumbing ----------------------------------------------------------------

def request(port: int, method: str, path: str, body=None):
    """One HTTP exchange; returns (status, headers dict, decoded body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    headers = {k.lower(): v for k, v in response.getheaders()}
    return response.status, headers, (json.loads(data) if data else None)


def stream(port: int, job_id: str) -> list:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("GET", f"/jobs/{job_id}/events")
        response = conn.getresponse()
        if response.status != 200:
            fail(f"stream for {job_id} answered {response.status}")
        return [json.loads(line)
                for line in response.read().decode().splitlines()]
    finally:
        conn.close()


def submit(port: int, spec: dict) -> str:
    status, _headers, body = request(port, "POST", "/jobs", spec)
    if status != 201:
        fail(f"submit answered {status}: {body}")
    return body["job"]


def job_state(port: int, job_id: str) -> str:
    status, _headers, body = request(port, "GET", f"/jobs/{job_id}")
    if status != 200:
        fail(f"GET /jobs/{job_id} answered {status}: {body}")
    return body["state"]


def wait_terminal(port: int, job_ids, timeout_s: float = 180.0) -> dict:
    """Poll every job to a terminal state; returns {job_id: state}."""
    deadline = time.monotonic() + timeout_s
    states = {}
    for job_id in job_ids:
        while True:
            state = job_state(port, job_id)
            if state in TERMINAL:
                states[job_id] = state
                break
            if time.monotonic() > deadline:
                fail(f"job {job_id} stuck in {state!r} after {timeout_s}s")
            time.sleep(0.2)
    return states


def healthz(port: int) -> dict:
    status, _headers, body = request(port, "GET", "/healthz")
    if status != 200:
        fail(f"healthz answered {status}")
    if not body["conservation_ok"]:
        fail(f"conservation violated: {body['queue']}")
    return body


def start_server(cache_dir: str, *extra: str) -> tuple:
    """Launch ``repro serve``; returns (process, port)."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", cache_dir, *extra],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    # Recovery chatter (e.g. "corrupt cache entry ... discarding") may
    # precede the listen line; scan a bounded number of lines for it.
    lines = []
    for _ in range(20):
        line = server.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return server, int(match.group(1))
    server.kill()
    fail(f"no listen announcement, got: {lines!r}")


def stop_server(server, sig=signal.SIGTERM) -> None:
    server.send_signal(sig)
    try:
        server.wait(timeout=30)
    except subprocess.TimeoutExpired:
        server.kill()
        server.wait(timeout=10)
        fail(f"server did not stop on {sig!r}")


def descendants(pid: int) -> list[int]:
    """Every live descendant process of ``pid``, via /proc (no psutil)."""
    found: list[int] = []
    stack = [pid]
    while stack:
        current = stack.pop()
        task_dir = f"/proc/{current}/task"
        try:
            tasks = os.listdir(task_dir)
        except OSError:
            continue
        for task in tasks:
            try:
                with open(f"{task_dir}/{task}/children") as handle:
                    kids = [int(word) for word in handle.read().split()]
            except (OSError, ValueError):
                continue
            for kid in kids:
                found.append(kid)
                stack.append(kid)
    return found


def assert_no_duplicate_points(port: int, job_id: str) -> None:
    """Each point index lands exactly once, with a survivable outcome."""
    points = [e for e in stream(port, job_id) if e.get("event") == "point"]
    indices = [e["index"] for e in points]
    if sorted(indices) != sorted(set(indices)):
        fail(f"job {job_id} streamed duplicate point indices: {indices}")
    bad = [e["outcome"] for e in points if e["outcome"] not in SURVIVABLE]
    if bad:
        fail(f"job {job_id} reported unsurvivable outcomes: {bad}")


# -- phases ------------------------------------------------------------------

def phase_worker_murder(cache_dir: str) -> None:
    """Kill pool children mid-sweep; jobs must complete anyway."""
    server, port = start_server(
        cache_dir, "--no-cache", "--jobs", "2",
        "--max-concurrent-jobs", "1", "--lease-s", "10")
    try:
        deaths = 0.0
        for batch in range(3):
            job_ids = [submit(port, sweep(seed=batch * 10 + i))
                       for i in range(4)]
            kills = 0
            while kills < 6 and any(job_state(port, j) not in TERMINAL
                                    for j in job_ids):
                victims = descendants(server.pid)
                if victims:
                    try:
                        os.kill(victims[-1], signal.SIGKILL)
                        kills += 1
                    except OSError:
                        pass
                time.sleep(0.25)
            states = wait_terminal(port, job_ids)
            not_completed = {j: s for j, s in states.items()
                             if s != "completed"}
            if not_completed:
                fail(f"worker murder failed jobs: {not_completed}")
            for job_id in job_ids:
                assert_no_duplicate_points(port, job_id)
            deaths = healthz(port)["eval"]["worker_deaths"]
            print(f"  batch {batch}: {kills} kills, "
                  f"{deaths:.0f} worker deaths observed, "
                  f"{len(job_ids)} jobs completed")
            if deaths:
                break
        if not deaths:
            fail("killed pool children across 3 batches but the harness "
                 "never observed a worker death")
        health = healthz(port)
        print(f"phase 1 ok: worker deaths {deaths:.0f}, rebuilds "
              f"{health['eval']['pool_rebuilds']:.0f}, retried points "
              f"{health['eval']['retried_points']:.0f}, lost-worker "
              f"points {health['eval']['lost_worker_points']:.0f}")
    finally:
        stop_server(server)


def phase_server_sigkill(cache_dir: str) -> None:
    """SIGKILL the server mid-job; the next server must heal the queue."""
    server, port = start_server(
        cache_dir, "--no-cache", "--jobs", "2",
        "--max-concurrent-jobs", "1", "--lease-s", "10")
    victim = None
    try:
        job_ids = [submit(port, sweep(seed=100 + i)) for i in range(2)]
        deadline = time.monotonic() + 60
        while not any(job_state(port, j) == "running" for j in job_ids):
            if time.monotonic() > deadline:
                fail("no job reached running before the SIGKILL window")
            time.sleep(0.1)
        victim = next(j for j in job_ids
                      if job_state(port, j) == "running")
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
    except BaseException:
        stop_server(server, signal.SIGKILL)
        raise
    server, port = start_server(
        cache_dir, "--no-cache", "--jobs", "2",
        "--max-concurrent-jobs", "1", "--lease-s", "10")
    try:
        health = healthz(port)
        if health["queue"]["replayed"] < 1:
            fail(f"restart replayed nothing: {health['queue']}")
        states = wait_terminal(port, job_ids)
        if states[victim] != "completed":
            fail(f"SIGKILLed-mid-flight job ended {states[victim]!r}")
        events = stream(port, victim)
        if not any(e.get("event") == "requeued" for e in events):
            fail(f"replayed job {victim} has no requeued event")
        healthz(port)
        print(f"phase 2 ok: {health['queue']['replayed']} jobs replayed "
              f"after kill -9, interrupted job completed")
    finally:
        stop_server(server)


def phase_store_truncation(cache_dir: str) -> None:
    """Corrupt a persisted job record; restart must shrug it off."""
    records = sorted(Path(cache_dir).glob("jobs/*/*.pkl"))
    if not records:
        fail("no persisted job records to corrupt")
    records[0].write_bytes(b"\x00 definitely not a pickle")
    server, port = start_server(cache_dir, "--no-cache", "--jobs", "2",
                                "--max-concurrent-jobs", "1")
    try:
        health = healthz(port)
        if health["cache"]["corrupt"] < 1:
            fail(f"corrupt record not counted: {health['cache']}")
        status, _headers, body = request(port, "GET", "/jobs")
        if status != 200:
            fail(f"GET /jobs after corruption answered {status}")
        job_id = submit(port, {"kind": "sweep",
                               "workloads": ["micro-chain"], "lanes": 4,
                               "seed": 200})
        states = wait_terminal(port, [job_id])
        if states[job_id] != "completed":
            fail(f"post-corruption job ended {states[job_id]!r}")
        print(f"phase 3 ok: corrupt job record discarded "
              f"({health['cache']['corrupt']:.0f} counted), "
              f"server kept serving")
    finally:
        stop_server(server)


def phase_overload_burst(cache_dir: str) -> None:
    """Burst past the queue cap; extras shed typed 503 + Retry-After."""
    server, port = start_server(
        cache_dir, "--no-cache", "--jobs", "2",
        "--max-concurrent-jobs", "1", "--max-queued", "2",
        "--max-backlog-per-tenant", "2")
    try:
        accepted, shed = [], 0
        for index in range(8):
            status, headers, body = request(port, "POST", "/jobs",
                                            sweep(seed=300 + index))
            if status == 201:
                accepted.append(body["job"])
            elif status == 503:
                shed += 1
                error = body["error"]
                if error["code"] != "overloaded":
                    fail(f"shed with wrong code: {error}")
                retry_after = headers.get("retry-after")
                if retry_after is None or int(retry_after) < 1:
                    fail(f"503 without a usable Retry-After: {headers}")
                if error.get("retry_after_s", 0) < 1:
                    fail(f"503 body without retry_after_s: {error}")
            else:
                fail(f"burst submit answered {status}: {body}")
        if not shed:
            fail("burst of 8 past a 2-deep queue cap shed nothing")
        if not accepted:
            fail("overload shed everything, including in-budget jobs")
        # Drain fast: cancel whatever is still queued, let the rest run.
        for job_id in accepted[1:]:
            request(port, "DELETE", f"/jobs/{job_id}")
        states = wait_terminal(port, accepted)
        health = healthz(port)
        if health["serve"]["shed"] < shed:
            fail(f"healthz undercounts sheds: {health['serve']}")
        if health["queue"]["rejected"] < shed:
            fail(f"sheds not in conservation: {health['queue']}")
        print(f"phase 4 ok: {shed} submissions shed 503+Retry-After, "
              f"{len(accepted)} accepted drained to {sorted(set(states.values()))}")
    finally:
        stop_server(server)


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-smoke-")
    print(f"chaos smoke: store root {cache_dir}")
    phase_worker_murder(cache_dir)
    phase_server_sigkill(cache_dir)
    phase_store_truncation(cache_dir)
    phase_overload_burst(cache_dir)
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
