"""Unit tests for the dataflow-graph IR (repro.arch.dfg)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.dfg import (
    Dfg,
    DfgBuilder,
    DfgError,
    FuClass,
    Op,
    OP_LATENCY,
    axpy_dfg,
    cholesky_update_dfg,
    compare_count_dfg,
    distance_dfg,
    dot_product_dfg,
    edge_expand_dfg,
    histogram_dfg,
    merge_dfg,
    smith_waterman_dfg,
    stencil5_dfg,
)

ALL_KERNELS = [
    dot_product_dfg, axpy_dfg, merge_dfg, compare_count_dfg, stencil5_dfg,
    smith_waterman_dfg, histogram_dfg, cholesky_update_dfg, distance_dfg,
    edge_expand_dfg,
]


def test_builder_constructs_valid_graph():
    dfg = dot_product_dfg()
    assert dfg.num_nodes == 5
    assert len(dfg.inputs()) == 2
    assert len(dfg.outputs()) == 1


def test_builder_rejects_duplicate_names():
    b = DfgBuilder("dup").input("a")
    with pytest.raises(DfgError, match="duplicate"):
        b.input("a")


def test_validate_rejects_empty():
    with pytest.raises(DfgError, match="no nodes"):
        Dfg("empty").validate()


def test_validate_rejects_zero_distance_cycle():
    dfg = Dfg("cyc")
    a = dfg.add(Op.ADD)
    b = dfg.add(Op.ADD)
    dfg.connect(a, b)
    dfg.connect(b, a)  # distance 0 -> illegal
    with pytest.raises(DfgError, match="cycle"):
        dfg.validate()


def test_distance_cycle_is_legal():
    dfg = Dfg("rec")
    a = dfg.add(Op.ADD)
    dfg.connect(a, a, distance=1)
    dfg.validate()


def test_validate_rejects_output_feeding_compute():
    dfg = Dfg("bad-out")
    out = dfg.add(Op.OUTPUT)
    add = dfg.add(Op.ADD)
    dfg.connect(out, add)
    with pytest.raises(DfgError, match="OUTPUT"):
        dfg.validate()


def test_validate_rejects_input_with_predecessor():
    dfg = Dfg("bad-in")
    add = dfg.add(Op.ADD)
    inp = dfg.add(Op.INPUT)
    dfg.connect(add, inp)
    with pytest.raises(DfgError, match="INPUT"):
        dfg.validate()


def test_connect_unknown_node_rejected():
    dfg = Dfg("unk")
    a = dfg.add(Op.ADD)
    with pytest.raises(DfgError, match="unknown node"):
        dfg.connect(a, 99)


def test_negative_edge_distance_rejected():
    dfg = Dfg("neg")
    a = dfg.add(Op.ADD)
    b = dfg.add(Op.ADD)
    with pytest.raises(DfgError):
        dfg.connect(a, b, distance=-1)


def test_critical_path_linear_chain():
    dfg = Dfg("chain")
    n1 = dfg.add(Op.INPUT)    # latency 1
    n2 = dfg.add(Op.MUL)      # latency 3
    n3 = dfg.add(Op.ADD)      # latency 1
    n4 = dfg.add(Op.OUTPUT)   # latency 1
    dfg.connect(n1, n2)
    dfg.connect(n2, n3)
    dfg.connect(n3, n4)
    assert dfg.critical_path() == 1 + 3 + 1 + 1


def test_critical_path_takes_longest_branch():
    dfg = Dfg("branch")
    src = dfg.add(Op.INPUT)
    fast = dfg.add(Op.ADD)
    slow = dfg.add(Op.DIV)  # latency 8
    join = dfg.add(Op.ADD)
    dfg.connect(src, fast)
    dfg.connect(src, slow)
    dfg.connect(fast, join)
    dfg.connect(slow, join)
    assert dfg.critical_path() == 1 + 8 + 1


def test_recurrence_mii_acyclic_is_one():
    assert axpy_dfg().recurrence_mii() == 1.0


def test_recurrence_mii_simple_self_loop():
    # ADD accumulator, latency 1, distance 1 -> MII 1.
    dfg = dot_product_dfg()
    assert dfg.recurrence_mii() == pytest.approx(1.0, abs=1e-6)


def test_recurrence_mii_slow_op_in_loop():
    dfg = Dfg("divloop")
    d = dfg.add(Op.DIV)  # latency 8
    dfg.connect(d, d, distance=1)
    assert dfg.recurrence_mii() == pytest.approx(8.0, abs=1e-6)


def test_recurrence_mii_distance_two_halves_ratio():
    dfg = Dfg("dist2")
    d = dfg.add(Op.DIV)
    dfg.connect(d, d, distance=2)
    assert dfg.recurrence_mii() == pytest.approx(4.0, abs=1e-6)


def test_recurrence_mii_multi_node_cycle():
    dfg = Dfg("loop2")
    a = dfg.add(Op.MUL)   # 3
    b = dfg.add(Op.ADD)   # 1
    dfg.connect(a, b)
    dfg.connect(b, a, distance=1)
    assert dfg.recurrence_mii() == pytest.approx(4.0, abs=1e-6)


def test_op_histogram_classes():
    hist = dot_product_dfg().op_histogram()
    assert hist[FuClass.MEM] == 3   # two inputs + one output
    assert hist[FuClass.MUL] == 1
    assert hist[FuClass.ALU] == 1


def test_const_not_counted_in_histogram():
    hist = axpy_dfg().op_histogram()
    assert FuClass.NONE not in hist


def test_signature_stable_and_distinguishing():
    assert dot_product_dfg().signature() == dot_product_dfg().signature()
    assert dot_product_dfg().signature() != merge_dfg().signature()


@pytest.mark.parametrize("factory", ALL_KERNELS)
def test_kernel_library_graphs_are_valid(factory):
    dfg = factory()
    dfg.validate()
    assert dfg.critical_path() >= 1
    assert dfg.recurrence_mii() >= 1.0
    assert dfg.inputs(), f"{dfg.name} has no inputs"
    assert dfg.outputs(), f"{dfg.name} has no outputs"


@pytest.mark.parametrize("factory", ALL_KERNELS)
def test_kernel_latencies_known(factory):
    for node in factory().nodes.values():
        assert node.op in OP_LATENCY


@given(st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=4))
def test_recurrence_mii_equals_latency_over_distance(latency_ops, distance):
    """Property: a single cycle's MII is sum(latency)/distance."""
    dfg = Dfg("prop")
    nodes = [dfg.add(Op.ADD) for _ in range(latency_ops)]
    for a, b in zip(nodes, nodes[1:]):
        dfg.connect(a, b)
    dfg.connect(nodes[-1], nodes[0], distance=distance)
    expected = max(1.0, latency_ops / distance)
    assert dfg.recurrence_mii() == pytest.approx(expected, rel=1e-6)
