"""Unit tests for tasks, contexts, programs, and static expansion."""

import pytest

from repro.arch.dfg import dot_product_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.program import (
    Program,
    expand_program,
    partition_block,
    partition_cyclic,
)
from repro.core.task import Task, TaskContext, TaskType, run_kernel


def simple_type(name="simple", trips=64, work_hint=None, kernel=None):
    return TaskType(
        name=name,
        dfg=dot_product_dfg(name),
        kernel=kernel or (lambda ctx, args: None),
        trips=lambda args: trips,
        reads=lambda args: (ReadSpec(nbytes=trips * 4),),
        writes=lambda args: (WriteSpec(nbytes=8),),
        work_hint=work_hint,
    )


class TestTaskType:
    def test_instantiate_copies_args(self):
        tt = simple_type()
        args = {"x": 1}
        task = tt.instantiate(args)
        args["x"] = 2
        assert task.args["x"] == 1

    def test_work_falls_back_to_trips(self):
        tt = simple_type(trips=100)
        assert tt.instantiate().work == 100.0

    def test_work_hint_overrides_trips(self):
        tt = simple_type(trips=100,
                         work_hint=WorkHint(lambda args: 5.0))
        assert tt.instantiate().work == 5.0


class TestTask:
    def test_unique_ids(self):
        tt = simple_type()
        a, b = tt.instantiate(), tt.instantiate()
        assert a.task_id != b.task_id

    def test_name_includes_type(self):
        task = simple_type("mytype").instantiate()
        assert task.name.startswith("mytype#")

    def test_resolved_cost_model(self):
        task = simple_type(trips=32).instantiate()
        assert task.trips == 32
        assert task.reads[0].nbytes == 128
        assert task.write_bytes == 8

    def test_stream_from_registers_consumer(self):
        tt = simple_type()
        producer = tt.instantiate()
        consumer = tt.instantiate(stream_from=[producer])
        assert consumer in producer.stream_consumers
        assert consumer.stream_from == [producer]

    def test_stream_in_bytes_sums_producer_writes(self):
        tt = simple_type()
        p1, p2 = tt.instantiate(), tt.instantiate()
        consumer = tt.instantiate(stream_from=[p1, p2])
        assert consumer.stream_in_bytes == p1.write_bytes + p2.write_bytes

    def test_initial_flags(self):
        task = simple_type().instantiate()
        assert not task.started and not task.completed
        assert task.lane_id is None
        assert task.depth == 0


class TestTaskContext:
    def test_spawn_records_child(self):
        tt = simple_type()
        parent = tt.instantiate()
        ctx = TaskContext({}, parent)
        child = ctx.spawn(tt, {"k": 1})
        assert ctx.spawned == [child]
        assert child.args == {"k": 1}

    def test_spawn_depth_increments(self):
        tt = simple_type()
        parent = tt.instantiate()
        ctx = TaskContext({}, parent)
        child = ctx.spawn(tt)
        assert child.depth == parent.depth + 1

    def test_spawn_depth_respects_deps(self):
        tt = simple_type()
        parent = tt.instantiate()
        ctx = TaskContext({}, parent)
        a = ctx.spawn(tt)
        b = ctx.spawn(tt, after=[a])
        c = ctx.spawn(tt, stream_from=[b])
        assert b.depth == a.depth + 1
        assert c.depth == b.depth + 1

    def test_run_kernel_returns_spawns(self):
        tt = simple_type()

        def kernel(ctx, args):
            ctx.spawn(tt)
            ctx.spawn(tt)

        spawner = TaskType("spawner", dot_product_dfg("sp"), kernel,
                           trips=lambda args: 1)
        spawned = run_kernel(spawner.instantiate(), {})
        assert len(spawned) == 2


class TestProgram:
    def test_requires_initial_tasks(self):
        with pytest.raises(ValueError, match="no initial tasks"):
            Program("empty", {}, [])

    def test_collects_task_types(self):
        tt = simple_type("only")
        program = Program("p", {}, [tt.instantiate(), tt.instantiate()])
        assert [t.name for t in program.task_types] == ["only"]


class TestExpansion:
    def test_expand_runs_all_kernels(self):
        state = {"count": 0}

        def kernel(ctx, args):
            ctx.state["count"] += 1
            if args["level"] < 2:
                ctx.spawn(tt, {"level": args["level"] + 1})
                ctx.spawn(tt, {"level": args["level"] + 1})

        tt = TaskType("tree", dot_product_dfg("tree"), kernel,
                      trips=lambda args: 1)
        program = Program("p", state, [tt.instantiate({"level": 0})])
        expanded = expand_program(program)
        assert expanded.task_count == 7
        assert state["count"] == 7

    def test_expand_phases_group_by_depth(self):
        def kernel(ctx, args):
            if args["level"] < 1:
                ctx.spawn(tt, {"level": 1})

        tt = TaskType("lvl", dot_product_dfg("lvl"), kernel,
                      trips=lambda args: 1)
        program = Program("p", {}, [tt.instantiate({"level": 0}),
                                    tt.instantiate({"level": 0})])
        expanded = expand_program(program)
        assert len(expanded.phases) == 2
        assert len(expanded.phases[0]) == 2
        assert len(expanded.phases[1]) == 2

    def test_expand_total_work(self):
        tt = simple_type(trips=10)
        program = Program("p", {}, [tt.instantiate() for _ in range(3)])
        assert expand_program(program).total_work == 30.0


class TestPartitions:
    def make_tasks(self, n):
        tt = simple_type()
        return [tt.instantiate({"i": i}) for i in range(n)]

    def test_block_partition_contiguous(self):
        tasks = self.make_tasks(10)
        parts = partition_block(tasks, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert parts[0] == tasks[:4]

    def test_block_partition_more_lanes_than_tasks(self):
        tasks = self.make_tasks(2)
        parts = partition_block(tasks, 4)
        assert [len(p) for p in parts] == [1, 1, 0, 0]

    def test_cyclic_partition_round_robin(self):
        tasks = self.make_tasks(5)
        parts = partition_cyclic(tasks, 2)
        assert parts[0] == [tasks[0], tasks[2], tasks[4]]
        assert parts[1] == [tasks[1], tasks[3]]

    @pytest.mark.parametrize("split", [partition_block, partition_cyclic])
    def test_partition_preserves_all_tasks(self, split):
        tasks = self.make_tasks(17)
        parts = split(tasks, 4)
        flat = [t for p in parts for t in p]
        assert sorted(t.task_id for t in flat) == \
            sorted(t.task_id for t in tasks)

    @pytest.mark.parametrize("split", [partition_block, partition_cyclic])
    def test_partition_rejects_zero_lanes(self, split):
        with pytest.raises(ValueError):
            split(self.make_tasks(3), 0)

    @pytest.mark.parametrize("split", [partition_block, partition_cyclic])
    def test_partition_empty_phase(self, split):
        # An empty phase still yields one (empty) bucket per lane so the
        # static schedule's per-lane iteration stays uniform.
        parts = split([], 3)
        assert parts == [[], [], []]

    @pytest.mark.parametrize("split", [partition_block, partition_cyclic])
    def test_partition_fewer_tasks_than_lanes(self, split):
        tasks = self.make_tasks(2)
        parts = split(tasks, 5)
        assert len(parts) == 5
        assert sorted(t.task_id for p in parts for t in p) == \
            sorted(t.task_id for t in tasks)
        assert all(len(p) <= 1 for p in parts)

    @pytest.mark.parametrize("split", [partition_block, partition_cyclic])
    def test_partition_single_lane_gets_everything(self, split):
        tasks = self.make_tasks(7)
        parts = split(tasks, 1)
        assert parts == [tasks]
