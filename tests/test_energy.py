"""Tests for the energy model (repro.arch.energy)."""

import dataclasses

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.arch.energy import EnergyParameters, estimate_energy
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta
from repro.workloads.synthetic import SharedReadTasks, UniformTasks


@pytest.fixture(scope="module")
def delta_result():
    w = UniformTasks(num_tasks=16, trips=128)
    return Delta(default_delta_config(lanes=4)).run(w.build_program())


def test_all_components_nonnegative(delta_result):
    breakdown = estimate_energy(delta_result)
    for label, nj in breakdown.rows():
        assert nj >= 0, label


def test_total_is_sum(delta_result):
    b = estimate_energy(delta_result)
    assert b.total == pytest.approx(
        b.compute + b.scratchpad + b.noc + b.dram + b.config + b.dispatch
        + b.static)


def test_dram_energy_tracks_bytes(delta_result):
    b = estimate_energy(delta_result)
    expected = delta_result.dram_bytes * EnergyParameters().dram_per_byte
    assert b.dram == pytest.approx(expected * 1e-3)


def test_data_movement_subset(delta_result):
    b = estimate_energy(delta_result)
    assert b.data_movement <= b.total
    assert b.data_movement == pytest.approx(b.scratchpad + b.noc + b.dram)


def test_custom_parameters_scale(delta_result):
    base = estimate_energy(delta_result)
    doubled = dataclasses.replace(EnergyParameters(), dram_per_byte=30.0)
    assert estimate_energy(delta_result, doubled).dram == \
        pytest.approx(2 * base.dram)


def test_multicast_saves_energy():
    w = SharedReadTasks(num_tasks=24, region_bytes=8192)
    delta = Delta(default_delta_config(lanes=4)).run(w.build_program())
    static = StaticParallel(default_baseline_config(lanes=4)).run(
        w.build_program())
    assert estimate_energy(delta).total < estimate_energy(static).total
    assert estimate_energy(delta).dram < estimate_energy(static).dram


def test_compute_energy_counts_trips(delta_result):
    b = estimate_energy(delta_result)
    trips = sum(v for k, v in delta_result.counters.items()
                if k.endswith(".trips"))
    params = EnergyParameters()
    assert b.compute == pytest.approx(
        trips * params.ops_per_trip * params.fu_op * 1e-3)
