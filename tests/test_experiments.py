"""Tests for the experiment functions (repro.eval.experiments).

Every experiment runs here at reduced size (custom workload lists or
narrow sweeps where the function supports them), checking the structure
of the returned data and the core shape claims on fast inputs. The
full-size shape assertions live in benchmarks/.
"""

import pytest

from repro.eval.experiments import (
    ABLATION_STEPS,
    ALL_EXPERIMENTS,
    a1_design_sensitivity,
    f1_headline_speedup,
    f2_ablation,
    f3_lane_scaling,
    f6_granularity,
    f7_policies,
    f8_energy,
    f10_software_runtime,
    r1_resilience,
    t1_machine_config,
    t2_workload_table,
    t3_area,
)
from repro.workloads.synthetic import SharedReadTasks, SkewedTasks

FAST = [SkewedTasks(num_tasks=16), SharedReadTasks(num_tasks=8)]


def test_all_experiments_registered():
    assert set(ALL_EXPERIMENTS) == {
        "T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
        "F8", "F9", "F10", "A1", "R1"}


def test_t1_structure():
    result = t1_machine_config()
    assert result.experiment_id == "T1"
    assert str(result).startswith("== T1")


def test_t2_handles_minimal_describe():
    class Bare(SkewedTasks):
        def describe(self):
            return {"name": "bare"}

    result = t2_workload_table([Bare(num_tasks=4)])
    assert result.data[0][0] == "bare"


def test_f1_small():
    result = f1_headline_speedup(lanes=2, workloads=FAST)
    assert len(result.data) == 2
    assert all(c.speedup > 0 for c in result.data)


def test_f2_ladder_structure():
    result = f2_ablation(lanes=2, workloads=[SharedReadTasks(num_tasks=8)])
    assert set(result.data["per_step"]) == {l for l, _ in ABLATION_STEPS}
    rows = result.data["rows"]
    assert rows[-1][0] == "GEOMEAN"


def test_f3_small_sweep():
    result = f3_lane_scaling(lane_counts=(2, 4), workloads=FAST)
    assert result.data["lanes"] == [2, 4]
    assert len(result.data["speedup"]) == 2
    # Self-scaling is relative to the first lane count.
    assert result.data["delta_scaling"][0] == pytest.approx(1.0)


def test_f6_small_sweep():
    result = f6_granularity(lanes=2, rows_per_task=(8, 32))
    assert result.data["rows_per_task"] == [8, 32]
    assert all(c > 0 for c in result.data["delta_cycles"])


def test_f7_small():
    result = f7_policies(lanes=2, workload_names=("micro-skewed",))
    per_policy = result.data["per_policy"]
    assert per_policy["work-aware"] == [1.0]
    assert len(per_policy) == 4


def test_f8_small():
    result = f8_energy(lanes=2, workloads=[SharedReadTasks(num_tasks=8)])
    assert result.data["ratios"][0] > 1.0
    assert "GEOMEAN" in result.text


def test_f10_small():
    result = f10_software_runtime(lanes=2,
                                  workloads=[SkewedTasks(num_tasks=12)])
    assert result.data["vs_software"][0] > 1.0
    assert len(result.data["grain_ratios"]) == 3


def test_t3_rows_cover_task_hardware():
    result = t3_area()
    labels = [label for label, _v in result.data.rows()]
    assert "task queues" in labels
    assert "work-aware dispatcher" in labels


def test_a1_data_lengths_consistent():
    result = a1_design_sensitivity(lanes=2)
    d = result.data
    assert len(d["windows"]) == len(d["window_cycles"]) \
        == len(d["window_fetches"])
    assert len(d["chunks"]) == len(d["chunk_cycles"])
    assert len(d["depths"]) == len(d["depth_cycles"])


def test_r1_small():
    result = r1_resilience(lanes=2, workloads=FAST, rates=(0.0, 0.05),
                           jobs=1)
    d = result.data
    assert result.experiment_id == "R1"
    assert len(d["speedups"]) == len(d["rates"]) == 2
    assert d["delta_throughput"][0] == pytest.approx(1.0)
    assert d["static_throughput"][0] == pytest.approx(1.0)
    assert d["zero_fault_overhead"] == 0


def test_experiment_result_str_includes_id_and_title():
    result = t1_machine_config()
    text = str(result)
    assert "T1" in text and "machine configuration" in text
