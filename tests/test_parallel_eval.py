"""Tests for the parallel executor and the on-disk result cache.

The contract under test (see docs/evaluation.md):

- the parallel path returns *field-identical* results to the serial path;
- a warm cache serves every point without running a single simulation;
- a corrupted cache entry is dropped and recomputed, never served.
"""

import pickle
import threading
import time

import pytest

from repro.arch.config import default_baseline_config, default_delta_config
from repro.eval.cache import CACHE_FORMAT, EvalCache, workload_cache_key
from repro.eval.parallel import resolve_jobs, run_suite_parallel
from repro.eval.runner import run_suite, simulation_count
from repro.util.fingerprint import comparison_fingerprint, result_stats
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.synthetic import SharedReadTasks, SkewedTasks

LANES = 4


def fast_workloads():
    """Fresh instances each call — kernels mutate workload programs."""
    return [SkewedTasks(num_tasks=24), SharedReadTasks(num_tasks=12)]


def assert_field_identical(left, right):
    """Every field an experiment reads must match bit-for-bit."""
    assert [c.workload for c in left] == [c.workload for c in right]
    for a, b in zip(left, right):
        assert result_stats(a.delta) == result_stats(b.delta)
        assert result_stats(a.static) == result_stats(b.static)
        assert a.speedup == b.speedup
        assert a.traffic_ratio == b.traffic_ratio
        assert comparison_fingerprint(a) == comparison_fingerprint(b)


class TestParallelExecutor:
    def test_parallel_equals_serial_field_for_field(self):
        serial = run_suite(lanes=LANES, workloads=fast_workloads(), jobs=1)
        parallel = run_suite_parallel(lanes=LANES,
                                      workloads=fast_workloads(), jobs=4)
        assert_field_identical(serial, parallel)

    def test_run_suite_delegates_jobs(self):
        serial = run_suite(lanes=LANES, workloads=fast_workloads(), jobs=1)
        parallel = run_suite(lanes=LANES, workloads=fast_workloads(), jobs=2)
        assert_field_identical(serial, parallel)

    def test_generous_timeout_completes_normally(self):
        # A budget no real point hits: the timed path must still be
        # field-identical to the serial path.
        serial = run_suite(lanes=LANES, workloads=fast_workloads(), jobs=1)
        timed = run_suite_parallel(lanes=LANES,
                                   workloads=fast_workloads(), jobs=2,
                                   timeout=600.0)
        assert_field_identical(serial, timed)

    def test_timeout_bounds_the_serial_recompute_too(self):
        # A microscopic per-point budget times out in the pool AND in the
        # bounded serial recompute: the point is genuinely over budget, so
        # the suite raises instead of hanging on an unbounded fallback.
        from repro.eval.parallel import PointTimeoutError

        with pytest.raises(PointTimeoutError, match="budget"):
            run_suite_parallel(lanes=LANES, workloads=fast_workloads(),
                               jobs=2, timeout=1e-9)

    def test_unpicklable_workload_falls_back_to_serial(self):
        workloads = fast_workloads()
        # A lambda attribute defeats pickling, so the pool path cannot
        # ship this workload; the batch must fall back to serial, and the
        # outcomes must say so — distinctly from a timeout recovery.
        workloads[0].unpicklable = lambda: None
        serial = run_suite(lanes=LANES, workloads=fast_workloads(), jobs=1)
        outcomes: list = []
        fallback = run_suite_parallel(lanes=LANES, workloads=workloads,
                                      jobs=2, outcomes=outcomes)
        assert_field_identical(serial, fallback)
        assert len(outcomes) == len(workloads)
        assert "recovered" in outcomes
        assert "recovered-after-timeout" not in outcomes

    def test_resolve_jobs_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(1) == 1
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert resolve_jobs(None) == 1


def _sleeping_compare(spec):
    """Stand-in point that outlives every budget (module-level so the
    fork-started pool workers resolve it by reference)."""
    time.sleep(30)


class TestCancellation:
    """Cooperative cancellation: points resolve to outcome ``"cancelled"``
    with result ``None`` — never an exception, whatever state the point
    was in (queued, in the pool, or mid serial-recompute)."""

    def test_pre_cancelled_sweep_computes_nothing(self):
        from repro.eval.runner import simulation_count

        cancel = threading.Event()
        cancel.set()
        before = simulation_count()
        outcomes: list = []
        results = run_suite_parallel(lanes=LANES,
                                     workloads=fast_workloads(), jobs=1,
                                     outcomes=outcomes, cancel=cancel)
        assert results == [None, None]
        assert outcomes == ["cancelled", "cancelled"]
        assert simulation_count() == before

    def test_cancel_mid_sweep_marks_remaining_points_cancelled(self):
        # The first settled point fires the cancel: everything after it
        # must resolve as cancelled, everything before it stays computed.
        cancel = threading.Event()
        outcomes: list = []
        settled: list = []

        def on_result(index, comparison, outcome):
            settled.append((index, outcome))
            cancel.set()

        workloads = fast_workloads() + [SpmvWorkload()]
        results = run_suite_parallel(lanes=LANES, workloads=workloads,
                                     jobs=2, outcomes=outcomes,
                                     cancel=cancel, on_result=on_result)
        assert "cancelled" in outcomes
        assert len(settled) == len(workloads)
        for comparison, outcome in zip(results, outcomes):
            if outcome == "cancelled":
                assert comparison is None
            else:
                assert comparison is not None

    def test_cancelled_timeout_recovery_reports_cancelled(self, monkeypatch):
        # Regression: a point that times out in the pool AND whose serial
        # recompute is then cancelled must settle as "cancelled" — not
        # raise PointTimeoutError or a pool-teardown error at the caller.
        import multiprocessing

        from repro.eval import parallel as parallel_mod
        from repro.eval.parallel import run_points

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork workers to inherit the patched point")
        monkeypatch.setattr(parallel_mod, "_compare_point",
                            _sleeping_compare)
        cancel = threading.Event()
        timer = threading.Timer(0.45, cancel.set)
        timer.start()
        delta = default_delta_config(lanes=LANES)
        static = default_baseline_config(lanes=LANES)
        points = [(workload, delta, static, True)
                  for workload in fast_workloads()]
        outcomes: list = []
        try:
            results = run_points(points, jobs=2, timeout=0.3,
                                 outcomes=outcomes, cancel=cancel)
        finally:
            timer.cancel()
        assert results == [None, None]
        assert outcomes == ["cancelled", "cancelled"]

    def test_cancelled_pool_failure_reports_cancelled(self):
        # The other half of the regression: when the bounded recompute's
        # pool machinery fails *while the cancel event is set*,
        # cancellation must win over the secondary error.
        from repro.eval.parallel import _Cancelled, _recover_point

        delta = default_delta_config(lanes=LANES)
        static = default_baseline_config(lanes=LANES)
        spec = (SkewedTasks(num_tasks=24), delta, static, True)
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(_Cancelled):
            _recover_point(spec, timeout=600.0, cancel=cancel)


class TestEvalCache:
    def test_cache_hit_skips_simulation(self, tmp_path):
        cache = EvalCache(tmp_path)
        cold = run_suite_parallel(lanes=LANES, workloads=fast_workloads(),
                                  jobs=1, cache=cache)
        assert cache.stores == len(cold)
        before = simulation_count()
        warm = run_suite_parallel(lanes=LANES, workloads=fast_workloads(),
                                  jobs=1, cache=cache)
        assert simulation_count() == before, \
            "warm cache must not run any simulation"
        assert cache.hits == len(warm)
        assert_field_identical(cold, warm)

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        cache = EvalCache(tmp_path)
        cold = run_suite_parallel(lanes=LANES, workloads=fast_workloads(),
                                  jobs=1, cache=cache)
        # Entries are sharded: <root>/eval/<digest prefix>/<key>.pkl.
        for entry in tmp_path.rglob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        before = simulation_count()
        recomputed = run_suite_parallel(lanes=LANES,
                                        workloads=fast_workloads(),
                                        jobs=1, cache=cache)
        assert simulation_count() == before + len(recomputed), \
            "corrupted entries must be recomputed"
        assert_field_identical(cold, recomputed)

    def test_tampered_payload_fails_fingerprint_check(self, tmp_path):
        cache = EvalCache(tmp_path)
        workload = SkewedTasks(num_tasks=24)
        delta_cfg = default_delta_config(lanes=LANES)
        static_cfg = default_baseline_config(lanes=LANES)
        key = cache.key_for(workload, delta_cfg, static_cfg)
        comparison = run_suite_parallel(lanes=LANES, workloads=[workload],
                                        jobs=1, cache=cache)[0]
        # Valid pickle, wrong contents: the stored fingerprint no longer
        # matches, so the entry must be dropped, not served.
        path = cache._path(key)
        entry = pickle.loads(path.read_bytes())
        entry["comparison"].delta.cycles += 1
        path.write_bytes(pickle.dumps(entry))
        assert cache.get(key) is None
        assert not path.exists()
        fresh = run_suite_parallel(lanes=LANES,
                                   workloads=[SkewedTasks(num_tasks=24)],
                                   jobs=1, cache=cache)[0]
        assert result_stats(fresh.delta) == result_stats(comparison.delta)

    def test_key_distinguishes_configs_and_params(self, tmp_path):
        cache = EvalCache(tmp_path)
        static = default_baseline_config(lanes=LANES)
        base = cache.key_for(SpmvWorkload(), default_delta_config(LANES),
                             static)
        other_lanes = cache.key_for(SpmvWorkload(),
                                    default_delta_config(8), static)
        other_grain = cache.key_for(SpmvWorkload(rows_per_task=2),
                                    default_delta_config(LANES), static)
        assert len({base, other_lanes, other_grain}) == 3

    def test_workload_cache_key_is_stable(self):
        assert workload_cache_key(SpmvWorkload()) == \
            workload_cache_key(SpmvWorkload())
        assert isinstance(CACHE_FORMAT, int)

    def test_clear_removes_entries(self, tmp_path):
        cache = EvalCache(tmp_path)
        run_suite_parallel(lanes=LANES, workloads=fast_workloads(), jobs=1,
                           cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCodeVersionInvalidation:
    """The code-version digest must cover the whole simulator — in
    particular the repro.machine composition layer — so editing any of it
    invalidates cached comparisons."""

    def test_machine_layer_is_covered_by_the_digest(self):
        from repro.eval.cache import source_files
        covered = {p.as_posix() for p in source_files()}
        for module in ("machine/machine.py", "machine/session.py",
                       "machine/metrics.py", "machine/result.py"):
            assert any(path.endswith(f"repro/{module}") for path in covered), \
                f"repro/{module} missing from code-version digest"

    def test_graph_layer_is_covered_by_the_digest(self):
        # The structure layer added after the machine layer must join the
        # same digest: editing repro/graph/ invalidates eval-cache entries.
        from repro.eval.cache import source_files
        covered = {p.as_posix() for p in source_files()}
        for module in ("graph/ir.py", "graph/analyses.py",
                       "graph/cache.py", "graph/render.py"):
            assert any(path.endswith(f"repro/{module}") for path in covered), \
                f"repro/{module} missing from code-version digest"

    def test_machine_layer_change_invalidates_digest(self, tmp_path):
        from repro.eval.cache import digest_tree
        (tmp_path / "machine").mkdir()
        source = tmp_path / "machine" / "session.py"
        source.write_text("STALL_LIMIT = 1\n")
        before = digest_tree(tmp_path)
        source.write_text("STALL_LIMIT = 2\n")
        assert digest_tree(tmp_path) != before

    def test_code_version_change_invalidates_cache_keys(self, tmp_path,
                                                        monkeypatch):
        import repro.eval.cache as cache_mod
        cache = EvalCache(tmp_path)
        workload = SpmvWorkload()
        delta_cfg = default_delta_config(LANES)
        static_cfg = default_baseline_config(lanes=LANES)
        old = cache.key_for(workload, delta_cfg, static_cfg)
        monkeypatch.setattr(cache_mod, "code_version",
                            lambda: "machine-layer-edited")
        new = cache.key_for(workload, delta_cfg, static_cfg)
        assert new != old


class TestSpeedupGuard:
    def test_zero_cycle_delta_yields_infinite_speedup(self):
        comparison = run_suite(lanes=LANES,
                               workloads=[SkewedTasks(num_tasks=24)])[0]
        comparison.delta.cycles = 0
        assert comparison.speedup == float("inf")
        assert comparison.traffic_ratio > 0
