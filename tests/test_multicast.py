"""Unit tests for the multicast manager (repro.core.multicast)."""

import pytest

from repro.arch.config import FabricConfig, LaneConfig
from repro.arch.dram import Dram
from repro.arch.lane import Lane
from repro.arch.mapper import Mapper
from repro.arch.noc import Noc
from repro.core.multicast import MulticastManager
from repro.sim import Counters, Environment


def make_system(lanes=4, window=16, spad_bytes=16 * 1024):
    env = Environment()
    counters = Counters()
    noc = Noc(env, counters, lanes, link_bytes_per_cycle=16, hop_latency=1,
              header_bytes=0, multicast_enabled=True)
    dram = Dram(env, counters, bytes_per_cycle=16, latency=20,
                random_penalty=1.5)
    lane_cfg = LaneConfig(fabric=FabricConfig(), spad_bytes=spad_bytes)
    mapper = Mapper(lane_cfg.fabric)
    lane_objs = [Lane(env, counters, i, lane_cfg, noc, dram, mapper)
                 for i in range(lanes)]
    mgr = MulticastManager(env, counters, noc, dram, lane_objs,
                           window_cycles=window)
    return env, counters, mgr, lane_objs


def ensure(env, mgr, region, nbytes, lane, locality=1.0):
    return env.process(mgr.ensure(region, nbytes, locality, lane))


def test_single_request_fetches_once():
    env, counters, mgr, lanes = make_system()
    ensure(env, mgr, "r", 1024, 0)
    env.run()
    assert counters.get("mcast.fetches") == 1
    assert counters.get("dram.read_bytes") == 1024
    assert mgr.is_resident("r", 0)
    assert lanes[0].spad.is_resident("r")


def test_requests_in_window_coalesce():
    env, counters, mgr, lanes = make_system(window=32)

    def requester(lane, delay):
        yield env.timeout(delay)
        yield from mgr.ensure("r", 2048, 1.0, lane)

    for lane, delay in ((0, 0), (1, 5), (2, 20)):
        env.process(requester(lane, delay))
    env.run()
    assert counters.get("mcast.fetches") == 1
    assert counters.get("mcast.coalesced") == 2
    assert counters.get("dram.read_bytes") == 2048  # ONE fetch
    for lane in (0, 1, 2):
        assert mgr.is_resident("r", lane)


def test_request_after_window_is_separate_fetch():
    env, counters, mgr, lanes = make_system(window=8)

    def late(lane):
        yield env.timeout(5000)
        yield from mgr.ensure("r", 512, 1.0, lane)

    ensure(env, mgr, "r", 512, 0)
    env.process(late(1))
    env.run()
    assert counters.get("mcast.fetches") == 2


def test_resident_hit_is_free():
    env, counters, mgr, lanes = make_system()

    def twice():
        yield from mgr.ensure("r", 256, 1.0, 0)
        t_mid = env.now
        yield from mgr.ensure("r", 256, 1.0, 0)
        assert env.now == t_mid  # second ensure costs nothing

    env.process(twice())
    env.run()
    assert counters.get("mcast.hits") == 1
    assert counters.get("mcast.fetches") == 1


def test_different_regions_fetch_separately():
    env, counters, mgr, lanes = make_system()
    ensure(env, mgr, "a", 256, 0)
    ensure(env, mgr, "b", 256, 1)
    env.run()
    assert counters.get("mcast.fetches") == 2


def test_eviction_updates_manager_residency():
    # Scratchpad fits only one region at a time.
    env, counters, mgr, lanes = make_system(lanes=1, spad_bytes=1024)

    def sequence():
        yield from mgr.ensure("a", 800, 1.0, 0)
        assert mgr.is_resident("a", 0)
        yield from mgr.ensure("b", 800, 1.0, 0)

    env.process(sequence())
    env.run()
    assert mgr.is_resident("b", 0)
    assert not mgr.is_resident("a", 0)
    assert not lanes[0].spad.is_resident("a")


def test_region_larger_than_spad_streams_but_not_resident():
    env, counters, mgr, lanes = make_system(lanes=1, spad_bytes=1024)
    ensure(env, mgr, "huge", 4096, 0)
    env.run()
    assert counters.get("mcast.too_large") == 1
    assert not mgr.is_resident("huge", 0)
    # The fetch still happened (data streamed through).
    assert counters.get("dram.read_bytes") == 4096


def test_multicast_traffic_less_than_unicasts():
    env, counters, mgr, lanes = make_system(lanes=4, window=16)
    for lane in range(4):
        ensure(env, mgr, "r", 4096, lane)
    env.run()
    noc_bytes = counters.get("noc.bytes")
    # Upper bound if each lane had unicast its own copy from MEM:
    noc_mgr = mgr.noc
    per_lane = [4096 * noc_mgr.hops("MEM", f"lane{i}") for i in range(4)]
    assert noc_bytes < sum(per_lane)


def test_resident_lanes_query():
    env, counters, mgr, lanes = make_system(window=16)
    ensure(env, mgr, "r", 128, 0)
    ensure(env, mgr, "r", 128, 2)
    env.run()
    assert mgr.resident_lanes("r") == {0, 2}
