"""Unit tests for the multicast manager (repro.core.multicast)."""

import pytest

from repro.arch.config import FabricConfig, LaneConfig
from repro.arch.dram import Dram
from repro.arch.lane import Lane
from repro.arch.mapper import Mapper
from repro.arch.noc import Noc
from repro.core.multicast import MulticastManager
from repro.sim import Counters, Environment


def make_system(lanes=4, window=16, spad_bytes=16 * 1024,
                expected_degrees=None):
    env = Environment()
    counters = Counters()
    noc = Noc(env, counters, lanes, link_bytes_per_cycle=16, hop_latency=1,
              header_bytes=0, multicast_enabled=True)
    dram = Dram(env, counters, bytes_per_cycle=16, latency=20,
                random_penalty=1.5)
    lane_cfg = LaneConfig(fabric=FabricConfig(), spad_bytes=spad_bytes)
    mapper = Mapper(lane_cfg.fabric)
    lane_objs = [Lane(env, counters, i, lane_cfg, noc, dram, mapper)
                 for i in range(lanes)]
    mgr = MulticastManager(env, counters, noc, dram, lane_objs,
                           window_cycles=window,
                           expected_degrees=expected_degrees)
    return env, counters, mgr, lane_objs


def ensure(env, mgr, region, nbytes, lane, locality=1.0):
    return env.process(mgr.ensure(region, nbytes, locality, lane))


def test_single_request_fetches_once():
    env, counters, mgr, lanes = make_system()
    ensure(env, mgr, "r", 1024, 0)
    env.run()
    assert counters.get("mcast.fetches") == 1
    assert counters.get("dram.read_bytes") == 1024
    assert mgr.is_resident("r", 0)
    assert lanes[0].spad.is_resident("r")


def test_requests_in_window_coalesce():
    env, counters, mgr, lanes = make_system(window=32)

    def requester(lane, delay):
        yield env.timeout(delay)
        yield from mgr.ensure("r", 2048, 1.0, lane)

    for lane, delay in ((0, 0), (1, 5), (2, 20)):
        env.process(requester(lane, delay))
    env.run()
    assert counters.get("mcast.fetches") == 1
    assert counters.get("mcast.coalesced") == 2
    assert counters.get("dram.read_bytes") == 2048  # ONE fetch
    for lane in (0, 1, 2):
        assert mgr.is_resident("r", lane)


def test_request_after_window_is_separate_fetch():
    env, counters, mgr, lanes = make_system(window=8)

    def late(lane):
        yield env.timeout(5000)
        yield from mgr.ensure("r", 512, 1.0, lane)

    ensure(env, mgr, "r", 512, 0)
    env.process(late(1))
    env.run()
    assert counters.get("mcast.fetches") == 2


def test_resident_hit_is_free():
    env, counters, mgr, lanes = make_system()

    def twice():
        yield from mgr.ensure("r", 256, 1.0, 0)
        t_mid = env.now
        yield from mgr.ensure("r", 256, 1.0, 0)
        assert env.now == t_mid  # second ensure costs nothing

    env.process(twice())
    env.run()
    assert counters.get("mcast.hits") == 1
    assert counters.get("mcast.fetches") == 1


def test_different_regions_fetch_separately():
    env, counters, mgr, lanes = make_system()
    ensure(env, mgr, "a", 256, 0)
    ensure(env, mgr, "b", 256, 1)
    env.run()
    assert counters.get("mcast.fetches") == 2


def test_eviction_updates_manager_residency():
    # Scratchpad fits only one region at a time.
    env, counters, mgr, lanes = make_system(lanes=1, spad_bytes=1024)

    def sequence():
        yield from mgr.ensure("a", 800, 1.0, 0)
        assert mgr.is_resident("a", 0)
        yield from mgr.ensure("b", 800, 1.0, 0)

    env.process(sequence())
    env.run()
    assert mgr.is_resident("b", 0)
    assert not mgr.is_resident("a", 0)
    assert not lanes[0].spad.is_resident("a")


def test_region_larger_than_spad_streams_but_not_resident():
    env, counters, mgr, lanes = make_system(lanes=1, spad_bytes=1024)
    ensure(env, mgr, "huge", 4096, 0)
    env.run()
    assert counters.get("mcast.too_large") == 1
    assert not mgr.is_resident("huge", 0)
    # The fetch still happened (data streamed through).
    assert counters.get("dram.read_bytes") == 4096


def test_multicast_traffic_less_than_unicasts():
    env, counters, mgr, lanes = make_system(lanes=4, window=16)
    for lane in range(4):
        ensure(env, mgr, "r", 4096, lane)
    env.run()
    noc_bytes = counters.get("noc.bytes")
    # Upper bound if each lane had unicast its own copy from MEM:
    noc_mgr = mgr.noc
    per_lane = [4096 * noc_mgr.hops("MEM", f"lane{i}") for i in range(4)]
    assert noc_bytes < sum(per_lane)


def test_resident_lanes_query():
    env, counters, mgr, lanes = make_system(window=16)
    ensure(env, mgr, "r", 128, 0)
    ensure(env, mgr, "r", 128, 2)
    env.run()
    assert mgr.resident_lanes("r") == {0, 2}


# ------------------------------------------------- sharing-set oracle

def test_oracle_closes_window_when_sharing_set_is_full():
    # The recovered sharing degree says 3 readers; once the third arrives
    # the batch serves immediately instead of waiting out the window.
    env, counters, mgr, lanes = make_system(window=1000,
                                            expected_degrees={"r": 3})
    done = {}

    def requester(lane, delay):
        yield env.timeout(delay)
        yield from mgr.ensure("r", 1024, 1.0, lane)
        done[lane] = env.now

    for lane, delay in ((0, 0), (1, 5), (2, 10)):
        env.process(requester(lane, delay))
    env.run()
    assert counters.get("mcast.early_closes") == 1
    assert counters.get("mcast.fetches") == 1
    assert counters.get("mcast.coalesced") == 2
    assert max(done.values()) < 1000  # never waited out the window


def test_oracle_underfilled_batch_falls_back_to_window():
    # Only 2 of the expected 5 readers show up: the window timer still
    # closes the batch, and no early close is recorded.
    env, counters, mgr, lanes = make_system(window=30,
                                            expected_degrees={"r": 5})
    ensure(env, mgr, "r", 512, 0)
    ensure(env, mgr, "r", 512, 1)
    env.run()
    assert counters.get("mcast.fetches") == 1
    assert counters.get("mcast.coalesced") == 1
    assert counters.get("mcast.early_closes") == 0


def test_oracle_preserves_fetch_accounting():
    # The oracle changes *when* a batch closes, never what is fetched or
    # coalesced — the traffic accounting is identical with and without it.
    results = {}
    for label, degrees in (("off", None), ("on", {"r": 3})):
        env, counters, mgr, lanes = make_system(window=32,
                                                expected_degrees=degrees)

        def requester(lane, delay):
            yield env.timeout(delay)
            yield from mgr.ensure("r", 2048, 1.0, lane)

        for lane, delay in ((0, 0), (1, 5), (2, 20)):
            env.process(requester(lane, delay))
        env.run()
        results[label] = (counters.get("mcast.fetches"),
                          counters.get("mcast.coalesced"),
                          counters.get("dram.read_bytes"))
    assert results["on"] == results["off"] == (1, 2, 2048)


def test_default_mode_never_touches_the_oracle_counter():
    # With no expected degrees the counter bag must not even contain the
    # oracle's name — run fingerprints hash the touched-counter set.
    env, counters, mgr, lanes = make_system(window=8)
    ensure(env, mgr, "r", 256, 0)
    ensure(env, mgr, "r", 256, 1)
    env.run()
    assert "mcast.early_closes" not in counters
    assert counters.get("mcast.fetches") == 1
