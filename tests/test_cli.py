"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "spmv" in out
    assert "F1" in out


def test_run_delta(capsys):
    assert main(["run", "micro-uniform", "--lanes", "2"]) == 0
    out = capsys.readouterr().out
    assert "delta" in out
    assert "functional check: OK" in out


def test_run_static_machine(capsys):
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--machine", "static"]) == 0
    assert "static" in capsys.readouterr().out


def test_run_with_counters(capsys):
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--counters"]) == 0
    assert "dram.read_bytes" in capsys.readouterr().out


def test_run_with_trace(tmp_path, capsys):
    trace_file = tmp_path / "t.json"
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--trace", str(trace_file)]) == 0
    assert trace_file.exists()
    assert "trace written" in capsys.readouterr().out


def test_run_with_ablation_flags(capsys):
    assert main(["run", "micro-shared", "--lanes", "2",
                 "--no-mcast", "--no-pipe", "--no-lb"]) == 0


def test_run_with_extensions(capsys):
    assert main(["run", "micro-thrash", "--lanes", "2",
                 "--affinity", "--prefetch"]) == 0


def test_run_unknown_workload_clean_error(capsys):
    assert main(["run", "not-a-workload"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err
    assert "Traceback" not in err


def test_run_invalid_config_clean_error(capsys):
    assert main(["run", "spmv", "--lanes", "0"]) == 2
    assert "lanes must be positive" in capsys.readouterr().err


def test_compare_command(capsys):
    assert main(["compare", "micro-skewed", "--lanes", "2"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_experiment_t1(capsys):
    assert main(["experiment", "t1"]) == 0
    assert "machine configuration" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["experiment", "zz"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_show_tasks(capsys):
    assert main(["show", "micro-tree", "--what", "tasks"]) == 0
    assert "digraph taskgraph" in capsys.readouterr().out


def test_show_graph(capsys):
    assert main(["show", "micro-chain", "--what", "graph"]) == 0
    out = capsys.readouterr().out
    assert "digraph taskgraph" in out
    assert "critical path" in out
    assert "speedup bound" in out


def test_show_dfg(capsys):
    assert main(["show", "micro-uniform", "--what", "dfg"]) == 0
    assert "digraph" in capsys.readouterr().out


def test_show_mapping(capsys):
    assert main(["show", "micro-uniform", "--what", "mapping"]) == 0
    assert "II=" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


# -- fault plans and structured exit codes --------------------------------


def _write_plan(tmp_path, **kwargs):
    from repro.sim.faults import FaultPlan

    path = tmp_path / "plan.json"
    FaultPlan(**kwargs).save(path)
    return str(path)


def test_run_with_faults_recovers(tmp_path, capsys):
    from repro.sim.faults import RetryPolicy

    plan = _write_plan(tmp_path, task_fault_rate=0.3, seed=2,
                       retry=RetryPolicy(max_attempts=10))
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--faults", plan, "--sanitize", "--counters"]) == 0
    out = capsys.readouterr().out
    assert "functional check: OK" in out


def test_compare_with_faults(tmp_path, capsys):
    from repro.sim.faults import RetryPolicy

    plan = _write_plan(tmp_path, task_fault_rate=0.2, seed=3,
                       retry=RetryPolicy(max_attempts=10))
    assert main(["compare", "micro-skewed", "--lanes", "2",
                 "--faults", plan]) == 0
    assert "speedup" in capsys.readouterr().out


def test_missing_faults_file_is_user_error(capsys):
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--faults", "/no/such/plan.json"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "Traceback" not in err


def test_malformed_faults_file_is_user_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--faults", str(path)]) == 2


def test_unrecoverable_fault_exits_6(tmp_path, capsys):
    # Every task faults and the budget is one attempt: recovery exhausts.
    import json as jsonlib

    path = tmp_path / "fatal.json"
    path.write_text(jsonlib.dumps({
        "task_fault_rate": 1.0,
        "retry": {"max_attempts": 1, "backoff_cycles": 8.0},
    }))
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--faults", str(path)]) == 6
    err = capsys.readouterr().err
    assert "UnrecoverableFault" in err
    assert "transient-task-fault" in err
    assert "Traceback" not in err


@pytest.mark.parametrize("make_exc,code", [
    (lambda: __import__("repro.machine.session", fromlist=["x"])
        .ExecutionStalled("stalled at cycle 5"), 3),
    (lambda: __import__("repro.graph.ir", fromlist=["x"])
        .GraphValidationError("cycle in task graph"), 4),
    (lambda: __import__("repro.sim.sanitize", fromlist=["x"])
        .ModelInvariantError("task-conservation", "lost a task"), 5),
    (lambda: __import__("repro.sim.faults", fromlist=["x"])
        .UnrecoverableFault("lane-fail-stop", "all lanes dead"), 6),
])
def test_structured_exit_codes(monkeypatch, capsys, make_exc, code):
    exc = make_exc()

    def boom(args):
        raise exc

    monkeypatch.setattr("repro.cli._cmd_run", boom)
    assert main(["run", "micro-uniform"]) == code
    err = capsys.readouterr().err
    assert type(exc).__name__ in err
    assert "Traceback" not in err


def test_diagnostic_is_capped_to_one_screen(monkeypatch, capsys):
    from repro.machine.session import ExecutionStalled

    def boom(args):
        raise ExecutionStalled("stalled\n" + "\n".join(
            f"line {i}" for i in range(100)))

    monkeypatch.setattr("repro.cli._cmd_run", boom)
    assert main(["run", "micro-uniform"]) == 3
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) <= 31
    assert "more lines" in err
