"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "spmv" in out
    assert "F1" in out


def test_run_delta(capsys):
    assert main(["run", "micro-uniform", "--lanes", "2"]) == 0
    out = capsys.readouterr().out
    assert "delta" in out
    assert "functional check: OK" in out


def test_run_static_machine(capsys):
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--machine", "static"]) == 0
    assert "static" in capsys.readouterr().out


def test_run_with_counters(capsys):
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--counters"]) == 0
    assert "dram.read_bytes" in capsys.readouterr().out


def test_run_with_trace(tmp_path, capsys):
    trace_file = tmp_path / "t.json"
    assert main(["run", "micro-uniform", "--lanes", "2",
                 "--trace", str(trace_file)]) == 0
    assert trace_file.exists()
    assert "trace written" in capsys.readouterr().out


def test_run_with_ablation_flags(capsys):
    assert main(["run", "micro-shared", "--lanes", "2",
                 "--no-mcast", "--no-pipe", "--no-lb"]) == 0


def test_run_with_extensions(capsys):
    assert main(["run", "micro-thrash", "--lanes", "2",
                 "--affinity", "--prefetch"]) == 0


def test_run_unknown_workload_clean_error(capsys):
    assert main(["run", "not-a-workload"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err
    assert "Traceback" not in err


def test_run_invalid_config_clean_error(capsys):
    assert main(["run", "spmv", "--lanes", "0"]) == 2
    assert "lanes must be positive" in capsys.readouterr().err


def test_compare_command(capsys):
    assert main(["compare", "micro-skewed", "--lanes", "2"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_experiment_t1(capsys):
    assert main(["experiment", "t1"]) == 0
    assert "machine configuration" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["experiment", "zz"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_show_tasks(capsys):
    assert main(["show", "micro-tree", "--what", "tasks"]) == 0
    assert "digraph taskgraph" in capsys.readouterr().out


def test_show_graph(capsys):
    assert main(["show", "micro-chain", "--what", "graph"]) == 0
    out = capsys.readouterr().out
    assert "digraph taskgraph" in out
    assert "critical path" in out
    assert "speedup bound" in out


def test_show_dfg(capsys):
    assert main(["show", "micro-uniform", "--what", "dfg"]) == 0
    assert "digraph" in capsys.readouterr().out


def test_show_mapping(capsys):
    assert main(["show", "micro-uniform", "--what", "mapping"]) == 0
    assert "II=" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
