"""The bench harness measures the machine tier-1 tests — pinned.

Three contracts keep the perf numbers honest:

- **Config identity**: the microharness and the trajectory recorder build
  exactly the ``MachineConfig`` the tier-1 suite and the evaluation
  harness build (``default_delta_config``), so BENCH_*.json points
  describe the code paths the tests exercise, not a bench-only machine.
- **Jobs plumbing**: ``--repro-jobs`` / ``REPRO_JOBS`` resolve through
  :func:`repro.eval.parallel.resolve_jobs` everywhere — same default,
  same precedence, same garbage handling.
- **Trajectory schema**: the committed ``BENCH_*.json`` carries the
  fields the CI regression gate reads, and the regression logic flags
  exactly the >tolerance throughput drops.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_trajectory  # noqa: E402

from repro.arch.config import default_delta_config  # noqa: E402
from repro.eval.parallel import resolve_jobs  # noqa: E402
from repro.sim import (  # noqa: E402
    Environment,
    FastEnvironment,
    total_events_processed,
)
from repro.workloads.registry import workload_names  # noqa: E402


# ------------------------------------------------------ config identity

@pytest.mark.parametrize("lanes", [2, 8])
def test_bench_config_identical_to_tier1_path(lanes):
    """The bench path and the tier-1/eval path build the same machine."""
    assert bench_trajectory.point_config(lanes) == \
        default_delta_config(lanes=lanes)


def test_pinned_subset_is_registered_and_at_tier1_lanes():
    assert bench_trajectory.PINNED_LANES == 8  # the golden-report lane count
    registered = set(workload_names())
    for name in bench_trajectory.PINNED_WORKLOADS:
        assert name in registered, f"pinned workload {name!r} not registered"


# ------------------------------------------------------ jobs plumbing

def test_repro_jobs_env_resolution(monkeypatch):
    """REPRO_JOBS resolves identically for bench and eval callers."""
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert resolve_jobs(None) == 4
    assert resolve_jobs(0) == 4
    # An explicit jobs argument always wins over the environment.
    assert resolve_jobs(2) == 2
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert resolve_jobs(None) == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs(None) == 1


def test_microharness_accepts_repro_jobs_flag():
    """Both CLI entry points expose --repro-jobs like benchmarks/conftest."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import bench_hotpath
    finally:
        sys.path.pop(0)
    for module in (bench_hotpath, bench_trajectory):
        with pytest.raises(SystemExit) as excinfo:
            module.main(["--help"])
        assert excinfo.value.code in (0, None)
    # The parser itself rejects garbage instead of silently ignoring it.
    with pytest.raises(SystemExit):
        bench_hotpath.main(["--repro-jobs", "many"])


# ------------------------------------------------------ events metric

def test_total_events_processed_counts_both_kernels():
    for env_cls in (Environment, FastEnvironment):
        env = env_cls()

        def proc():
            for _ in range(5):
                yield env.timeout(1)

        env.process(proc())
        before = total_events_processed()
        env.run()
        assert total_events_processed() > before
        assert env.events_processed > 0


# ------------------------------------------------------ trajectory file

def test_committed_trajectory_schema():
    """The committed BENCH_*.json has everything the CI gate reads."""
    path = bench_trajectory.latest_baseline()
    assert path is not None, "no BENCH_*.json committed at the repo root"
    payload = json.loads(path.read_text())
    assert payload["bench_id"] == path.stem
    for section in ("suite", "reference", "pinned"):
        block = payload[section]
        assert block["events"] > 0
        assert block["events_per_sec"] > 0
        assert block["wall_clock_s"] > 0
        for point in block["workloads"].values():
            assert point["events"] > 0 and point["sim_s"] >= 0
    # The suite sections cover the full registry; pinned covers the pin.
    assert set(payload["suite"]["workloads"]) == set(workload_names())
    assert set(payload["reference"]["workloads"]) == set(workload_names())
    assert set(payload["pinned"]["workloads"]) == \
        set(bench_trajectory.PINNED_WORKLOADS)
    assert payload["speedup_vs_reference"] > 0
    # Event counts are deterministic, so both recorded engines must agree
    # with what the simulator produces structurally: fast never processes
    # more slots than the reference kernel (it only elides events).
    assert payload["suite"]["events"] <= payload["reference"]["events"]


def test_perf_regression_logic():
    def payload(suite_eps, workload_eps):
        return {"suite": {"events_per_sec": suite_eps,
                          "workloads": {"spmm":
                                        {"events_per_sec": workload_eps}}}}

    baseline = payload(100_000, 50_000)
    # Identical → clean; small dip within tolerance → clean.
    assert bench_trajectory.perf_regressions(baseline, baseline) == []
    assert bench_trajectory.perf_regressions(
        payload(85_000, 45_000), baseline) == []
    # >20% aggregate drop → named regression.
    problems = bench_trajectory.perf_regressions(
        payload(70_000, 50_000), baseline)
    assert len(problems) == 1 and "suite" in problems[0]
    # Per-workload checking is opt-in (the CI gate uses aggregate only).
    assert bench_trajectory.perf_regressions(
        payload(100_000, 30_000), baseline) == []
    problems = bench_trajectory.perf_regressions(
        payload(100_000, 30_000), baseline, per_workload=True)
    assert len(problems) == 1 and "spmm" in problems[0]
    # A zero/absent baseline never divides by zero or fails.
    assert bench_trajectory.perf_regressions(
        payload(100_000, 50_000), payload(0, 0)) == []
