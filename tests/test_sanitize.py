"""Tests for the model sanitizer (repro.sim.sanitize).

Three layers:

- unit tests drive a bare :class:`Sanitizer` through each invariant in the
  catalog and assert the violation names the offending task/lane/cycle;
- injected-model-bug tests monkeypatch real simulator components into
  misbehaving and assert the sanitizer catches the class of bug it was
  built for;
- the differential matrix runs every evaluation workload on both machines
  with and without the sanitizer and asserts the result fingerprints are
  bit-identical — the sanitizer is purely observational.
"""

import dataclasses
import itertools

import pytest

from repro.arch.config import (
    FeatureFlags,
    default_baseline_config,
    default_delta_config,
)
from repro.baseline.static import StaticParallel
from repro.core.delta import Delta, _DeltaRun
from repro.core.dispatcher import Dispatcher
from repro.machine import Machine
from repro.sim.sanitize import (
    ModelInvariantError,
    NullSanitizer,
    Sanitizer,
    env_sanitize_requested,
)
from repro.sim.stats import UtilizationTracker
from repro.util.fingerprint import result_stats
from repro.workloads import get_workload
from repro.workloads.registry import workload_names
from repro.workloads.synthetic import (
    ChainTasks,
    SharedReadTasks,
    UniformTasks,
)


class _StubTask:
    """Duck-typed task: the sanitizer needs only these four attributes."""

    _ids = itertools.count(1000)

    def __init__(self, name, after=(), stream_from=()):
        self.task_id = next(self._ids)
        self.name = name
        self.after = list(after)
        self.stream_from = list(stream_from)


class _StubMetrics:
    """Counter store stub for finish(): dotted get over a dict."""

    def __init__(self, **values):
        self.values = {k.replace("_", ".", 1): v for k, v in values.items()}

    def get(self, name):
        return self.values.get(name, 0.0)


def _lifecycle(san, task, lane=0, t0=0.0):
    """Drive one task through a clean submit/dispatch/start/complete."""
    san.task_submitted(task, t0)
    san.task_dispatched(task, lane, t0)
    san.task_started(task, lane, t0)
    san.task_completed(task, lane, t0 + 1)


def _clean_metrics(n=1):
    return _StubMetrics(dispatch_submitted=n, dispatch_dispatched=n,
                        dispatch_completed=n)


class TestInvariantCatalog:
    """Each invariant has a negative test naming it precisely."""

    def _expect(self, invariant, fn, *args, **kwargs):
        with pytest.raises(ModelInvariantError) as excinfo:
            fn(*args, **kwargs)
        err = excinfo.value
        assert err.invariant == invariant
        assert f"[{invariant}]" in str(err)
        return err

    # -- cycle-monotonicity ------------------------------------------------

    def test_clock_moving_backwards(self):
        san = Sanitizer()
        err = self._expect("cycle-monotonicity",
                           san.clock_advanced, 100.0, 99.0)
        assert "backwards" in str(err)

    def test_clock_nonfinite(self):
        san = Sanitizer()
        self._expect("cycle-monotonicity",
                     san.clock_advanced, 0.0, float("inf"))

    def test_event_before_last_observed_cycle(self):
        san = Sanitizer()
        san.task_submitted(_StubTask("late"), 50.0)
        err = self._expect("cycle-monotonicity",
                           san.task_submitted, _StubTask("early"), 10.0)
        assert err.cycle == 10.0

    def test_negative_event_timestamp(self):
        san = Sanitizer()
        self._expect("cycle-monotonicity",
                     san.task_submitted, _StubTask("t"), -1.0)

    # -- task-conservation -------------------------------------------------

    def test_double_submit(self):
        san = Sanitizer()
        task = _StubTask("dup")
        san.task_submitted(task, 0.0)
        err = self._expect("task-conservation",
                           san.task_submitted, task, 1.0)
        assert err.task == "dup" and "task=dup" in str(err)

    def test_dispatch_without_submit(self):
        san = Sanitizer()
        err = self._expect("task-conservation", san.task_dispatched,
                           _StubTask("ghost"), 3, 5.0)
        assert err.lane == 3 and err.cycle == 5.0

    def test_double_dispatch(self):
        san = Sanitizer()
        task = _StubTask("twice")
        san.task_submitted(task, 0.0)
        san.task_dispatched(task, 0, 1.0)
        self._expect("task-conservation",
                     san.task_dispatched, task, 1, 2.0)

    def test_steal_of_running_task(self):
        san = Sanitizer()
        task = _StubTask("running")
        san.task_submitted(task, 0.0)
        san.task_dispatched(task, 0, 1.0)
        san.task_started(task, 0, 2.0)
        self._expect("task-conservation",
                     san.task_stolen, task, 0, 1, 3.0)

    def test_complete_without_start(self):
        san = Sanitizer()
        task = _StubTask("phantom")
        san.task_submitted(task, 0.0)
        self._expect("task-conservation",
                     san.task_completed, task, 0, 1.0)

    def test_double_complete(self):
        san = Sanitizer()
        task = _StubTask("again")
        _lifecycle(san, task)
        self._expect("task-conservation",
                     san.task_completed, task, 0, 2.0)

    def test_unfinished_task_fails_finish(self):
        san = Sanitizer()
        task = _StubTask("lost")
        san.task_submitted(task, 0.0)
        san.task_dispatched(task, 0, 1.0)
        err = self._expect("task-conservation",
                           san.finish, _clean_metrics(), [])
        assert "never completed" in str(err)
        assert "dispatched" in str(err)  # its last observed state

    def test_counter_disagreement_fails_finish(self):
        san = Sanitizer()
        _lifecycle(san, _StubTask("ok"))
        metrics = _StubMetrics(dispatch_submitted=2,  # counter says 2
                               dispatch_dispatched=1,
                               dispatch_completed=1)
        err = self._expect("task-conservation", san.finish, metrics, [])
        assert "dispatch.submitted" in str(err)

    # -- dependence-legality -----------------------------------------------

    def test_start_before_after_producer_completed(self):
        san = Sanitizer()
        producer = _StubTask("producer")
        consumer = _StubTask("consumer", after=[producer])
        san.task_submitted(producer, 0.0)
        san.task_submitted(consumer, 0.0)
        san.task_dispatched(consumer, 1, 1.0)
        err = self._expect("dependence-legality",
                           san.task_started, consumer, 1, 2.0)
        assert "producer" in str(err) and err.task == "consumer"

    def test_stream_consumer_needs_started_producer(self):
        san = Sanitizer()
        producer = _StubTask("src")
        consumer = _StubTask("snk", stream_from=[producer])
        san.task_submitted(producer, 0.0)
        san.task_submitted(consumer, 0.0)
        san.task_dispatched(consumer, 0, 1.0)
        self._expect("dependence-legality",
                     san.task_started, consumer, 0, 2.0, pipelining=True)

    def test_stream_consumer_without_pipelining_needs_completion(self):
        san = Sanitizer()
        producer = _StubTask("src")
        consumer = _StubTask("snk", stream_from=[producer])
        for task in (producer, consumer):
            san.task_submitted(task, 0.0)
            san.task_dispatched(task, 0, 0.0)
        san.task_started(producer, 0, 1.0)
        # Started-but-not-completed producer is enough when pipelining...
        san.task_started(consumer, 1, 2.0, pipelining=True)
        # ...but a fresh sanitizer with pipelining off must reject it.
        san2 = Sanitizer()
        for task in (producer2 := _StubTask("src2"),
                     consumer2 := _StubTask("snk2",
                                            stream_from=[producer2])):
            san2.task_submitted(task, 0.0)
        san2.task_started(producer2, 0, 1.0)
        self._expect("dependence-legality", san2.task_started,
                     consumer2, 1, 2.0, pipelining=False)

    # -- lane-exclusivity --------------------------------------------------

    def test_double_acquire(self):
        san = Sanitizer()
        san.lane_acquired(2, _StubTask("first"), 0.0)
        err = self._expect("lane-exclusivity", san.lane_acquired,
                           2, _StubTask("second"), 1.0)
        assert err.lane == 2 and "first" in str(err)

    def test_release_by_non_occupant(self):
        san = Sanitizer()
        san.lane_acquired(0, _StubTask("owner"), 0.0)
        self._expect("lane-exclusivity", san.lane_released,
                     0, _StubTask("interloper"), 1.0)

    def test_unreleased_lane_fails_finish(self):
        san = Sanitizer()
        san.lane_acquired(1, _StubTask("stuck"), 0.0)
        err = self._expect("lane-exclusivity",
                           san.finish, _StubMetrics(), [])
        assert "still occupied" in str(err) and err.lane == 1

    # -- queue-bound -------------------------------------------------------

    def test_queue_over_depth(self):
        san = Sanitizer()
        task = _StubTask("overflow")
        san.task_submitted(task, 0.0)
        err = self._expect("queue-bound", san.task_dispatched,
                           task, 0, 1.0, queue_level=17, queue_depth=16)
        assert "17" in str(err) and "16" in str(err)

    # -- stream-legality ---------------------------------------------------

    def test_consume_ahead_of_producer(self):
        san = Sanitizer()
        san.stream_produced(1, 2, 256.0, 0.0)
        err = self._expect("stream-legality", san.stream_consumed,
                           1, 2, 512.0, 1.0)
        assert "512" in str(err) and "256" in str(err)

    def test_undrained_channel_fails_finish(self):
        san = Sanitizer()
        san.stream_produced(1, 2, 1024.0, 0.0)
        san.stream_consumed(1, 2, 512.0, 1.0)
        self._expect("stream-legality",
                     san.finish, _StubMetrics(), [])

    # -- work-accounting ---------------------------------------------------

    def test_busy_vs_expected_mismatch(self):
        san = Sanitizer()
        san.lane_busy(0, 100.0, 5.0)
        san.compute_expected(0, _StubTask("t"), 80.0)
        err = self._expect("work-accounting",
                           san.finish, _StubMetrics(), [100.0])
        assert err.lane == 0
        assert "100" in str(err) and "80" in str(err)

    def test_tracker_disagreement(self):
        san = Sanitizer()
        san.lane_busy(0, 100.0, 5.0)
        san.compute_expected(0, _StubTask("t"), 100.0)
        err = self._expect("work-accounting",
                           san.finish, _StubMetrics(), [125.0])
        assert "tracker" in str(err)

    def test_negative_busy_rejected(self):
        san = Sanitizer()
        self._expect("work-accounting", san.lane_busy, 0, -5.0, 1.0)

    # -- multicast-consistency ---------------------------------------------

    def test_requests_exceed_sharing_degree(self):
        san = Sanitizer()
        san.set_sharing_degrees({"table": 2})
        san.shared_request("table", 1024.0, 0, "fetch", 0.0)
        san.shared_request("table", 1024.0, 1, "coalesced", 0.0)
        err = self._expect("multicast-consistency", san.shared_request,
                           "table", 1024.0, 2, "coalesced", 1.0)
        assert "table" in str(err) and "2 readers" in str(err)

    def test_served_degree_exceeds_sharing_degree(self):
        san = Sanitizer()
        san.set_sharing_degrees({"table": 2})
        self._expect("multicast-consistency", san.multicast_served,
                     "table", 1024.0, 3, 0.0)

    def test_unserved_batch_fails_finish(self):
        san = Sanitizer()
        san.shared_request("r", 512.0, 0, "fetch", 0.0)
        # One batch opened but never served: both the byte balance and
        # the serve count are broken.
        self._expect("multicast-consistency",
                     san.finish, _StubMetrics(mcast_fetches=1), [])

    # -- noc-accounting ----------------------------------------------------

    def test_noc_counter_disagreement(self):
        san = Sanitizer()
        san.noc_message("unicast", 64.0, 0.0)
        err = self._expect("noc-accounting", san.finish,
                           _StubMetrics(noc_messages=2), [])
        assert "noc.messages" in str(err)

    def test_invalid_payload(self):
        san = Sanitizer()
        self._expect("noc-accounting",
                     san.noc_message, "unicast", float("nan"), 0.0)


class TestDiagnostics:
    def test_error_carries_window_and_context(self):
        san = Sanitizer()
        for i in range(3):
            _lifecycle(san, _StubTask(f"warmup{i}"), lane=i, t0=float(i))
        task = _StubTask("offender")
        san.task_submitted(task, 10.0)
        with pytest.raises(ModelInvariantError) as excinfo:
            san.task_submitted(task, 11.0)
        err = excinfo.value
        assert err.task == "offender"
        assert err.cycle == 11.0
        assert err.window, "violation must carry the recent-event window"
        text = str(err)
        assert "recent events:" in text
        assert "warmup2" in text  # the window shows what led up to it

    def test_window_is_bounded(self):
        san = Sanitizer()
        for i in range(Sanitizer.WINDOW * 3):
            san.task_submitted(_StubTask(f"t{i}"), float(i))
        assert len(san._window) == Sanitizer.WINDOW

    def test_pending_report_names_unfinished(self):
        san = Sanitizer()
        done, lost = _StubTask("done"), _StubTask("lost")
        _lifecycle(san, done)
        san.task_submitted(lost, 2.0)
        report = san.pending_report()
        assert "2 submitted" in report and "1 completed" in report
        assert "lost" in report and "done" not in report.split(":")[-1]

    def test_clean_run_passes_finish(self):
        san = Sanitizer()
        task = _StubTask("good")
        _lifecycle(san, task)
        san.lane_acquired(0, task2 := _StubTask("good2"), 2.0)
        san.lane_released(0, task2, 3.0)
        san.lane_busy(0, 40.0, 3.0)
        san.compute_expected(0, task, 40.0)
        san.stream_produced(1, 2, 128.0, 3.0)
        san.stream_consumed(1, 2, 128.0, 3.0)
        san.noc_message("unicast", 64.0, 3.0)
        metrics = _StubMetrics(dispatch_submitted=1, dispatch_dispatched=1,
                               dispatch_completed=2, noc_messages=1)
        # (counter stub: completed counts the _lifecycle complete + none)
        metrics.values["dispatch.completed"] = 1
        san.finish(metrics, [40.0])  # does not raise
        assert san.checks > 0


class TestNullSanitizer:
    def test_all_hooks_are_noops(self):
        san = NullSanitizer()
        task = _StubTask("ignored")
        san.clock_advanced(10.0, 0.0)       # would violate if enabled
        san.task_dispatched(task, 0, 0.0)   # dispatch without submit
        san.task_completed(task, 0, 0.0)    # complete without start
        san.lane_acquired(0, task, 0.0)
        san.lane_acquired(0, task, 0.0)     # double acquire
        san.lane_busy(0, -1.0, 0.0)         # negative busy
        san.stream_consumed(1, 2, 99.0, 0.0)
        san.noc_message("unicast", float("nan"), 0.0)
        san.finish(_StubMetrics(), [])
        assert san.checks == 0
        assert not san.enabled


class TestEnablement:
    def test_env_var_spellings(self, monkeypatch):
        for value, expected in (("1", True), ("true", True), ("YES", True),
                                ("on", True), ("0", False), ("", False),
                                ("off", False)):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert env_sanitize_requested() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert env_sanitize_requested() is False

    def test_machine_build_defaults_to_null(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        machine = Machine.build(default_delta_config(lanes=2))
        assert not machine.sanitizer.enabled

    def test_config_flag_enables(self):
        config = default_delta_config(lanes=2).with_sanitize(True)
        machine = Machine.build(config)
        assert machine.sanitizer.enabled
        assert machine.env.clock_monitor is not None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        machine = Machine.build(default_delta_config(lanes=2))
        assert machine.sanitizer.enabled

    def test_sanitize_excluded_from_result_fingerprint(self):
        # `sanitize` must be a pure observation flag: flipping it cannot
        # reach the stats tuple (checked exhaustively by the matrix below;
        # this guards the config field itself).
        config = default_delta_config(lanes=2)
        assert config.with_sanitize(True).lanes == config.lanes
        assert config.with_sanitize(True).sanitize is True
        assert config.sanitize is False  # with_sanitize copies


@pytest.fixture
def captured_sanitizer(monkeypatch):
    """Capture the sanitizer of the next machine Delta/Static builds."""
    box = {}
    original = Machine.build

    def spy(config, **kwargs):
        machine = original(config, **kwargs)
        box["sanitizer"] = machine.sanitizer
        return machine

    monkeypatch.setattr(Machine, "build", staticmethod(spy))
    return box


class TestSanitizedRuns:
    """Positive path: real runs under the sanitizer stay clean."""

    def test_delta_run_is_observed(self, captured_sanitizer):
        w = SharedReadTasks(num_tasks=8)
        result = Delta(default_delta_config(lanes=4).with_sanitize(True)
                       ).run(w.build_program())
        w.check(result.state)
        san = captured_sanitizer["sanitizer"]
        assert san.enabled and san.checks > 100
        assert san._finished  # finish() ran at result assembly

    def test_static_run_is_observed(self, captured_sanitizer):
        w = UniformTasks(num_tasks=8)
        StaticParallel(default_baseline_config(lanes=2).with_sanitize(True)
                       ).run(w.build_program())
        san = captured_sanitizer["sanitizer"]
        assert san.enabled and san.checks > 0 and san._finished

    def test_pipelined_chain_clean(self):
        # Exercises stream-legality on a real producer/consumer pipeline.
        w = ChainTasks(depth=4, trips=2048)
        result = Delta(default_delta_config(lanes=4).with_sanitize(True)
                       ).run(w.build_program())
        w.check(result.state)

    def test_pipelining_disabled_clean(self):
        w = ChainTasks(depth=4, trips=512)
        config = default_delta_config(
            lanes=2, features=FeatureFlags(pipelining=False)
        ).with_sanitize(True)
        result = Delta(config).run(w.build_program())
        w.check(result.state)

    def test_steal_policy_clean(self):
        config = default_delta_config(lanes=4).with_policy(
            "steal").with_sanitize(True)
        w = get_workload("micro-skewed")
        result = Delta(config).run(w.build_program())
        w.check(result.state)

    def test_multicast_oracle_clean(self):
        w = SharedReadTasks(num_tasks=6)
        result = Delta(default_delta_config(lanes=2).with_sanitize(True)
                       ).run(w.build_program(),
                             sharing_degrees={"table": 6})
        w.check(result.state)

    def test_env_var_sanitizes_run(self, monkeypatch, captured_sanitizer):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        Delta(default_delta_config(lanes=2)).run(
            UniformTasks(num_tasks=4).build_program())
        assert captured_sanitizer["sanitizer"].enabled


class TestDifferentialMatrix:
    """Every workload, both runtimes, both lane counts, both event
    engines: the sanitized run must find nothing and change nothing.

    The matrix closes the loop between the sanitizer's invariants and the
    fast event kernel (tests/test_engine_equivalence.py): for each point,
    sanitized-fast == sanitized-reference == unsanitized-reference,
    bit-identically. A fast-path shortcut that broke an invariant — or
    dodged the sanitizer's observation hooks — diverges here.
    """

    @pytest.mark.parametrize("lanes", [2, 8])
    @pytest.mark.parametrize("name", workload_names())
    def test_sanitized_fingerprint_identical(self, name, lanes, monkeypatch):
        from repro.eval.runner import compare

        workload = get_workload(name)
        config = default_delta_config(lanes=lanes)

        monkeypatch.setenv("REPRO_ENGINE", "reference")
        plain = compare(workload, config)
        sanitized_ref = compare(workload, config.with_sanitize(True))
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        sanitized_fast = compare(workload, config.with_sanitize(True))

        for side in ("delta", "static"):
            baseline = result_stats(getattr(plain, side))
            assert result_stats(getattr(sanitized_ref, side)) == baseline, \
                f"{name}@lanes={lanes} [{side}]: sanitizer perturbed the " \
                "reference engine"
            assert result_stats(getattr(sanitized_fast, side)) == baseline, \
                f"{name}@lanes={lanes} [{side}]: sanitized fast engine " \
                "diverged from unsanitized reference"


class TestInjectedModelBugs:
    """Break real components on purpose; the sanitizer must notice."""

    def _config(self, lanes=2):
        return default_delta_config(lanes=lanes).with_sanitize(True)

    def test_double_completion_caught(self, monkeypatch):
        original = Dispatcher.task_completed

        def completes_twice(self, task):
            original(self, task)
            original(self, task)

        monkeypatch.setattr(Dispatcher, "task_completed", completes_twice)
        with pytest.raises(ModelInvariantError) as excinfo:
            Delta(self._config()).run(
                UniformTasks(num_tasks=4).build_program())
        assert excinfo.value.invariant == "task-conservation"
        assert "more than once" in str(excinfo.value)

    def test_phantom_stream_chunk_caught(self, monkeypatch):
        original = _DeltaRun._channel

        def leaky_channel(self, producer, consumer):
            channel = original(self, producer, consumer)
            if not channel.store._items:  # seed one chunk nobody produced
                channel.store._items.appendleft(256.0)
            return channel

        monkeypatch.setattr(_DeltaRun, "_channel", leaky_channel)
        with pytest.raises(ModelInvariantError) as excinfo:
            Delta(self._config(lanes=4)).run(
                ChainTasks(depth=3, trips=1024).build_program())
        assert excinfo.value.invariant == "stream-legality"

    def test_utilization_tracker_drift_caught(self, monkeypatch):
        original = UtilizationTracker.busy

        def drifting_busy(self, duration):
            original(self, duration * 1.25)  # silently inflate

        monkeypatch.setattr(UtilizationTracker, "busy", drifting_busy)
        with pytest.raises(ModelInvariantError) as excinfo:
            Delta(self._config()).run(
                UniformTasks(num_tasks=4).build_program())
        err = excinfo.value
        assert err.invariant == "work-accounting"
        assert err.lane is not None

    def test_queue_overflow_caught(self, monkeypatch):
        import repro.core.dispatcher as dispatcher_mod
        from repro.sim import Store

        class DeepStore(Store):
            """A dispatch queue that ignores its architected depth."""

            def __init__(self, env, capacity, name=None):
                if name and name.startswith("dispatch.q"):
                    capacity *= 8
                super().__init__(env, capacity, name=name)

        monkeypatch.setattr(dispatcher_mod, "Store", DeepStore)
        # Round-robin places eagerly (no low-water throttle), so the
        # mis-sized queue actually fills past its architected depth.
        config = self._config(lanes=1).with_policy("round-robin")
        config = dataclasses.replace(
            config, dispatch=dataclasses.replace(config.dispatch,
                                                 queue_depth=2))
        with pytest.raises(ModelInvariantError) as excinfo:
            Delta(config).run(
                UniformTasks(num_tasks=12, trips=2048).build_program())
        err = excinfo.value
        assert err.invariant == "queue-bound"
        assert err.lane == 0


class TestCli:
    def test_run_with_sanitize(self, capsys):
        from repro.cli import main

        assert main(["run", "micro-uniform", "--lanes", "2",
                     "--sanitize"]) == 0
        assert "functional check: OK" in capsys.readouterr().out

    def test_compare_with_sanitize(self, capsys):
        from repro.cli import main

        assert main(["compare", "micro-uniform", "--lanes", "2",
                     "--sanitize"]) == 0
        assert "speedup" in capsys.readouterr().out
