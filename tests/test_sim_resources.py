"""Unit tests for Resource, Store, and BandwidthServer."""

import pytest

from repro.sim import (
    BandwidthServer,
    Environment,
    Resource,
    SimulationError,
    Store,
)


# ---------------------------------------------------------------- Resource

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    order = []

    def worker(tag, hold):
        yield res.acquire()
        order.append((tag, "in", env.now))
        yield env.timeout(hold)
        res.release()
        order.append((tag, "out", env.now))

    env.process(worker("a", 10))
    env.process(worker("b", 10))
    env.process(worker("c", 10))
    env.run()
    entries = [(tag, t) for tag, what, t in order if what == "in"]
    assert entries == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    admitted = []

    def worker(tag):
        yield res.acquire()
        admitted.append(tag)
        yield env.timeout(1)
        res.release()

    for tag in range(5):
        env.process(worker(tag))
    env.run()
    assert admitted == [0, 1, 2, 3, 4]


def test_resource_release_idle_is_error():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        yield res.acquire()
        yield env.timeout(5)
        res.release()

    def waiter():
        yield env.timeout(1)
        yield res.acquire()
        res.release()

    env.process(holder())
    env.process(waiter())
    env.run(until=2)
    assert res.in_use == 1
    assert res.queued == 1
    env.run()
    assert res.in_use == 0


# ------------------------------------------------------------------- Store

def test_store_put_get_order():
    env = Environment()
    store = Store(env, capacity=4)
    received = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [0, 1, 2]


def test_store_backpressure_blocks_producer():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        for i in range(3):
            yield store.put(i)
            log.append(("put", i, env.now))

    def consumer():
        for _ in range(3):
            yield env.timeout(10)
            item = yield store.get()
            log.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    puts = [(i, t) for what, i, t in log if what == "put"]
    # First put succeeds immediately; the rest wait for consumer drains.
    assert puts[0] == (0, 0)
    assert puts[1] == (1, 10)
    assert puts[2] == (2, 20)


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env, capacity=2)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(7)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("x", 7)]


def test_store_close_delivers_end_after_drain():
    env = Environment()
    store = Store(env, capacity=4)
    seen = []

    def producer():
        yield store.put(1)
        yield store.put(2)
        store.close()

    def consumer():
        while True:
            item = yield store.get()
            if item is Store.END:
                seen.append("end")
                break
            seen.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert seen == [1, 2, "end"]


def test_store_close_wakes_blocked_getter():
    env = Environment()
    store = Store(env, capacity=1)
    seen = []

    def consumer():
        item = yield store.get()
        seen.append(item)

    def closer():
        yield env.timeout(3)
        store.close()

    env.process(consumer())
    env.process(closer())
    env.run()
    assert seen == [Store.END]


def test_store_put_after_close_is_error():
    env = Environment()
    store = Store(env, capacity=1)
    store.close()
    with pytest.raises(SimulationError):
        store.put(1)


def test_store_multiple_gets_after_close():
    env = Environment()
    store = Store(env, capacity=1)
    store.close()
    results = []

    def consumer():
        a = yield store.get()
        b = yield store.get()
        results.extend([a, b])

    env.process(consumer())
    env.run()
    assert results == [Store.END, Store.END]


def test_store_counts_total_puts():
    env = Environment()
    store = Store(env, capacity=8)

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert store.total_put == 5


# -------------------------------------------------------- BandwidthServer

def test_bandwidth_single_transfer_time():
    env = Environment()
    chan = BandwidthServer(env, bytes_per_cycle=4, latency=10)
    done_at = []

    def proc():
        yield chan.transfer(64)
        done_at.append(env.now)

    env.process(proc())
    env.run()
    assert done_at == [64 / 4 + 10]


def test_bandwidth_serializes_contending_transfers():
    env = Environment()
    chan = BandwidthServer(env, bytes_per_cycle=1, latency=0)
    finish = {}

    def proc(tag):
        yield chan.transfer(10)
        finish[tag] = env.now

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert finish == {"a": 10, "b": 20}


def test_bandwidth_idle_gap_not_counted():
    env = Environment()
    chan = BandwidthServer(env, bytes_per_cycle=2, latency=0)

    def proc():
        yield chan.transfer(20)   # busy 10 cycles
        yield env.timeout(90)     # idle
        yield chan.transfer(20)   # busy 10 more

    env.process(proc())
    env.run()
    assert env.now == 110
    assert chan.utilization() == pytest.approx(20 / 110)
    assert chan.total_bytes == 40
    assert chan.total_transfers == 2


def test_bandwidth_zero_byte_transfer_only_latency():
    env = Environment()
    chan = BandwidthServer(env, bytes_per_cycle=8, latency=5)
    done_at = []

    def proc():
        yield chan.transfer(0)
        done_at.append(env.now)

    env.process(proc())
    env.run()
    assert done_at == [5]


def test_bandwidth_invalid_params():
    env = Environment()
    with pytest.raises(SimulationError):
        BandwidthServer(env, bytes_per_cycle=0)
    with pytest.raises(SimulationError):
        BandwidthServer(env, bytes_per_cycle=1, latency=-1)
    chan = BandwidthServer(env, bytes_per_cycle=1)
    with pytest.raises(SimulationError):
        chan.transfer(-5)


def test_bandwidth_backlog_reporting():
    env = Environment()
    chan = BandwidthServer(env, bytes_per_cycle=1, latency=0)

    def proc():
        chan.transfer(100)
        assert chan.backlog_cycles == 100
        yield env.timeout(40)
        assert chan.backlog_cycles == 60

    env.process(proc())
    env.run()


def test_store_peek_nondestructive():
    env = Environment()
    store = Store(env, capacity=4)

    def producer():
        yield store.put("a")
        yield store.put("b")

    env.process(producer())
    env.run()
    assert store.peek() == "a"
    assert store.level == 2  # unchanged


def test_store_peek_empty_returns_none():
    env = Environment()
    assert Store(env, capacity=1).peek() is None


def test_store_pop_newest_takes_tail():
    env = Environment()
    store = Store(env, capacity=4)

    def producer():
        for item in ("a", "b", "c"):
            yield store.put(item)

    env.process(producer())
    env.run()
    assert store.pop_newest() == "c"
    assert store.level == 2
    assert store.peek() == "a"


def test_store_pop_newest_empty_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=1).pop_newest()


def test_store_pop_newest_admits_waiting_putter():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer():
        yield store.put("first")
        yield store.put("second")  # blocks on capacity
        done.append(env.now)

    env.process(producer())
    env.run()
    assert store.pop_newest() == "first"
    env.run()
    assert done and store.peek() == "second"
