"""End-to-end tests of the Delta machine (repro.core.delta)."""

import pytest

from repro.arch.config import (
    FeatureFlags,
    default_delta_config,
)
from repro.arch.dfg import axpy_dfg, dot_product_dfg
from repro.core.annotations import ReadSpec, WorkHint, WriteSpec
from repro.core.delta import Delta, ExecutionStalled
from repro.core.program import Program
from repro.core.task import TaskType


def leaf_type(name="leaf", trips=64):
    return TaskType(
        name=name, dfg=dot_product_dfg(name),
        kernel=lambda ctx, args: ctx.state.setdefault("ran", []).append(
            args.get("i")),
        trips=lambda args: trips,
        reads=lambda args: (ReadSpec(nbytes=trips * 4),),
        writes=lambda args: (WriteSpec(nbytes=4),),
        work_hint=WorkHint(lambda args: trips),
    )


def make_program(num_tasks=8, trips=64):
    tt = leaf_type(trips=trips)
    return Program("p", {},
                   [tt.instantiate({"i": i}) for i in range(num_tasks)])


class TestBasicExecution:
    def test_runs_all_tasks(self):
        result = Delta(default_delta_config(lanes=4)).run(make_program(10))
        assert result.tasks_executed == 10
        assert sorted(result.state["ran"]) == list(range(10))
        assert result.cycles > 0

    def test_single_lane_machine(self):
        result = Delta(default_delta_config(lanes=1)).run(make_program(4))
        assert result.tasks_executed == 4

    def test_deterministic_given_seed(self):
        a = Delta(default_delta_config(lanes=4, seed=3)).run(make_program(12))
        b = Delta(default_delta_config(lanes=4, seed=3)).run(make_program(12))
        assert a.cycles == b.cycles
        assert a.lane_busy == b.lane_busy

    def test_result_metadata(self):
        result = Delta(default_delta_config(lanes=4)).run(make_program(6))
        assert result.machine == "delta"
        assert result.program_name == "p"
        assert len(result.lane_busy) == 4
        assert result.dram_bytes > 0

    def test_max_cycles_raises_execution_stalled(self):
        with pytest.raises(ExecutionStalled, match="stalled"):
            Delta(default_delta_config(lanes=2)).run(make_program(8),
                                                     max_cycles=10)

    def test_more_lanes_not_slower(self):
        slow = Delta(default_delta_config(lanes=1)).run(make_program(16))
        fast = Delta(default_delta_config(lanes=8)).run(make_program(16))
        assert fast.cycles < slow.cycles


class TestSpawning:
    def test_spawned_tasks_execute(self):
        child = leaf_type("child")

        def kernel(ctx, args):
            for i in range(3):
                ctx.spawn(child, {"i": i})

        root = TaskType("root", dot_product_dfg("root"), kernel,
                        trips=lambda args: 1)
        program = Program("spawny", {}, [root.instantiate()])
        result = Delta(default_delta_config(lanes=2)).run(program)
        assert result.tasks_executed == 4
        assert sorted(result.state["ran"]) == [0, 1, 2]

    def test_after_dep_orders_kernels(self):
        order = []

        def first_kernel(ctx, args):
            order.append("first")

        def second_kernel(ctx, args):
            order.append("second")

        first = TaskType("first", dot_product_dfg("f"), first_kernel,
                         trips=lambda args: 512)
        second = TaskType("second", dot_product_dfg("s"), second_kernel,
                          trips=lambda args: 1)

        def root_kernel(ctx, args):
            a = ctx.spawn(first)
            ctx.spawn(second, after=[a])

        root = TaskType("root", dot_product_dfg("r"), root_kernel,
                        trips=lambda args: 1)
        Delta(default_delta_config(lanes=4)).run(
            Program("ordered", {}, [root.instantiate()]))
        assert order == ["first", "second"]


class TestPipelining:
    def chain_program(self, depth=4, trips=512):
        stage = TaskType(
            "stage", axpy_dfg("stage"),
            kernel=lambda ctx, args: ctx.state["order"].append(
                args["stage"]),
            trips=lambda args: trips,
            writes=lambda args: (WriteSpec(nbytes=trips * 4),),
        )

        def root_kernel(ctx, args):
            ctx.state["order"].append(0)
            prev = ctx.task
            for s in range(1, depth):
                prev = ctx.spawn(stage, {"stage": s}, stream_from=[prev])

        root = TaskType(
            "stage", axpy_dfg("stage"), root_kernel,
            trips=lambda args: trips,
            writes=lambda args: (WriteSpec(nbytes=trips * 4),),
        )
        return Program("chain", {"order": []},
                       [root.instantiate({"stage": 0})])

    def test_pipelined_chain_faster_than_unpipelined(self):
        on = Delta(default_delta_config(lanes=4)).run(self.chain_program())
        flags = FeatureFlags(pipelining=False)
        off = Delta(default_delta_config(lanes=4, features=flags)).run(
            self.chain_program())
        assert on.cycles < off.cycles * 0.8

    def test_pipelined_chain_avoids_dram(self):
        on = Delta(default_delta_config(lanes=4)).run(self.chain_program())
        flags = FeatureFlags(pipelining=False)
        off = Delta(default_delta_config(lanes=4, features=flags)).run(
            self.chain_program())
        assert on.dram_bytes < off.dram_bytes
        assert on.counters.get("pipe.bytes") > 0
        assert off.counters.get("pipe.bytes") == 0

    def test_kernel_order_respects_stream_deps(self):
        result = Delta(default_delta_config(lanes=4)).run(
            self.chain_program(depth=5))
        assert result.state["order"] == [0, 1, 2, 3, 4]

    def test_chain_on_single_lane_still_completes(self):
        # Producers and consumer must share the one lane; the full-stream
        # channel capacity guarantees progress.
        result = Delta(default_delta_config(lanes=1)).run(
            self.chain_program(depth=3))
        assert result.tasks_executed == 3

    def test_multi_producer_consumer(self):
        leaf = TaskType(
            "leaf", dot_product_dfg("l"),
            kernel=lambda ctx, args: None,
            trips=lambda args: 256,
            writes=lambda args: (WriteSpec(nbytes=1024),),
        )
        combine = TaskType(
            "combine", dot_product_dfg("c"),
            kernel=lambda ctx, args: ctx.state.__setitem__("combined", True),
            trips=lambda args: 512,
            writes=lambda args: (WriteSpec(nbytes=4),),
        )

        def root_kernel(ctx, args):
            a = ctx.spawn(leaf)
            b = ctx.spawn(leaf)
            ctx.spawn(combine, stream_from=[a, b])

        root = TaskType("root", dot_product_dfg("r"), root_kernel,
                        trips=lambda args: 1)
        result = Delta(default_delta_config(lanes=4)).run(
            Program("fanin", {}, [root.instantiate()]))
        assert result.state.get("combined")
        assert result.tasks_executed == 4


class TestMulticastIntegration:
    def shared_program(self, num_tasks=12, region_bytes=4096):
        tt = TaskType(
            "sh", dot_product_dfg("sh"),
            kernel=lambda ctx, args: None,
            trips=lambda args: 256,
            reads=lambda args: (
                ReadSpec(nbytes=region_bytes, region="tbl", shared=True),),
            writes=lambda args: (WriteSpec(nbytes=4),),
        )
        return Program("sh", {},
                       [tt.instantiate({"i": i}) for i in range(num_tasks)])

    def test_multicast_reduces_dram_reads(self):
        on = Delta(default_delta_config(lanes=4)).run(self.shared_program())
        flags = FeatureFlags(multicast=False)
        off = Delta(default_delta_config(lanes=4, features=flags)).run(
            self.shared_program())
        assert on.counters.get("dram.read_bytes") < \
            off.counters.get("dram.read_bytes") / 2

    def test_multicast_disabled_counts_duplicates(self):
        flags = FeatureFlags(multicast=False)
        off = Delta(default_delta_config(lanes=4, features=flags)).run(
            self.shared_program())
        assert off.counters.get("mcast.disabled_duplicate_fetches") > 0


class TestPolicyConfigs:
    @pytest.mark.parametrize("policy",
                             ["work-aware", "round-robin", "random", "steal"])
    def test_all_policies_complete(self, policy):
        config = default_delta_config(lanes=4).with_policy(policy)
        result = Delta(config).run(make_program(16))
        assert result.tasks_executed == 16

    def test_steal_policy_records_steals_on_skewed_arrivals(self):
        # Block arrival order (all heavy tasks first to one lane under RR
        # placement) creates steal opportunities.
        tt = leaf_type(trips=512)
        program = Program(
            "skew", {}, [tt.instantiate({"i": i}) for i in range(16)])
        config = default_delta_config(lanes=4).with_policy("steal")
        result = Delta(config).run(program)
        assert result.tasks_executed == 16


class TestCounters:
    def test_task_type_counters(self):
        result = Delta(default_delta_config(lanes=2)).run(make_program(5))
        assert result.counters.get("tasks.leaf") == 5

    def test_dispatch_counters(self):
        result = Delta(default_delta_config(lanes=2)).run(make_program(5))
        assert result.counters.get("dispatch.submitted") == 5
        assert result.counters.get("dispatch.completed") == 5
